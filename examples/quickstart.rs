//! Quickstart: how available is a distributed SDN controller?
//!
//! Run with `cargo run --example quickstart`.

use sdn_availability::{ControllerSpec, HwModel, HwParams, Scenario, SwModel, SwParams, Topology};

fn main() {
    // 1. The controller software, encapsulated as data (the paper's
    //    Tables I-III). OpenContrail 3.x ships with the library; build your
    //    own `ControllerSpec` to model a different controller.
    let spec = ControllerSpec::opencontrail_3x();
    println!(
        "controller: {} ({} processes)\n",
        spec.name,
        spec.process_count()
    );

    // 2. Physical deployment layouts (the paper's Fig. 2).
    let small = Topology::small(&spec); // 1 rack, 3 hosts, 3 GCAD VMs
    let medium = Topology::medium(&spec); // 2 racks, 3 hosts, 12 VMs
    let large = Topology::large(&spec); // 3 racks, 12 hosts, 12 VMs

    // 3. HW-centric availability (§V): roles as atomic elements.
    println!("HW-centric controller availability (A_C = 0.9995):");
    let hw = HwParams::paper_defaults();
    for topo in [&small, &medium, &large] {
        let model = HwModel::try_new(&spec, topo, hw).expect("valid HW model");
        let a = model.availability();
        println!(
            "  {:<7} {:.9}  ({:.1} minutes/year of downtime)",
            topo.name(),
            a,
            (1.0 - a) * 525_960.0
        );
    }

    // 4. SW-centric availability (§VI): process-level quorums, separate
    //    control-plane and per-host data-plane results.
    println!("\nSW-centric availability (supervisor required — the realistic case):");
    let sw = SwParams::paper_defaults();
    for topo in [&small, &large] {
        let model = SwModel::try_new(&spec, topo, sw, Scenario::SupervisorRequired)
            .expect("valid SW model");
        println!(
            "  {:<7} control plane {:.9}   host data plane {:.9}",
            topo.name(),
            model.cp_availability(),
            model.host_dp_availability()
        );
    }

    // 5. The paper's headline asymmetry: the distributed control plane is
    //    very highly available, while every host's data plane rides on
    //    single points of failure (vrouter-agent, vrouter-dpdk, and the
    //    vRouter supervisor).
    let model =
        SwModel::try_new(&spec, &large, sw, Scenario::SupervisorRequired).expect("valid SW model");
    println!(
        "\nCP downtime {:>6.1} m/y  vs  per-host DP downtime {:>6.1} m/y",
        (1.0 - model.cp_availability()) * 525_960.0,
        (1.0 - model.host_dp_availability()) * 525_960.0
    );
}
