//! Validating the analytic models by simulation — the paper's future work.
//!
//! Runs the discrete-event simulator against the Small topology in both
//! supervisor scenarios and compares with the closed-form models, then
//! turns on the §III vrouter-agent failover dynamics that the analytic
//! model deliberately ignores, to quantify the cost of that simplification.
//!
//! Uses accelerated failure rates (×100) so the study finishes in seconds;
//! run `cargo run -p sdnav-bench --bin sim_validation --release -- --full`
//! for the paper-scale version.
//!
//! Run with `cargo run --release --example simulation_study`.

use sdn_availability::sim::ConnectionModel;
use sdn_availability::{replicate, ControllerSpec, Scenario, SimConfig, SwModel, Topology};

fn main() {
    let spec = ControllerSpec::opencontrail_3x();
    let topo = Topology::small(&spec);

    println!("analytic vs simulated (failure rates ×100, 4 replications):\n");
    for scenario in [
        Scenario::SupervisorNotRequired,
        Scenario::SupervisorRequired,
    ] {
        let mut config = SimConfig::paper_defaults(scenario).accelerated(100.0);
        config.horizon_hours = 250_000.0;
        config.compute_hosts = 3;
        // Compare under the independence assumption the closed forms make;
        // rack cycles run faster at equal availability for tight statistics.
        config.restart_model = sdn_availability::sim::RestartModel::AnalyticIndependence;
        config.rack = config.rack.scaled_time(24.0);
        let result = replicate(&spec, &topo, config, 7, 4);
        let analytic = SwModel::try_new(&spec, &topo, config.analytic_params(), scenario)
            .expect("valid SW model");
        println!("{scenario:?}:");
        println!(
            "  CP analytic {:.7}   simulated {}",
            analytic.cp_availability(),
            result.cp
        );
        println!(
            "  DP analytic {:.7}   simulated {}",
            analytic.host_dp_availability(),
            result.dp
        );
        println!("  ({} events)\n", result.total_events);
    }

    println!("cost of the 'rediscovery is instantaneous' simplification:");
    let mut base = SimConfig::paper_defaults(Scenario::SupervisorNotRequired).accelerated(100.0);
    base.horizon_hours = 250_000.0;
    base.compute_hosts = 6;
    let mut with_failover = base;
    with_failover.connection = ConnectionModel::Failover {
        rediscovery_hours: 1.0 / 60.0, // "typically within a minute"
    };
    let analytic_model = replicate(&spec, &topo, base, 99, 4);
    let failover = replicate(&spec, &topo, with_failover, 99, 4);
    println!("  DP, analytic connection model : {}", analytic_model.dp);
    println!("  DP, with failover transients  : {}", failover.dp);
    println!(
        "  difference ≈ {:.2} minutes/year at these (accelerated) rates — \n\
         consistent with the paper treating it as negligible at real rates.",
        (analytic_model.dp.mean - failover.dp.mean) * 525_960.0
    );
}
