//! Scaling the controller cluster beyond 2N+1 = 3.
//!
//! The paper analyzes the minimum 3-node cluster and notes "generalization
//! to N > 1 is straightforward". This example does it: 3-, 5- and 7-node
//! clusters, showing that extra nodes buy control-plane nines (stronger
//! majority quorums) but do nothing for the rack-limited Small layout or
//! for the per-host data plane.
//!
//! Run with `cargo run --example cluster_scaling`.

use sdn_availability::{ControllerSpec, Scenario, SwModel, SwParams, Topology};

const MINUTES_PER_YEAR: f64 = 525_960.0;

fn main() {
    let base = ControllerSpec::opencontrail_3x();
    let params = SwParams::paper_defaults();

    println!("CP and per-host DP downtime (m/y), supervisor required:\n");
    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>14}",
        "nodes", "Small CP", "Large CP", "Small DP", "Large DP"
    );
    for nodes in [3u32, 5, 7] {
        let spec = base.scaled_cluster(nodes);
        let small = Topology::small(&spec);
        let large = Topology::large(&spec);
        let dt = |topo: &Topology| {
            let m = SwModel::try_new(&spec, topo, params, Scenario::SupervisorRequired)
                .expect("valid SW model");
            (
                (1.0 - m.cp_availability()) * MINUTES_PER_YEAR,
                (1.0 - m.host_dp_availability()) * MINUTES_PER_YEAR,
            )
        };
        let (s_cp, s_dp) = dt(&small);
        let (l_cp, l_dp) = dt(&large);
        println!("{nodes:<6} {s_cp:>14.2} {l_cp:>14.3} {s_dp:>14.1} {l_dp:>14.1}");
    }

    println!(
        "\nTakeaways:\n\
         • 3 → 5 nodes cuts Large-topology CP downtime by an order of\n\
           magnitude: the Database majority quorum (3-of-5) now survives\n\
           two simultaneous losses.\n\
         • The Small topology is pinned at its single rack's ~5 m/y floor\n\
           regardless of cluster size.\n\
         • The data plane does not move at all: its downtime lives in the\n\
           per-host vRouter processes, outside the controller cluster.\n\
         • Quorum scaling is therefore an argument for *rack-separated*\n\
           deployments only — more nodes in one rack is spend without\n\
           return, the cluster-size analogue of the paper's 'one rack or\n\
           three, but not two'."
    );
}
