//! A failure drill: interrogating the deployment's structure functions.
//!
//! Walks through the §III failure narratives as executable what-if
//! queries, then asks the FMEA engine for the failure modes an operations
//! team should drill for.
//!
//! Run with `cargo run --example failure_drill`.

use sdn_availability::fmea::{dominant_modes, enumerate_filtered, ElementKind};
use sdn_availability::{ControllerSpec, Deployment, Element, Scenario, SwParams, Topology};

fn check(label: &str, cp: bool, dp: bool) {
    println!(
        "  {label:<62} CP {}  DP {}",
        if cp { "up  " } else { "DOWN" },
        if dp { "up  " } else { "DOWN" }
    );
}

fn main() {
    let spec = ControllerSpec::opencontrail_3x();
    let topo = Topology::small(&spec);
    let dep = Deployment::new(
        &spec,
        &topo,
        SwParams::paper_defaults(),
        Scenario::SupervisorNotRequired,
    );

    println!("§III narratives, replayed against the structure functions:\n");

    // "If control-1 fails ... every vrouter-agent will then be connected to
    // control-2 and control-3" — one control down, planes unaffected.
    let one = vec![Element::process("Control", 0, "control")];
    check("control-1 fails", dep.cp_up(&one), dep.host_dp_up(&one));

    // "If control-2 then fails, every vrouter-agent will then be connected
    // to only control-3" — still up.
    let two = vec![
        Element::process("Control", 0, "control"),
        Element::process("Control", 1, "control"),
    ];
    check(
        "control-1 and control-2 fail",
        dep.cp_up(&two),
        dep.host_dp_up(&two),
    );

    // "If control-3 subsequently fails, then every host DP will go down."
    let three = vec![
        Element::process("Control", 0, "control"),
        Element::process("Control", 1, "control"),
        Element::process("Control", 2, "control"),
    ];
    check(
        "all three control processes fail",
        dep.cp_up(&three),
        dep.host_dp_up(&three),
    );

    // "having only control-1 and dns-2 and named-3 available is not
    // sufficient for host DP availability."
    let scattered = vec![
        Element::process("Control", 0, "dns"),
        Element::process("Control", 0, "named"),
        Element::process("Control", 1, "control"),
        Element::process("Control", 1, "named"),
        Element::process("Control", 2, "control"),
        Element::process("Control", 2, "dns"),
    ];
    check(
        "only control-1, dns-2, named-3 left of the control block",
        dep.cp_up(&scattered),
        dep.host_dp_up(&scattered),
    );

    // "a lack of quorum of any of these [Database] processes only impacts
    // the SDN CP, not the host DP."
    let db = vec![
        Element::process("Database", 0, "zookeeper"),
        Element::process("Database", 2, "zookeeper"),
    ];
    check(
        "two of three zookeepers fail",
        dep.cp_up(&db),
        dep.host_dp_up(&db),
    );

    // "the supervisor is a '0 of 3' process" — scenario 1.
    let sups: Vec<Element> = (0..3)
        .map(|n| Element::process("Database", n, "supervisor"))
        .collect();
    check(
        "all Database supervisors fail (not required)",
        dep.cp_up(&sups),
        dep.host_dp_up(&sups),
    );

    // Same failure under the supervisor-required scenario.
    let dep2 = Deployment::new(
        &spec,
        &topo,
        SwParams::paper_defaults(),
        Scenario::SupervisorRequired,
    );
    check(
        "all Database supervisors fail (required)",
        dep2.cp_up(&sups),
        dep2.host_dp_up(&sups),
    );

    // What should operations drill for? Rank software failure modes.
    println!("\nTop software failure modes to drill (supervisor required, order ≤ 2):");
    let modes = enumerate_filtered(&dep2, 2, |e| {
        matches!(e.kind(), ElementKind::Process | ElementKind::Supervisor)
    });
    for m in dominant_modes(&modes, true, 4) {
        println!("  CP: {m}");
    }
    for m in dominant_modes(&modes, false, 4) {
        println!("  DP: {m}");
    }

    println!(
        "\nThe per-host vRouter processes dominate: exactly the paper's\n\
         conclusion that the host data plane, not the distributed control\n\
         plane, is the availability bottleneck."
    );
}
