//! Cost vs resiliency: deciding how much hardware to buy.
//!
//! §V.D of the paper: host availability depends on the maintenance
//! contract — Same Day (A_H ≈ 0.9999), Next Day (0.9995), Next Business
//! Day (0.9990) — and the rack count is a capital decision ("one rack or
//! three, but not two"). This example produces the decision matrix an
//! operator would actually look at: CP downtime for every combination of
//! maintenance tier and topology, plus the fleet-level view for a provider
//! with many edge sites.
//!
//! Run with `cargo run --example capacity_planning`.

use sdn_availability::report::Table;
use sdn_availability::{ControllerSpec, Scenario, SwModel, SwParams, Topology};

const MINUTES_PER_YEAR: f64 = 525_960.0;

fn main() {
    let spec = ControllerSpec::opencontrail_3x();
    let tiers = [
        ("Same Day (4h MTTR)", 0.9999),
        ("Next Day (24h MTTR)", 0.9995),
        ("Next Bus. Day (48h)", 0.9990),
    ];
    let topologies = [
        Topology::small(&spec),
        Topology::medium(&spec),
        Topology::large(&spec),
        // Not in the paper's grid: Small's 3 consolidated VMs, one rack
        // each — quorum protection at Small-scale hardware.
        Topology::small_three_racks(&spec),
    ];

    println!("SDN control-plane downtime (minutes/year), supervisor required:\n");
    let mut table = Table::new(vec![
        "maintenance tier",
        "Small",
        "Medium",
        "Large",
        "Small-3R",
    ]);
    for (label, a_h) in tiers {
        let params = SwParams {
            a_h,
            ..SwParams::paper_defaults()
        };
        let mut cells = vec![label.to_owned()];
        for topo in &topologies {
            let model = SwModel::try_new(&spec, topo, params, Scenario::SupervisorRequired)
                .expect("valid SW model");
            cells.push(format!(
                "{:.1}",
                (1.0 - model.cp_availability()) * MINUTES_PER_YEAR
            ));
        }
        table.row(cells);
    }
    print!("{table}");

    // The paper's fleet argument: availability is an average; a 500-site
    // provider sees the single-rack tail as routine headline outages.
    println!("\nFleet view (500 edge sites, Same-Day maintenance):");
    let params = SwParams::paper_defaults();
    for topo in &topologies {
        let model = SwModel::try_new(&spec, topo, params, Scenario::SupervisorRequired)
            .expect("valid SW model");
        let u = 1.0 - model.cp_availability();
        // Expected number of sites in a CP outage at any instant, and
        // site-outages per year assuming ~2-day rack events dominate Small.
        let concurrent = u * 500.0;
        println!(
            "  {:<7} unavailability {:.2e} → on average {:.3} of 500 sites down at any moment",
            topo.name(),
            u,
            concurrent
        );
    }

    println!(
        "\nDecision guidance (matches §V.D/§VII):\n\
         • Upgrading the maintenance tier helps every topology, but cannot\n\
           remove the Small/Medium rack single point of failure.\n\
         • The second rack is strictly worse than one rack: same quorum\n\
           exposure, more rack hardware to fail.\n\
         • Only the third rack changes the structure: the 2-of-3 Database\n\
           quorum survives any single rack loss.\n\
         • And you don't need Large's 12 hosts for that: Small-3R — the\n\
           consolidated GCAD VMs spread over three racks — matches Large\n\
           at a quarter of the servers (see `sdnav plan`)."
    );
}
