//! Modeling a different SDN controller with the same framework.
//!
//! The paper: "Other Controller implementations can be accommodated simply
//! by modifying the rows, columns, and values in these tables." This
//! example builds a spec for a fictional ONOS-style controller — a single
//! fused node type running a Raft consensus store (2-of-3), an app runtime
//! (1-of-3), and an OpenFlow southbound (1-of-3 for the data plane) — and
//! compares it against OpenContrail 3.x on the same hardware.
//!
//! Run with `cargo run --example custom_controller`.

use sdn_availability::{
    ControllerSpec, Plane, ProcessSpec, RestartMode, RoleScope, RoleSpec, Scenario, SwModel,
    SwParams, Topology,
};

fn onos_like() -> ControllerSpec {
    use RestartMode::{Auto, Manual};
    let controller = RoleSpec::new(
        "Controller",
        RoleScope::Controller,
        vec![
            // Raft/Atomix consensus: quorum required for the CP.
            ProcessSpec::new("atomix", Manual).cp(2),
            // Core + app runtime: any instance can serve.
            ProcessSpec::new("onos-core", Auto).cp(1),
            ProcessSpec::new("app-runtime", Auto).cp(1),
            // Southbound sessions: the data plane needs at least one live
            // OpenFlow master path.
            ProcessSpec::new("openflow-south", Auto).cp(1).dp(1),
            ProcessSpec::new("supervisor", Manual).supervisor(),
            ProcessSpec::new("nodemgr", Auto),
        ],
    );
    let forwarder = RoleSpec::new(
        "Switch",
        RoleScope::PerHost,
        vec![
            ProcessSpec::new("ovs-vswitchd", Auto).dp(1),
            ProcessSpec::new("ovsdb-server", Auto).dp(1),
            ProcessSpec::new("supervisor", Manual).supervisor(),
        ],
    );
    let spec = ControllerSpec {
        name: "ONOS-like (fictional)".to_owned(),
        nodes: 3,
        roles: vec![controller, forwarder],
        rates: None,
        consensus: None,
    };
    spec.validate().expect("spec is consistent");
    spec
}

fn report(spec: &ControllerSpec) {
    let params = SwParams::paper_defaults();
    println!("— {} —", spec.name);
    // The two encapsulating tables, derived from the spec.
    for counts in spec.restart_counts() {
        println!(
            "  {}: {} auto-restarted, {} manual processes",
            counts.role, counts.auto, counts.manual
        );
    }
    for plane in [Plane::ControlPlane, Plane::DataPlane] {
        let reqs = spec.requirements(plane);
        let m: usize = reqs.iter().filter(|r| r.required == 2).count();
        let n: usize = reqs.iter().filter(|r| r.required == 1).count();
        println!("  {plane:?}: M = {m} quorum + N = {n} any-instance requirements");
    }
    for topo in [Topology::small(spec), Topology::large(spec)] {
        let model = SwModel::try_new(spec, &topo, params, Scenario::SupervisorRequired)
            .expect("valid SW model");
        println!(
            "  {:<7} CP {:.9} ({:5.1} m/y)   host DP {:.9} ({:5.1} m/y)",
            topo.name(),
            model.cp_availability(),
            (1.0 - model.cp_availability()) * 525_960.0,
            model.host_dp_availability(),
            (1.0 - model.host_dp_availability()) * 525_960.0,
        );
    }
    println!();
}

fn main() {
    report(&ControllerSpec::opencontrail_3x());
    report(&onos_like());

    println!(
        "The ONOS-like controller has fewer critical-path processes, so its\n\
         control plane fares slightly better at equal per-process quality —\n\
         but its data plane shows the same structural weakness: per-host\n\
         forwarding processes are single points of failure that no amount\n\
         of controller redundancy removes."
    );
}
