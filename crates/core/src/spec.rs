//! Controller software specification: roles, processes, restart modes, and
//! quorum requirements (the paper's Fig. 1 and Tables I–III as data).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use sdnav_json::{FromJson, Json, JsonError, ToJson};

/// How a failed process gets restarted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestartMode {
    /// Auto-restarted by the node-role's supervisor (availability `A`).
    Auto,
    /// Requires manual restart (availability `A_S`) — e.g. `redis`, all
    /// Database processes, and the supervisor itself.
    Manual,
}

impl ToJson for RestartMode {
    fn to_json(&self) -> Json {
        Json::str(match self {
            RestartMode::Auto => "auto",
            RestartMode::Manual => "manual",
        })
    }
}

impl FromJson for RestartMode {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "auto" => Ok(RestartMode::Auto),
            "manual" => Ok(RestartMode::Manual),
            other => Err(JsonError::decode(format!(
                "unknown restart mode `{other}` (expected auto or manual)"
            ))),
        }
    }
}

/// Where a role's instances run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoleScope {
    /// One instance per controller node (the 2N+1 cluster).
    Controller,
    /// One instance per compute host (the vRouter forwarding role).
    PerHost,
}

impl ToJson for RoleScope {
    fn to_json(&self) -> Json {
        Json::str(match self {
            RoleScope::Controller => "controller",
            RoleScope::PerHost => "per_host",
        })
    }
}

impl FromJson for RoleScope {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "controller" => Ok(RoleScope::Controller),
            "per_host" => Ok(RoleScope::PerHost),
            other => Err(JsonError::decode(format!(
                "unknown role scope `{other}` (expected controller or per_host)"
            ))),
        }
    }
}

/// Which availability target is being analyzed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Plane {
    /// The SDN control plane (the paper's `A_CP`).
    ControlPlane,
    /// The per-host vRouter data plane (the paper's `A_DP`).
    DataPlane,
}

impl ToJson for Plane {
    fn to_json(&self) -> Json {
        Json::str(match self {
            Plane::ControlPlane => "control_plane",
            Plane::DataPlane => "data_plane",
        })
    }
}

impl FromJson for Plane {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "control_plane" => Ok(Plane::ControlPlane),
            "data_plane" => Ok(Plane::DataPlane),
            other => Err(JsonError::decode(format!(
                "unknown plane `{other}` (expected control_plane or data_plane)"
            ))),
        }
    }
}

/// One process within a role (a row of the paper's Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessSpec {
    /// Process name, unique within its role (e.g. `config-api`).
    pub name: String,
    /// Restart mode (drives Table II).
    pub restart: RestartMode,
    /// Control-plane quorum: how many of the `n` node instances must be up
    /// (`0` = not required; the paper's "m of 3" CP column of Table I).
    pub cp_required: u32,
    /// Data-plane quorum requirement (the "m of 3" Host DP column).
    pub dp_required: u32,
    /// Optional control-plane block label: processes of the same role with
    /// the same label form a single series block counted once. Omitted from
    /// JSON when absent.
    pub cp_group: Option<String>,
    /// Optional data-plane block label, e.g. the paper's
    /// `{control + dns + named}` block, which is "modeled as a single
    /// process with availability A³" (Table III footnote). Omitted from
    /// JSON when absent.
    pub dp_group: Option<String>,
    /// Whether this process is the role's supervisor (JSON default: false).
    pub is_supervisor: bool,
    /// Downtime multiplier relative to the baseline process of its restart
    /// mode (§VI.A: "we can easily expand to K process types if lab/field
    /// data for F suggest the need to do so", e.g. new vs mature code).
    /// `1.0` = baseline; `10.0` = an immature process with 10× the
    /// unavailability; `0.1` = a hardened one (JSON default: 1.0).
    pub downtime_factor: f64,
}

impl ToJson for ProcessSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(self.name.clone())),
            ("restart", self.restart.to_json()),
            ("cp_required", self.cp_required.to_json()),
            ("dp_required", self.dp_required.to_json()),
        ];
        if let Some(g) = &self.cp_group {
            fields.push(("cp_group", Json::str(g.clone())));
        }
        if let Some(g) = &self.dp_group {
            fields.push(("dp_group", Json::str(g.clone())));
        }
        fields.push(("is_supervisor", Json::Bool(self.is_supervisor)));
        fields.push(("downtime_factor", Json::Num(self.downtime_factor)));
        Json::obj(fields)
    }
}

impl FromJson for ProcessSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let opt_str = |name: &str| -> Result<Option<String>, JsonError> {
            match value.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_owned()))
                    .map_err(|e| e.ctx(name)),
            }
        };
        Ok(ProcessSpec {
            name: String::from_json(value.field("name")?).map_err(|e| e.ctx("name"))?,
            restart: RestartMode::from_json(value.field("restart")?)
                .map_err(|e| e.ctx("restart"))?,
            cp_required: value
                .field("cp_required")?
                .as_u32()
                .map_err(|e| e.ctx("cp_required"))?,
            dp_required: value
                .field("dp_required")?
                .as_u32()
                .map_err(|e| e.ctx("dp_required"))?,
            cp_group: opt_str("cp_group")?,
            dp_group: opt_str("dp_group")?,
            is_supervisor: match value.get("is_supervisor") {
                None | Some(Json::Null) => false,
                Some(v) => v.as_bool().map_err(|e| e.ctx("is_supervisor"))?,
            },
            downtime_factor: match value.get("downtime_factor") {
                None | Some(Json::Null) => 1.0,
                Some(v) => v.as_f64().map_err(|e| e.ctx("downtime_factor"))?,
            },
        })
    }
}

impl ProcessSpec {
    /// Creates a required-nowhere process (supervisor/nodemgr style);
    /// customize with the builder-style setters.
    #[must_use]
    pub fn new(name: impl Into<String>, restart: RestartMode) -> Self {
        ProcessSpec {
            name: name.into(),
            restart,
            cp_required: 0,
            dp_required: 0,
            cp_group: None,
            dp_group: None,
            is_supervisor: false,
            downtime_factor: 1.0,
        }
    }

    /// Sets the downtime multiplier (see [`ProcessSpec::downtime_factor`]).
    #[must_use]
    pub fn with_downtime_factor(mut self, factor: f64) -> Self {
        self.downtime_factor = factor;
        self
    }

    /// Sets the control-plane quorum requirement.
    #[must_use]
    pub fn cp(mut self, required: u32) -> Self {
        self.cp_required = required;
        self
    }

    /// Sets the data-plane quorum requirement.
    #[must_use]
    pub fn dp(mut self, required: u32) -> Self {
        self.dp_required = required;
        self
    }

    /// Puts the process in a named data-plane series block.
    #[must_use]
    pub fn dp_grouped(mut self, group: impl Into<String>, required: u32) -> Self {
        self.dp_group = Some(group.into());
        self.dp_required = required;
        self
    }

    /// Marks the process as the role's supervisor.
    #[must_use]
    pub fn supervisor(mut self) -> Self {
        self.is_supervisor = true;
        self
    }

    /// Whether the process is required (has a nonzero quorum) in `plane`.
    #[must_use]
    pub fn required_in(&self, plane: Plane) -> bool {
        match plane {
            Plane::ControlPlane => self.cp_required > 0,
            Plane::DataPlane => self.dp_required > 0,
        }
    }
}

/// One role (node type) of the controller.
#[derive(Debug, Clone, PartialEq)]
pub struct RoleSpec {
    /// Role name (e.g. `Config`, `Control`, `Analytics`, `Database`).
    pub name: String,
    /// Where instances run.
    pub scope: RoleScope,
    /// The role's processes.
    pub processes: Vec<ProcessSpec>,
}

impl RoleSpec {
    /// Creates a role.
    #[must_use]
    pub fn new(name: impl Into<String>, scope: RoleScope, processes: Vec<ProcessSpec>) -> Self {
        RoleSpec {
            name: name.into(),
            scope,
            processes,
        }
    }

    /// The role's supervisor process, if it has one.
    #[must_use]
    pub fn supervisor(&self) -> Option<&ProcessSpec> {
        self.processes.iter().find(|p| p.is_supervisor)
    }

    /// Processes required in `plane` (nonzero quorum).
    pub fn required_processes(&self, plane: Plane) -> impl Iterator<Item = &ProcessSpec> {
        self.processes.iter().filter(move |p| p.required_in(plane))
    }

    /// The role-as-atomic-element quorum used by the HW-centric analysis:
    /// the strictest control-plane requirement among the role's processes
    /// (`1` for Config/Control/Analytics, `2` for Database in OpenContrail).
    #[must_use]
    pub fn hw_quorum(&self) -> u32 {
        self.processes
            .iter()
            .map(|p| p.cp_required)
            .max()
            .unwrap_or(0)
    }
}

/// Counts of required processes by restart mode for one role (a column of
/// the paper's Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartCount {
    /// Role name.
    pub role: String,
    /// Number of auto-restarted required processes.
    pub auto: usize,
    /// Number of manually restarted required processes.
    pub manual: usize,
}

/// Counts of quorum requirements by type for one role and plane (a row of
/// the paper's Table III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumCount {
    /// Role name.
    pub role: String,
    /// `M_R`: number of "2 of n" requirements.
    pub m: usize,
    /// `N_R`: number of "1 of n" requirements (grouped blocks count once).
    pub n: usize,
}

/// A resolved quorum requirement: one process (or grouped series block) of
/// one role, with the number of node instances that must be up.
#[derive(Debug, Clone, PartialEq)]
pub struct Requirement {
    /// Index of the role in [`ControllerSpec::roles`].
    pub role_index: usize,
    /// How many node instances must be up (`m` in "m of n").
    pub required: u32,
    /// Display label (process name, or `{a+b+c}` for a block).
    pub label: String,
    /// Names of the block's member processes (one entry for a plain
    /// process requirement).
    pub members: Vec<String>,
    /// Restart modes of the block's member processes; the instance
    /// availability is the product of the members' availabilities.
    pub member_modes: Vec<RestartMode>,
    /// Downtime multipliers of the member processes (parallel to
    /// `member_modes`).
    pub member_factors: Vec<f64>,
}

impl Requirement {
    /// Availability of one node's instance of this requirement: the
    /// product of the member processes' availabilities under `params`,
    /// each adjusted by its downtime factor.
    #[must_use]
    pub fn instance_availability(&self, params: &crate::ProcessParams) -> f64 {
        self.member_modes
            .iter()
            .zip(&self.member_factors)
            .map(|(&mode, &factor)| (1.0 - (1.0 - params.for_mode(mode)) * factor).clamp(0.0, 1.0))
            .product()
    }
}

/// A complete controller software specification.
///
/// Encapsulates everything the paper's models need to know about the
/// controller implementation. [`ControllerSpec::opencontrail_3x`] is the
/// paper's reference; build your own to model a different controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSpec {
    /// Implementation name (e.g. `OpenContrail 3.x`).
    pub name: String,
    /// Cluster size `n = 2N+1` (the paper analyzes `n = 3`).
    pub nodes: u32,
    /// The roles, controller-scoped first by convention.
    pub roles: Vec<RoleSpec>,
    /// Optional unit-annotated rate overrides (see [`crate::SpecRates`]).
    /// `None` means "paper defaults everywhere"; omitted from JSON when
    /// absent.
    pub rates: Option<crate::SpecRates>,
    /// Optional consensus-protocol block (see [`crate::ConsensusSpec`]).
    /// `None` means "static k-of-n quorum counting, exactly as the paper
    /// models the control plane"; omitted from JSON when absent.
    pub consensus: Option<crate::ConsensusSpec>,
}

impl ToJson for RoleSpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name.clone())),
            ("scope", self.scope.to_json()),
            ("processes", self.processes.to_json()),
        ])
    }
}

impl FromJson for RoleSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(RoleSpec {
            name: String::from_json(value.field("name")?).map_err(|e| e.ctx("name"))?,
            scope: RoleScope::from_json(value.field("scope")?).map_err(|e| e.ctx("scope"))?,
            processes: Vec::from_json(value.field("processes")?).map_err(|e| e.ctx("processes"))?,
        })
    }
}

impl ToJson for ControllerSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(self.name.clone())),
            ("nodes", self.nodes.to_json()),
            ("roles", self.roles.to_json()),
        ];
        if let Some(r) = &self.rates {
            fields.push(("rates", r.to_json()));
        }
        if let Some(c) = &self.consensus {
            fields.push(("consensus", c.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for ControllerSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ControllerSpec {
            name: String::from_json(value.field("name")?).map_err(|e| e.ctx("name"))?,
            nodes: value.field("nodes")?.as_u32().map_err(|e| e.ctx("nodes"))?,
            roles: Vec::from_json(value.field("roles")?).map_err(|e| e.ctx("roles"))?,
            rates: match value.get("rates") {
                None | Some(Json::Null) => None,
                Some(v) => Some(crate::SpecRates::from_json(v).map_err(|e| e.ctx("rates"))?),
            },
            consensus: match value.get("consensus") {
                None | Some(Json::Null) => None,
                Some(v) => {
                    Some(crate::ConsensusSpec::from_json(v).map_err(|e| e.ctx("consensus"))?)
                }
            },
        })
    }
}

impl ControllerSpec {
    /// The paper's reference controller: OpenContrail 3.x, transcribing
    /// Fig. 1 and Table I.
    ///
    /// * Config: six auto-restarted processes, all "1 of 3" for the CP;
    ///   `discovery` also "1 of 3" for the DP.
    /// * Control: `control` ("1 of 3" CP) plus `dns`/`named` (CP-optional);
    ///   all three form the `{control+dns+named}` "1 of 3" DP block.
    /// * Analytics: four auto processes plus the manually restarted
    ///   `redis`, all "1 of 3" CP.
    /// * Database: four manually restarted "2 of 3" quorum processes.
    /// * vRouter (per host): `vrouter-agent` and `vrouter-dpdk`, both "1 of
    ///   1" for that host's DP.
    ///
    /// Every role additionally has a `supervisor` (manual restart) and a
    /// `nodemgr` (auto), both "0 of 3" — present for completeness and used
    /// by the FMEA and simulator layers.
    #[must_use]
    pub fn opencontrail_3x() -> Self {
        use RestartMode::{Auto, Manual};
        let common = |procs: &mut Vec<ProcessSpec>| {
            procs.push(ProcessSpec::new("supervisor", Manual).supervisor());
            procs.push(ProcessSpec::new("nodemgr", Auto));
        };

        let mut config = vec![
            ProcessSpec::new("config-api", Auto).cp(1),
            ProcessSpec::new("discovery", Auto).cp(1).dp(1),
            ProcessSpec::new("schema", Auto).cp(1),
            ProcessSpec::new("svc-monitor", Auto).cp(1),
            ProcessSpec::new("ifmap", Auto).cp(1),
            ProcessSpec::new("device-manager", Auto).cp(1),
        ];
        common(&mut config);

        let dp_block = "control+dns+named";
        let mut control = vec![
            ProcessSpec::new("control", Auto)
                .cp(1)
                .dp_grouped(dp_block, 1),
            ProcessSpec::new("dns", Auto).dp_grouped(dp_block, 1),
            ProcessSpec::new("named", Auto).dp_grouped(dp_block, 1),
        ];
        common(&mut control);

        let mut analytics = vec![
            ProcessSpec::new("analytics-api", Auto).cp(1),
            ProcessSpec::new("alarm-gen", Auto).cp(1),
            ProcessSpec::new("collector", Auto).cp(1),
            ProcessSpec::new("query-engine", Auto).cp(1),
            ProcessSpec::new("redis", Manual).cp(1),
        ];
        common(&mut analytics);

        let mut database = vec![
            ProcessSpec::new("cassandra-db-config", Manual).cp(2),
            ProcessSpec::new("cassandra-db-analytics", Manual).cp(2),
            ProcessSpec::new("kafka", Manual).cp(2),
            ProcessSpec::new("zookeeper", Manual).cp(2),
        ];
        common(&mut database);

        let mut vrouter = vec![
            ProcessSpec::new("vrouter-agent", Auto).dp(1),
            ProcessSpec::new("vrouter-dpdk", Auto).dp(1),
        ];
        common(&mut vrouter);

        let spec = ControllerSpec {
            name: "OpenContrail 3.x".to_owned(),
            nodes: 3,
            roles: vec![
                RoleSpec::new("Config", RoleScope::Controller, config),
                RoleSpec::new("Control", RoleScope::Controller, control),
                RoleSpec::new("Analytics", RoleScope::Controller, analytics),
                RoleSpec::new("Database", RoleScope::Controller, database),
                RoleSpec::new("vRouter", RoleScope::PerHost, vrouter),
            ],
            rates: None,
            consensus: None,
        };
        spec.validate().expect("reference spec is valid");
        spec
    }

    /// The kernel-mode vRouter deployment variant: §II notes the vRouter
    /// module runs "in kernel space (optionally replaced by the vRouter
    /// DPDK module running in user space)". In kernel mode the forwarding
    /// module is part of the host kernel rather than a restartable user
    /// process, so the per-host critical process set shrinks to just
    /// `vrouter-agent` (the paper's `K` drops from 2 to 1).
    ///
    /// ```
    /// use sdnav_core::ControllerSpec;
    /// let spec = ControllerSpec::opencontrail_3x_kernel_mode();
    /// assert_eq!(spec.local_dp_processes().len(), 1);
    /// ```
    #[must_use]
    pub fn opencontrail_3x_kernel_mode() -> Self {
        let mut spec = ControllerSpec::opencontrail_3x();
        spec.name = "OpenContrail 3.x (kernel-mode vRouter)".to_owned();
        for role in &mut spec.roles {
            if role.scope == RoleScope::PerHost {
                role.processes.retain(|p| p.name != "vrouter-dpdk");
            }
        }
        spec.validate().expect("kernel-mode variant is valid");
        spec
    }

    /// Generalizes the spec to a `2N+1`-node cluster (the paper:
    /// "Generalization to N > 1 is straightforward").
    ///
    /// Quorum ("2 of 3") processes become majority quorums
    /// (`⌊nodes/2⌋ + 1` of `nodes`); "1 of n" and "0 of n" processes keep
    /// their requirement. Per-host roles are unchanged.
    ///
    /// ```
    /// use sdnav_core::ControllerSpec;
    ///
    /// let five = ControllerSpec::opencontrail_3x().scaled_cluster(5);
    /// assert_eq!(five.nodes, 5);
    /// let zk = five.role("Database").unwrap()
    ///     .processes.iter().find(|p| p.name == "zookeeper").unwrap();
    /// assert_eq!(zk.cp_required, 3); // 3-of-5 majority
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is even or zero (quorum clusters are `2N+1`).
    #[must_use]
    pub fn scaled_cluster(&self, nodes: u32) -> Self {
        assert!(
            nodes % 2 == 1 && nodes > 0,
            "quorum clusters are 2N+1 nodes, got {nodes}"
        );
        let majority = nodes / 2 + 1;
        let old_majority = self.nodes / 2 + 1;
        let mut out = self.clone();
        out.nodes = nodes;
        for role in &mut out.roles {
            if role.scope != RoleScope::Controller {
                continue;
            }
            for p in &mut role.processes {
                if p.cp_required >= old_majority {
                    p.cp_required = majority;
                }
                if p.dp_required >= old_majority {
                    p.dp_required = majority;
                }
            }
        }
        out.validate().expect("scaling preserves validity");
        out
    }

    /// Roles whose instances run on controller nodes.
    pub fn controller_roles(&self) -> impl Iterator<Item = (usize, &RoleSpec)> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| r.scope == RoleScope::Controller)
    }

    /// Roles whose instances run on every compute host (the vRouter).
    pub fn per_host_roles(&self) -> impl Iterator<Item = &RoleSpec> {
        self.roles.iter().filter(|r| r.scope == RoleScope::PerHost)
    }

    /// Looks up a role by name.
    #[must_use]
    pub fn role(&self, name: &str) -> Option<&RoleSpec> {
        self.roles.iter().find(|r| r.name == name)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first problem found: duplicate
    /// names, quorum exceeding the cluster size, inconsistent groups, or an
    /// empty role list.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.nodes == 0 {
            return Err(SpecError::EmptyCluster);
        }
        if self.roles.is_empty() {
            return Err(SpecError::NoRoles);
        }
        if let Some(c) = &self.consensus {
            c.validate().map_err(SpecError::BadConsensus)?;
        }
        let mut role_names = BTreeMap::new();
        for role in &self.roles {
            if role_names.insert(role.name.clone(), ()).is_some() {
                return Err(SpecError::DuplicateRole {
                    role: role.name.clone(),
                });
            }
            let mut proc_names = BTreeMap::new();
            let mut supervisors = 0;
            for p in &role.processes {
                if proc_names.insert(p.name.clone(), ()).is_some() {
                    return Err(SpecError::DuplicateProcess {
                        role: role.name.clone(),
                        process: p.name.clone(),
                    });
                }
                if p.is_supervisor {
                    supervisors += 1;
                }
                let node_bound = match role.scope {
                    RoleScope::Controller => self.nodes,
                    RoleScope::PerHost => 1,
                };
                if !p.downtime_factor.is_finite() || p.downtime_factor < 0.0 {
                    return Err(SpecError::BadDowntimeFactor {
                        role: role.name.clone(),
                        process: p.name.clone(),
                    });
                }
                if p.cp_required > node_bound || p.dp_required > node_bound {
                    return Err(SpecError::QuorumTooLarge {
                        role: role.name.clone(),
                        process: p.name.clone(),
                        bound: node_bound,
                    });
                }
            }
            if supervisors > 1 {
                return Err(SpecError::MultipleSupervisors {
                    role: role.name.clone(),
                });
            }
            // Group members must agree on the requirement.
            for plane in [Plane::ControlPlane, Plane::DataPlane] {
                let mut group_req: BTreeMap<&str, u32> = BTreeMap::new();
                for p in &role.processes {
                    let (group, required) = match plane {
                        Plane::ControlPlane => (p.cp_group.as_deref(), p.cp_required),
                        Plane::DataPlane => (p.dp_group.as_deref(), p.dp_required),
                    };
                    if let Some(g) = group {
                        if let Some(&prev) = group_req.get(g) {
                            if prev != required {
                                return Err(SpecError::InconsistentGroup {
                                    role: role.name.clone(),
                                    group: g.to_owned(),
                                });
                            }
                        } else {
                            group_req.insert(g, required);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolves the quorum requirements of `plane` for controller-scoped
    /// roles: one [`Requirement`] per required process, with grouped
    /// processes merged into a single series-block requirement.
    #[must_use]
    pub fn requirements(&self, plane: Plane) -> Vec<Requirement> {
        let mut out = Vec::new();
        for (role_index, role) in self.controller_roles() {
            let mut seen_groups: BTreeMap<String, usize> = BTreeMap::new();
            for p in &role.processes {
                let (group, required) = match plane {
                    Plane::ControlPlane => (p.cp_group.as_deref(), p.cp_required),
                    Plane::DataPlane => (p.dp_group.as_deref(), p.dp_required),
                };
                match group {
                    Some(g) => {
                        if let Some(&idx) = seen_groups.get(g) {
                            let req: &mut Requirement = &mut out[idx];
                            req.members.push(p.name.clone());
                            req.member_modes.push(p.restart);
                            req.member_factors.push(p.downtime_factor);
                            req.label = format!("{{{}}}", req.members.join("+"));
                            continue;
                        }
                        if required == 0 {
                            continue;
                        }
                        seen_groups.insert(g.to_owned(), out.len());
                        out.push(Requirement {
                            role_index,
                            required,
                            label: format!("{{{}}}", p.name),
                            members: vec![p.name.clone()],
                            member_modes: vec![p.restart],
                            member_factors: vec![p.downtime_factor],
                        });
                    }
                    None => {
                        if required == 0 {
                            continue;
                        }
                        out.push(Requirement {
                            role_index,
                            required,
                            label: p.name.clone(),
                            members: vec![p.name.clone()],
                            member_modes: vec![p.restart],
                            member_factors: vec![p.downtime_factor],
                        });
                    }
                }
            }
        }
        out
    }

    /// The paper's Table II: counts of required processes by restart mode,
    /// per controller role. A process counts if it is required in *either*
    /// plane (supervisor and nodemgr, required in neither, are excluded —
    /// matching the paper's counts).
    #[must_use]
    pub fn restart_counts(&self) -> Vec<RestartCount> {
        self.controller_roles()
            .map(|(_, role)| {
                let required = role.processes.iter().filter(|p| {
                    p.required_in(Plane::ControlPlane) || p.required_in(Plane::DataPlane)
                });
                let (mut auto, mut manual) = (0, 0);
                for p in required {
                    match p.restart {
                        RestartMode::Auto => auto += 1,
                        RestartMode::Manual => manual += 1,
                    }
                }
                RestartCount {
                    role: role.name.clone(),
                    auto,
                    manual,
                }
            })
            .collect()
    }

    /// The paper's Table III: counts of quorum requirements by type
    /// (`M_R` = "2 of n", `N_R` = "1 of n") per controller role and plane.
    /// Grouped blocks count once, exactly as the paper's footnote
    /// prescribes for `{control+dns+named}`.
    #[must_use]
    pub fn quorum_counts(&self, plane: Plane) -> Vec<QuorumCount> {
        let reqs = self.requirements(plane);
        self.controller_roles()
            .map(|(role_index, role)| {
                let m = reqs
                    .iter()
                    .filter(|r| r.role_index == role_index && r.required == 2)
                    .count();
                let n = reqs
                    .iter()
                    .filter(|r| r.role_index == role_index && r.required == 1)
                    .count();
                QuorumCount {
                    role: role.name.clone(),
                    m,
                    n,
                }
            })
            .collect()
    }

    /// The per-host data-plane processes that must all be up for a host's
    /// DP (the paper's `K`; `vrouter-agent` and `vrouter-dpdk`, so `K = 2`).
    #[must_use]
    pub fn local_dp_processes(&self) -> Vec<&ProcessSpec> {
        self.per_host_roles()
            .flat_map(|r| r.processes.iter())
            .filter(|p| p.dp_required > 0)
            .collect()
    }

    /// Whether the per-host role has a supervisor (needed for the paper's
    /// `A_LDP = A^K · A_S` in the supervisor-required scenario).
    #[must_use]
    pub fn per_host_has_supervisor(&self) -> bool {
        self.per_host_roles().any(|r| r.supervisor().is_some())
    }

    /// Total number of processes across all roles (Fig. 1 has 30 for
    /// OpenContrail 3.x: 8+5+7+6 controller-role processes plus 4 vRouter).
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.roles.iter().map(|r| r.processes.len()).sum()
    }
}

/// Validation errors for a [`ControllerSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// `nodes` was zero.
    EmptyCluster,
    /// The spec has no roles.
    NoRoles,
    /// Two roles share a name.
    DuplicateRole {
        /// The duplicated role name.
        role: String,
    },
    /// Two processes within a role share a name.
    DuplicateProcess {
        /// The role containing the duplicates.
        role: String,
        /// The duplicated process name.
        process: String,
    },
    /// A quorum requirement exceeds the number of instances.
    QuorumTooLarge {
        /// The role.
        role: String,
        /// The offending process.
        process: String,
        /// The maximum allowed requirement.
        bound: u32,
    },
    /// Group members disagree about the group's requirement.
    InconsistentGroup {
        /// The role.
        role: String,
        /// The group label.
        group: String,
    },
    /// A role has more than one supervisor process.
    MultipleSupervisors {
        /// The role.
        role: String,
    },
    /// A process has a negative or non-finite downtime factor.
    BadDowntimeFactor {
        /// The role.
        role: String,
        /// The offending process.
        process: String,
    },
    /// The optional consensus block is structurally invalid.
    BadConsensus(crate::ConsensusError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyCluster => write!(f, "cluster must have at least one node"),
            SpecError::NoRoles => write!(f, "controller spec has no roles"),
            SpecError::DuplicateRole { role } => write!(f, "duplicate role {role:?}"),
            SpecError::DuplicateProcess { role, process } => {
                write!(f, "duplicate process {process:?} in role {role:?}")
            }
            SpecError::QuorumTooLarge {
                role,
                process,
                bound,
            } => write!(
                f,
                "process {process:?} in role {role:?} requires more than {bound} instances"
            ),
            SpecError::InconsistentGroup { role, group } => write!(
                f,
                "group {group:?} in role {role:?} has inconsistent quorum requirements"
            ),
            SpecError::MultipleSupervisors { role } => {
                write!(f, "role {role:?} has more than one supervisor process")
            }
            SpecError::BadDowntimeFactor { role, process } => write!(
                f,
                "process {process:?} in role {role:?} has an invalid downtime factor"
            ),
            SpecError::BadConsensus(e) => write!(f, "consensus block: {e}"),
        }
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opencontrail_spec_is_valid() {
        let spec = ControllerSpec::opencontrail_3x();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.nodes, 3);
        assert_eq!(spec.roles.len(), 5);
    }

    #[test]
    fn table_2_restart_counts_match_paper() {
        let spec = ControllerSpec::opencontrail_3x();
        let counts = spec.restart_counts();
        let get = |role: &str| counts.iter().find(|c| c.role == role).unwrap();
        assert_eq!((get("Config").auto, get("Config").manual), (6, 0));
        assert_eq!((get("Control").auto, get("Control").manual), (3, 0));
        assert_eq!((get("Analytics").auto, get("Analytics").manual), (4, 1));
        assert_eq!((get("Database").auto, get("Database").manual), (0, 4));
    }

    #[test]
    fn table_3_cp_quorum_counts_match_paper() {
        let spec = ControllerSpec::opencontrail_3x();
        let counts = spec.quorum_counts(Plane::ControlPlane);
        let get = |role: &str| counts.iter().find(|c| c.role == role).unwrap();
        assert_eq!((get("Config").m, get("Config").n), (0, 6));
        assert_eq!((get("Control").m, get("Control").n), (0, 1));
        assert_eq!((get("Analytics").m, get("Analytics").n), (0, 5));
        assert_eq!((get("Database").m, get("Database").n), (4, 0));
        let total_m: usize = counts.iter().map(|c| c.m).sum();
        let total_n: usize = counts.iter().map(|c| c.n).sum();
        assert_eq!((total_m, total_n), (4, 12)); // paper's "Sums" row
    }

    #[test]
    fn table_3_dp_quorum_counts_match_paper() {
        let spec = ControllerSpec::opencontrail_3x();
        let counts = spec.quorum_counts(Plane::DataPlane);
        let get = |role: &str| counts.iter().find(|c| c.role == role).unwrap();
        assert_eq!((get("Config").m, get("Config").n), (0, 1));
        assert_eq!((get("Control").m, get("Control").n), (0, 1)); // the block
        assert_eq!((get("Analytics").m, get("Analytics").n), (0, 0));
        assert_eq!((get("Database").m, get("Database").n), (0, 0));
        let total_n: usize = counts.iter().map(|c| c.n).sum();
        assert_eq!(total_n, 2);
    }

    #[test]
    fn control_dp_block_has_three_members() {
        let spec = ControllerSpec::opencontrail_3x();
        let reqs = spec.requirements(Plane::DataPlane);
        let block = reqs
            .iter()
            .find(|r| r.label.starts_with('{'))
            .expect("control block present");
        assert_eq!(block.member_modes.len(), 3);
        assert_eq!(block.required, 1);
        assert!(block.label.contains("control"));
        assert!(block.label.contains("dns"));
        assert!(block.label.contains("named"));
    }

    #[test]
    fn cp_requirements_total_sixteen() {
        // 4 M-type + 12 N-type requirements (Table III sums).
        let spec = ControllerSpec::opencontrail_3x();
        assert_eq!(spec.requirements(Plane::ControlPlane).len(), 16);
    }

    #[test]
    fn local_dp_processes_k_equals_two() {
        let spec = ControllerSpec::opencontrail_3x();
        let local = spec.local_dp_processes();
        assert_eq!(local.len(), 2);
        assert!(spec.per_host_has_supervisor());
    }

    #[test]
    fn hw_quorums_derive_from_processes() {
        let spec = ControllerSpec::opencontrail_3x();
        assert_eq!(spec.role("Config").unwrap().hw_quorum(), 1);
        assert_eq!(spec.role("Control").unwrap().hw_quorum(), 1);
        assert_eq!(spec.role("Analytics").unwrap().hw_quorum(), 1);
        assert_eq!(spec.role("Database").unwrap().hw_quorum(), 2);
    }

    #[test]
    fn every_role_has_supervisor_and_nodemgr() {
        // §III: "there are five supervisors and five nodemgrs".
        let spec = ControllerSpec::opencontrail_3x();
        for role in &spec.roles {
            assert!(
                role.supervisor().is_some(),
                "{} lacks supervisor",
                role.name
            );
            assert!(
                role.processes.iter().any(|p| p.name == "nodemgr"),
                "{} lacks nodemgr",
                role.name
            );
        }
    }

    #[test]
    fn supervisors_are_manual_restart() {
        let spec = ControllerSpec::opencontrail_3x();
        for role in &spec.roles {
            assert_eq!(role.supervisor().unwrap().restart, RestartMode::Manual);
        }
    }

    #[test]
    fn process_count_matches_fig_1() {
        // Fig. 1: per-role process counts including supervisor + nodemgr:
        // Config 8, Control 5, Analytics 7, Database 6, vRouter 4.
        let spec = ControllerSpec::opencontrail_3x();
        let count = |role: &str| spec.role(role).unwrap().processes.len();
        assert_eq!(count("Config"), 8);
        assert_eq!(count("Control"), 5);
        assert_eq!(count("Analytics"), 7);
        assert_eq!(count("Database"), 6);
        assert_eq!(count("vRouter"), 4);
        assert_eq!(spec.process_count(), 30);
    }

    #[test]
    fn downtime_factor_defaults_and_serde() {
        let spec = ControllerSpec::opencontrail_3x();
        assert!(spec
            .roles
            .iter()
            .flat_map(|r| &r.processes)
            .all(|p| p.downtime_factor == 1.0));
        // Old JSON without the field still parses (decoder default).
        let json = r#"{"name":"config-api","restart":"auto","cp_required":1,"dp_required":0}"#;
        let p: ProcessSpec = sdnav_json::from_str(json).unwrap();
        assert_eq!(p.downtime_factor, 1.0);
        // Builder sets it.
        let q = ProcessSpec::new("new-code", RestartMode::Auto).with_downtime_factor(10.0);
        assert_eq!(q.downtime_factor, 10.0);
    }

    #[test]
    fn validation_rejects_bad_downtime_factor() {
        let mut spec = ControllerSpec::opencontrail_3x();
        spec.roles[0].processes[0].downtime_factor = -1.0;
        assert!(matches!(
            spec.validate(),
            Err(SpecError::BadDowntimeFactor { .. })
        ));
        spec.roles[0].processes[0].downtime_factor = f64::NAN;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn requirement_instance_availability_uses_factors() {
        let params = crate::ProcessParams::paper_defaults();
        let mut spec = ControllerSpec::opencontrail_3x();
        // Make ifmap 10x less reliable.
        let cfg = spec.roles.iter_mut().find(|r| r.name == "Config").unwrap();
        let ifmap = cfg
            .processes
            .iter_mut()
            .find(|p| p.name == "ifmap")
            .unwrap();
        ifmap.downtime_factor = 10.0;
        let reqs = spec.requirements(Plane::ControlPlane);
        let ifmap_req = reqs.iter().find(|r| r.label == "ifmap").unwrap();
        let expected = 1.0 - 10.0 * (1.0 - params.auto);
        assert!((ifmap_req.instance_availability(&params) - expected).abs() < 1e-12);
        // Unmodified processes keep the baseline.
        let schema_req = reqs.iter().find(|r| r.label == "schema").unwrap();
        assert!((schema_req.instance_availability(&params) - params.auto).abs() < 1e-15);
    }

    #[test]
    fn kernel_mode_variant_drops_dpdk() {
        let spec = ControllerSpec::opencontrail_3x_kernel_mode();
        assert_eq!(spec.local_dp_processes().len(), 1);
        assert_eq!(spec.local_dp_processes()[0].name, "vrouter-agent");
        // Controller-side tables are untouched.
        assert_eq!(
            spec.quorum_counts(Plane::ControlPlane),
            ControllerSpec::opencontrail_3x().quorum_counts(Plane::ControlPlane)
        );
        assert!(spec.per_host_has_supervisor());
    }

    #[test]
    fn scaled_cluster_five_nodes() {
        let spec = ControllerSpec::opencontrail_3x();
        let five = spec.scaled_cluster(5);
        assert_eq!(five.nodes, 5);
        // Quorum processes become 3-of-5; 1-of-n stay 1; 0-of-n stay 0.
        let db = five.role("Database").unwrap();
        assert!(db.processes.iter().filter(|p| p.cp_required == 3).count() == 4);
        let cfg = five.role("Config").unwrap();
        assert!(cfg
            .processes
            .iter()
            .filter(|p| p.cp_required > 0)
            .all(|p| p.cp_required == 1));
        // Per-host vRouter untouched.
        let vr = five.role("vRouter").unwrap();
        assert!(vr.processes.iter().all(|p| p.dp_required <= 1));
        assert!(five.validate().is_ok());
    }

    #[test]
    fn scaled_cluster_identity() {
        let spec = ControllerSpec::opencontrail_3x();
        assert_eq!(spec.scaled_cluster(3), spec);
    }

    #[test]
    #[should_panic(expected = "2N+1")]
    fn scaled_cluster_rejects_even() {
        let _ = ControllerSpec::opencontrail_3x().scaled_cluster(4);
    }

    #[test]
    fn validation_rejects_duplicate_role() {
        let mut spec = ControllerSpec::opencontrail_3x();
        let copy = spec.roles[0].clone();
        spec.roles.push(copy);
        assert!(matches!(
            spec.validate(),
            Err(SpecError::DuplicateRole { .. })
        ));
    }

    #[test]
    fn validation_rejects_duplicate_process() {
        let mut spec = ControllerSpec::opencontrail_3x();
        let p = spec.roles[0].processes[0].clone();
        spec.roles[0].processes.push(p);
        assert!(matches!(
            spec.validate(),
            Err(SpecError::DuplicateProcess { .. })
        ));
    }

    #[test]
    fn validation_rejects_oversized_quorum() {
        let mut spec = ControllerSpec::opencontrail_3x();
        spec.roles[0].processes[0].cp_required = 4;
        assert!(matches!(
            spec.validate(),
            Err(SpecError::QuorumTooLarge { .. })
        ));
    }

    #[test]
    fn validation_rejects_inconsistent_group() {
        let mut spec = ControllerSpec::opencontrail_3x();
        // Make `dns` disagree with its group about the requirement.
        let control = spec.roles.iter_mut().find(|r| r.name == "Control").unwrap();
        let dns = control
            .processes
            .iter_mut()
            .find(|p| p.name == "dns")
            .unwrap();
        dns.dp_required = 0;
        assert!(matches!(
            spec.validate(),
            Err(SpecError::InconsistentGroup { .. })
        ));
    }

    #[test]
    fn validation_rejects_double_supervisor() {
        let mut spec = ControllerSpec::opencontrail_3x();
        spec.roles[0].processes[0].is_supervisor = true;
        assert!(matches!(
            spec.validate(),
            Err(SpecError::MultipleSupervisors { .. })
        ));
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = SpecError::QuorumTooLarge {
            role: "X".into(),
            process: "p".into(),
            bound: 3,
        };
        assert!(e.to_string().contains("more than 3"));
    }

    #[test]
    fn json_round_trip() {
        let spec = ControllerSpec::opencontrail_3x();
        let json = sdnav_json::to_string_pretty(&spec);
        let back: ControllerSpec = sdnav_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Optional group fields stay omitted when absent.
        assert!(!json.contains("cp_group"));
        assert!(json.contains("dp_group"));
        // The reference model carries no rate overrides, and the field is
        // omitted rather than serialized as null.
        assert!(!json.contains("rates"));
    }

    #[test]
    fn json_round_trip_with_rates() {
        let mut spec = ControllerSpec::opencontrail_3x();
        spec.rates = Some(crate::SpecRates {
            process_mtbf: Some(crate::Quantity::with_unit(200_000.0, crate::Unit::Fit)),
            ..crate::SpecRates::default()
        });
        let json = sdnav_json::to_string_pretty(&spec);
        assert!(json.contains("\"rates\""));
        assert!(json.contains("\"fit\""));
        let back: ControllerSpec = sdnav_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
