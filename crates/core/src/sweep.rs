//! Parameter sweeps regenerating the paper's Figs. 3–5.

use sdnav_json::{FromJson, Json, JsonError, ToJson};

use crate::{ControllerSpec, HwModel, HwParams, Scenario, SwModel, SwParams, Topology};

/// `count` evenly spaced points covering `[start, end]` inclusive.
///
/// ```
/// use sdnav_core::sweep::linspace;
/// assert_eq!(linspace(0.0, 1.0, 5), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// assert_eq!(linspace(2.0, 2.0, 1), vec![2.0]);
/// ```
///
/// # Panics
///
/// Panics if `count == 0`.
#[must_use]
pub fn linspace(start: f64, end: f64, count: usize) -> Vec<f64> {
    assert!(count > 0, "need at least one point");
    if count == 1 {
        return vec![start];
    }
    (0..count)
        .map(|i| start + (end - start) * i as f64 / (count - 1) as f64)
        .collect()
}

/// One point of the Fig. 3 sweep: HW-centric controller availability vs the
/// role availability `A_C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// Role availability `A_C` (the x-axis).
    pub a_c: f64,
    /// Small-topology controller availability.
    pub small: f64,
    /// Medium-topology controller availability.
    pub medium: f64,
    /// Large-topology controller availability.
    pub large: f64,
}

impl ToJson for Fig3Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("a_c", Json::Num(self.a_c)),
            ("small", Json::Num(self.small)),
            ("medium", Json::Num(self.medium)),
            ("large", Json::Num(self.large)),
        ])
    }
}

impl FromJson for Fig3Row {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Fig3Row {
            a_c: value.field("a_c")?.as_f64().map_err(|e| e.ctx("a_c"))?,
            small: value.field("small")?.as_f64().map_err(|e| e.ctx("small"))?,
            medium: value
                .field("medium")?
                .as_f64()
                .map_err(|e| e.ctx("medium"))?,
            large: value.field("large")?.as_f64().map_err(|e| e.ctx("large"))?,
        })
    }
}

/// Regenerates Fig. 3: sweeps `A_C` over `[0.999, 1.0]` (the paper's
/// `0.9995 ± 0.0005`) with `points` samples at the given base parameters.
#[must_use]
pub fn fig3(spec: &ControllerSpec, base: HwParams, points: usize) -> Vec<Fig3Row> {
    let small = Topology::small(spec);
    let medium = Topology::medium(spec);
    let large = Topology::large(spec);
    linspace(0.999, 1.0, points)
        .into_iter()
        .map(|a_c| {
            let p = base.with_a_c(a_c);
            Fig3Row {
                a_c,
                small: HwModel::try_new(spec, &small, p)
                    .expect("valid HW model")
                    .availability(),
                medium: HwModel::try_new(spec, &medium, p)
                    .expect("valid HW model")
                    .availability(),
                large: HwModel::try_new(spec, &large, p)
                    .expect("valid HW model")
                    .availability(),
            }
        })
        .collect()
}

/// One point of the Fig. 4 / Fig. 5 sweeps: the four §VI options at one
/// x-axis position.
///
/// The x-axis follows the paper: `x = 0` is the default (`A = 0.99998`,
/// `A_S = 0.9998`); `x = −1` is one order of magnitude *more* downtime
/// (less reliable); `x = +1` is one order of magnitude *less* downtime.
/// `A` and `A_S` vary in lock-step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwSweepRow {
    /// Figure x-axis value in `[−1, 1]` (orders of magnitude of downtime
    /// *removed*).
    pub x: f64,
    /// The auto-restart process availability `A` at this point.
    pub a: f64,
    /// Option 1S: Small topology, supervisor not required.
    pub small_no_sup: f64,
    /// Option 2S: Small topology, supervisor required.
    pub small_sup: f64,
    /// Option 1L: Large topology, supervisor not required.
    pub large_no_sup: f64,
    /// Option 2L: Large topology, supervisor required.
    pub large_sup: f64,
}

impl ToJson for SwSweepRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("x", Json::Num(self.x)),
            ("a", Json::Num(self.a)),
            ("small_no_sup", Json::Num(self.small_no_sup)),
            ("small_sup", Json::Num(self.small_sup)),
            ("large_no_sup", Json::Num(self.large_no_sup)),
            ("large_sup", Json::Num(self.large_sup)),
        ])
    }
}

impl FromJson for SwSweepRow {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let f = |name: &'static str| -> Result<f64, JsonError> {
            value.field(name)?.as_f64().map_err(|e| e.ctx(name))
        };
        Ok(SwSweepRow {
            x: f("x")?,
            a: f("a")?,
            small_no_sup: f("small_no_sup")?,
            small_sup: f("small_sup")?,
            large_no_sup: f("large_no_sup")?,
            large_sup: f("large_sup")?,
        })
    }
}

fn sw_sweep(
    spec: &ControllerSpec,
    base: SwParams,
    points: usize,
    metric: impl Fn(&SwModel<'_>) -> f64,
) -> Vec<SwSweepRow> {
    let small = Topology::small(spec);
    let large = Topology::large(spec);
    linspace(-1.0, 1.0, points)
        .into_iter()
        .map(|x| {
            // Figure x = +1 means 10× LESS downtime → scale by 10^(−x).
            let params = base.scale_process_downtime(-x);
            let eval = |topo: &Topology, scenario| {
                metric(&SwModel::try_new(spec, topo, params, scenario).expect("valid SW model"))
            };
            SwSweepRow {
                x,
                a: params.process.auto,
                small_no_sup: eval(&small, Scenario::SupervisorNotRequired),
                small_sup: eval(&small, Scenario::SupervisorRequired),
                large_no_sup: eval(&large, Scenario::SupervisorNotRequired),
                large_sup: eval(&large, Scenario::SupervisorRequired),
            }
        })
        .collect()
}

/// Regenerates Fig. 4: SDN control-plane availability `A_CP` for the four
/// options as process availability sweeps ±1 order of magnitude of
/// downtime.
#[must_use]
pub fn fig4(spec: &ControllerSpec, base: SwParams, points: usize) -> Vec<SwSweepRow> {
    sw_sweep(spec, base, points, |m| m.cp_availability())
}

/// Regenerates Fig. 5: per-host data-plane availability `A_DP` for the four
/// options.
#[must_use]
pub fn fig5(spec: &ControllerSpec, base: SwParams, points: usize) -> Vec<SwSweepRow> {
    sw_sweep(spec, base, points, |m| m.host_dp_availability())
}

/// Finds the root of a monotone function on `[lo, hi]` by bisection.
///
/// `f` must be non-decreasing; returns `None` if `f` does not change sign
/// on the interval. Converges to ~1e-12 interval width.
///
/// ```
/// use sdnav_core::sweep::bisect;
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0).unwrap();
/// assert!((root - 2.0f64.sqrt()).abs() < 1e-9);
/// assert!(bisect(|x| x + 10.0, 0.0, 1.0).is_none());
/// ```
pub fn bisect(f: impl Fn(f64) -> f64, lo: f64, hi: f64) -> Option<f64> {
    let (mut lo, mut hi) = (lo, hi);
    let f_lo = f(lo);
    let f_hi = f(hi);
    if f_lo == 0.0 {
        return Some(lo);
    }
    if f_hi == 0.0 {
        return Some(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return None;
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        let v = f(mid);
        if v == 0.0 || hi - lo < 1e-12 {
            return Some(mid);
        }
        if v.signum() == f_lo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// The inverse planning question: what auto-restart process availability
/// `A` (with `A_S` scaled in lock-step, as in Figs. 4–5) is needed to meet
/// a control-plane downtime target on the given deployment?
///
/// Returns `None` when the target is unreachable even with perfect
/// processes (e.g. a Small-topology target below the ~5.26 m/y rack floor)
/// or when it is already met at 10× worse processes (no hardening needed
/// anywhere in the modeled range).
#[must_use]
pub fn required_process_availability(
    spec: &ControllerSpec,
    topology: &Topology,
    base: SwParams,
    scenario: Scenario,
    target_minutes_per_year: f64,
) -> Option<f64> {
    let target_u = target_minutes_per_year / 525_960.0;
    let downtime_at = |delta: f64| {
        let params = base.scale_process_downtime(delta);
        let model = SwModel::try_new(spec, topology, params, scenario).expect("valid SW model");
        (1.0 - model.cp_availability()) - target_u
    };
    // delta < 0 = better processes. Search over ±1 order of magnitude each
    // way, the figures' range.
    let delta = bisect(downtime_at, -3.0, 1.0)?;
    Some(base.scale_process_downtime(delta).process.auto)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(-1.0, 1.0, 21);
        assert_eq!(v.len(), 21);
        assert_eq!(v[0], -1.0);
        assert_eq!(v[20], 1.0);
        assert!((v[10] - 0.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn linspace_rejects_zero_points() {
        let _ = linspace(0.0, 1.0, 0);
    }

    #[test]
    fn fig3_covers_paper_range_and_ordering() {
        let s = spec();
        let rows = fig3(&s, HwParams::paper_defaults(), 11);
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].a_c, 0.999);
        assert_eq!(rows[10].a_c, 1.0);
        for r in &rows {
            // Fig. 3 shape: Large strictly above Small; Medium at or just
            // below Small.
            assert!(r.large > r.small, "a_c={}", r.a_c);
            assert!(r.medium <= r.small + 1e-12, "a_c={}", r.a_c);
        }
    }

    #[test]
    fn fig3_quoted_ranges() {
        // §V.D: Small/Medium range 0.999986–0.999990; Large
        // 0.999996–0.9999990 over A_C ∈ [0.999, 1.0].
        let s = spec();
        let rows = fig3(&s, HwParams::paper_defaults(), 3);
        let lo = &rows[0];
        let hi = &rows[2];
        assert!((lo.small - 0.999986).abs() < 2e-6, "{:.7}", lo.small);
        assert!((hi.small - 0.999990).abs() < 2e-6, "{:.7}", hi.small);
        assert!((lo.large - 0.999996).abs() < 2e-6, "{:.7}", lo.large);
        assert!(hi.large > 0.999998, "{:.7}", hi.large);
    }

    #[test]
    fn fig4_center_matches_defaults() {
        let s = spec();
        let rows = fig4(&s, SwParams::paper_defaults(), 3);
        let center = &rows[1];
        assert!((center.x).abs() < 1e-12);
        assert!((center.a - 0.99998).abs() < 1e-12);
        // Ordering at the default point: 1L best, then 2L, 1S, 2S.
        assert!(center.large_no_sup > center.large_sup);
        assert!(center.large_sup > center.small_no_sup);
        assert!(center.small_no_sup > center.small_sup);
    }

    #[test]
    fn fig4_monotone_in_x() {
        // More reliable processes (larger x) never decrease availability.
        let s = spec();
        let rows = fig4(&s, SwParams::paper_defaults(), 9);
        for w in rows.windows(2) {
            assert!(w[1].small_sup >= w[0].small_sup);
            assert!(w[1].large_no_sup >= w[0].large_no_sup);
        }
    }

    #[test]
    fn bisect_finds_monotone_roots() {
        let r = bisect(|x| x - 0.25, 0.0, 1.0).unwrap();
        assert!((r - 0.25).abs() < 1e-10);
        assert_eq!(bisect(|_| 1.0, 0.0, 1.0), None);
        assert_eq!(bisect(|x| x, 0.0, 1.0), Some(0.0));
    }

    #[test]
    fn required_availability_inverse_round_trips() {
        // Ask for exactly the downtime the defaults produce: the answer is
        // the default A.
        let s = spec();
        let topo = Topology::large(&s);
        let base = SwParams::paper_defaults();
        let model = SwModel::try_new(&s, &topo, base, Scenario::SupervisorRequired)
            .expect("valid SW model");
        let target = (1.0 - model.cp_availability()) * 525_960.0;
        let a =
            required_process_availability(&s, &topo, base, Scenario::SupervisorRequired, target)
                .unwrap();
        assert!((a - base.process.auto).abs() < 1e-7, "a={a}");
    }

    #[test]
    fn required_availability_tighter_target_needs_better_processes() {
        let s = spec();
        let topo = Topology::large(&s);
        let base = SwParams::paper_defaults();
        let relaxed =
            required_process_availability(&s, &topo, base, Scenario::SupervisorRequired, 2.0)
                .unwrap();
        let strict =
            required_process_availability(&s, &topo, base, Scenario::SupervisorRequired, 0.5)
                .unwrap();
        assert!(strict > relaxed, "strict={strict} relaxed={relaxed}");
    }

    #[test]
    fn required_availability_detects_rack_floor() {
        // The Small topology cannot beat its single-rack ~5.26 m/y floor no
        // matter how good the processes are.
        let s = spec();
        let topo = Topology::small(&s);
        let impossible = required_process_availability(
            &s,
            &topo,
            SwParams::paper_defaults(),
            Scenario::SupervisorRequired,
            2.0,
        );
        assert_eq!(impossible, None);
    }

    #[test]
    fn fig5_supervisor_gap_dominates() {
        // Fig. 5 shape: the supervisor-required curves sit well below the
        // not-required curves at every x (the vRouter supervisor SPOF).
        let s = spec();
        let rows = fig5(&s, SwParams::paper_defaults(), 9);
        for r in &rows {
            assert!(r.small_no_sup > r.small_sup, "x={}", r.x);
            assert!(r.large_no_sup > r.large_sup, "x={}", r.x);
        }
    }

    #[test]
    fn fig5_small_and_large_nearly_identical() {
        // §VI.G: "there is little difference between the Small and Large
        // topologies" for the DP (the 5 m/y rack term only).
        let s = spec();
        let rows = fig5(&s, SwParams::paper_defaults(), 5);
        for r in &rows {
            let gap = (r.small_sup - r.large_sup).abs() * 525_960.0;
            assert!(gap < 7.0, "x={}: gap {gap:.1} m/y", r.x);
        }
    }
}
