//! Exact availability evaluation by conditional enumeration over shared
//! hardware elements.
//!
//! The paper's Eqs. (2), (4)–(5), (7), (9) and (12)–(15) are all instances
//! of one pattern: *condition on the up/down state of hardware shared by
//! several `(role, node)` blocks, then multiply conditionally independent
//! block availabilities*. This module implements that pattern once, for any
//! topology:
//!
//! 1. Every `(role, node)` block has a hosting chain `{VM, host, rack}`.
//! 2. Chain elements used by **more than one** block correlate blocks and
//!    are enumerated explicitly (for the paper's topologies that is at most
//!    7 elements, i.e. 128 states).
//! 3. Chain elements used by a single block are *folded* into the block's
//!    Bernoulli survival probability.
//! 4. Conditional on the shared state, blocks are independent and the
//!    caller computes system availability from the per-block probabilities.

use crate::{ControllerSpec, Topology};

/// Per-block hosting chain after shared/unshared split.
#[derive(Debug, Clone)]
struct BlockChain {
    /// Indices into the shared-element table; the block is down if any of
    /// these is down.
    shared: Vec<usize>,
    /// Product of the availabilities of the block's unshared chain
    /// elements.
    folded: f64,
}

/// Exact enumerator over the shared hardware of a `(spec, topology)` pair.
#[derive(Debug, Clone)]
pub(crate) struct Enumerator {
    /// Availabilities of the shared elements.
    shared: Vec<f64>,
    /// Blocks in `role-major` order: `blocks[r * nodes + node]`.
    blocks: Vec<BlockChain>,
    /// Spec role indices covered, in block-row order.
    role_indices: Vec<usize>,
    /// Cluster size.
    nodes: usize,
}

/// Upper bound on enumerable shared elements (2^20 states ≈ 1M, still fast).
const MAX_SHARED: usize = 20;

impl Enumerator {
    /// Builds the enumerator for the controller-scoped roles of `spec` laid
    /// out on `topology`, with platform availabilities `a_v`, `a_h`, `a_r`.
    ///
    /// # Panics
    ///
    /// Panics if the topology fails validation against the spec (callers
    /// validate first and surface proper errors) or if the topology has more
    /// than [`MAX_SHARED`] shared elements.
    pub(crate) fn new(
        spec: &ControllerSpec,
        topology: &Topology,
        a_v: f64,
        a_h: f64,
        a_r: f64,
    ) -> Self {
        topology
            .validate(spec)
            .expect("topology must be valid for the spec");
        let nodes = spec.nodes as usize;

        // Element universe: rack ids, then host ids, then VM ids.
        let rack_base = 0usize;
        let host_base = rack_base + topology.rack_count();
        let vm_base = host_base + topology.host_count();
        let element_count = vm_base + topology.vm_count();
        let avail_of = |elem: usize| -> f64 {
            if elem >= vm_base {
                a_v
            } else if elem >= host_base {
                a_h
            } else {
                a_r
            }
        };

        // Chains per block, in role-major order.
        let mut role_indices = Vec::new();
        let mut chains: Vec<Vec<usize>> = Vec::new();
        let mut usage = vec![0usize; element_count];
        for (role_index, role) in spec.controller_roles() {
            role_indices.push(role_index);
            for node in 0..spec.nodes {
                let vm = topology
                    .vm_of(&role.name, node)
                    .expect("validated topology has all assignments");
                let host = topology.host_of(vm);
                let rack = topology.rack_of(host);
                let chain = vec![rack_base + rack.0, host_base + host.0, vm_base + vm.0];
                for &e in &chain {
                    usage[e] += 1;
                }
                chains.push(chain);
            }
        }

        // Split shared vs folded.
        let mut shared_index = vec![usize::MAX; element_count];
        let mut shared = Vec::new();
        for (e, &uses) in usage.iter().enumerate() {
            if uses >= 2 {
                shared_index[e] = shared.len();
                shared.push(avail_of(e));
            }
        }
        assert!(
            shared.len() <= MAX_SHARED,
            "topology has {} shared elements; exact enumeration supports at most {MAX_SHARED}",
            shared.len()
        );

        let blocks = chains
            .into_iter()
            .map(|chain| {
                let mut folded = 1.0;
                let mut shared_refs = Vec::new();
                for e in chain {
                    if shared_index[e] != usize::MAX {
                        shared_refs.push(shared_index[e]);
                    } else {
                        folded *= avail_of(e);
                    }
                }
                BlockChain {
                    shared: shared_refs,
                    folded,
                }
            })
            .collect();

        Enumerator {
            shared,
            blocks,
            role_indices,
            nodes,
        }
    }

    /// Spec role indices covered, in block-row order.
    pub(crate) fn role_indices(&self) -> &[usize] {
        &self.role_indices
    }

    /// Cluster size.
    pub(crate) fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of shared elements being enumerated.
    #[cfg(test)]
    pub(crate) fn shared_count(&self) -> usize {
        self.shared.len()
    }

    /// Sums `P(shared state) · cond(per-block survival probabilities)` over
    /// all shared states. `cond` receives a slice of length
    /// `role_indices.len() * nodes` in role-major order; entry `b` is the
    /// probability the block's full chain is up, conditional on the shared
    /// state (zero if a shared chain element is down).
    pub(crate) fn evaluate<F: FnMut(&[f64]) -> f64>(&self, mut cond: F) -> f64 {
        let s = self.shared.len();
        let mut q = vec![0.0; self.blocks.len()];
        let mut total = 0.0;
        for mask in 0u64..(1u64 << s) {
            let mut weight = 1.0;
            for (i, &a) in self.shared.iter().enumerate() {
                weight *= if mask & (1 << i) != 0 { a } else { 1.0 - a };
                if weight == 0.0 {
                    break;
                }
            }
            if weight == 0.0 {
                continue;
            }
            for (b, chain) in self.blocks.iter().enumerate() {
                let up = chain.shared.iter().all(|&i| mask & (1 << i) != 0);
                q[b] = if up { chain.folded } else { 0.0 };
            }
            total += weight * cond(&q);
        }
        total
    }
}

/// Availability of one role given its per-node survival probabilities.
///
/// `node_probs[i]` is the probability node `i`'s block (chain, and
/// supervisor where required) is up; `reqs` lists the role's quorum
/// requirements as `(m, instance availability)` pairs. Computes
/// `Σ_{S ⊆ nodes} P(exactly S up) · Π_reqs A_{m/|S|}(a)` — the paper's
/// Eq. (12)–(13) pattern.
pub(crate) fn role_availability(node_probs: &[f64], reqs: &[(u32, f64)]) -> f64 {
    if reqs.is_empty() {
        return 1.0;
    }
    let n = node_probs.len();
    let mut total = 0.0;
    for mask in 0u32..(1u32 << n) {
        let mut weight = 1.0;
        let mut up = 0u32;
        for (i, &p) in node_probs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                weight *= p;
                up += 1;
            } else {
                weight *= 1.0 - p;
            }
            if weight == 0.0 {
                break;
            }
        }
        if weight == 0.0 {
            continue;
        }
        let mut avail = 1.0;
        for &(m, a) in reqs {
            avail *= sdnav_blocks::kofn::k_of_n(m, up, a);
            if avail == 0.0 {
                break;
            }
        }
        total += weight * avail;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControllerSpec, Topology};

    const EPS: f64 = 1e-12;

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    #[test]
    fn small_topology_shares_seven_elements() {
        // 1 rack + 3 hosts + 3 VMs, all shared across role blocks.
        let s = spec();
        let e = Enumerator::new(&s, &Topology::small(&s), 0.99995, 0.9999, 0.99999);
        assert_eq!(e.shared_count(), 7);
        assert_eq!(e.role_indices().len(), 4);
        assert_eq!(e.nodes(), 3);
    }

    #[test]
    fn medium_topology_shares_five_elements() {
        // 2 racks + 3 hosts shared; the 12 VMs are per-block (folded).
        let s = spec();
        let e = Enumerator::new(&s, &Topology::medium(&s), 0.99995, 0.9999, 0.99999);
        assert_eq!(e.shared_count(), 5);
    }

    #[test]
    fn large_topology_shares_three_elements() {
        // 3 racks shared; hosts and VMs are per-block.
        let s = spec();
        let e = Enumerator::new(&s, &Topology::large(&s), 0.99995, 0.9999, 0.99999);
        assert_eq!(e.shared_count(), 3);
    }

    #[test]
    fn evaluate_total_probability_is_one() {
        let s = spec();
        for topo in [
            Topology::small(&s),
            Topology::medium(&s),
            Topology::large(&s),
        ] {
            let e = Enumerator::new(&s, &topo, 0.9, 0.8, 0.7);
            let total = e.evaluate(|_| 1.0);
            assert!((total - 1.0).abs() < EPS, "{}: {total}", topo.name());
        }
    }

    #[test]
    fn evaluate_marginal_block_probability() {
        // E[q_b] must equal A_V · A_H · A_R for every block.
        let s = spec();
        let (a_v, a_h, a_r) = (0.95, 0.9, 0.85);
        for topo in [
            Topology::small(&s),
            Topology::medium(&s),
            Topology::large(&s),
        ] {
            let e = Enumerator::new(&s, &topo, a_v, a_h, a_r);
            for b in 0..12 {
                let marginal = e.evaluate(|q| q[b]);
                assert!(
                    (marginal - a_v * a_h * a_r).abs() < EPS,
                    "{} block {b}: {marginal}",
                    topo.name()
                );
            }
        }
    }

    #[test]
    fn evaluate_block_correlation_differs_by_topology() {
        // Joint survival of two blocks of the same node: in Small they share
        // the whole chain (joint = marginal); in Large only the rack.
        let s = spec();
        let (a_v, a_h, a_r) = (0.95, 0.9, 0.85);
        let chain = a_v * a_h * a_r;

        let small = Enumerator::new(&s, &Topology::small(&s), a_v, a_h, a_r);
        // Blocks 0 and 3 are (role 0, node 0) and (role 1, node 0).
        let joint_small = small.evaluate(|q| q[0] * q[3]);
        assert!((joint_small - chain).abs() < EPS, "{joint_small}");

        let large = Enumerator::new(&s, &Topology::large(&s), a_v, a_h, a_r);
        let joint_large = large.evaluate(|q| q[0] * q[3]);
        let expected = a_r * (a_v * a_h) * (a_v * a_h);
        assert!((joint_large - expected).abs() < EPS, "{joint_large}");
    }

    #[test]
    fn role_availability_reduces_to_k_of_n() {
        // With perfect chains, role availability is the quorum formula.
        let a = 0.997;
        let got = role_availability(&[1.0, 1.0, 1.0], &[(2, a)]);
        let expected = sdnav_blocks::kofn::k_of_n(2, 3, a);
        assert!((got - expected).abs() < EPS);
    }

    #[test]
    fn role_availability_with_dead_nodes() {
        // Two nodes certain up, one certain down: 2-of-2 quorum.
        let a: f64 = 0.99;
        let got = role_availability(&[1.0, 0.0, 1.0], &[(2, a)]);
        assert!((got - a * a).abs() < EPS);
        // 1-of-2:
        let got = role_availability(&[1.0, 0.0, 1.0], &[(1, a)]);
        assert!((got - (1.0 - (1.0 - a) * (1.0 - a))).abs() < EPS);
    }

    #[test]
    fn role_availability_no_requirements_is_one() {
        assert_eq!(role_availability(&[0.0, 0.0, 0.0], &[]), 1.0);
    }

    #[test]
    fn role_availability_requirements_multiply_given_chains() {
        // With deterministic chains, requirements are independent.
        let (a1, a2) = (0.9, 0.8);
        let got = role_availability(&[1.0, 1.0, 1.0], &[(1, a1), (2, a2)]);
        let expected = sdnav_blocks::kofn::k_of_n(1, 3, a1) * sdnav_blocks::kofn::k_of_n(2, 3, a2);
        assert!((got - expected).abs() < EPS);
    }

    #[test]
    fn role_availability_brute_force_cross_check() {
        // Random-ish chains and two requirements, checked against a direct
        // 2^(3+3·2) enumeration of chains and process instances.
        let probs = [0.9, 0.7, 0.95];
        let reqs = [(1u32, 0.85), (2u32, 0.9)];
        let got = role_availability(&probs, &reqs);

        let mut expected = 0.0;
        // chains: 3 bits; per requirement: one instance per node → 2 × 3 bits.
        for mask in 0u32..(1 << 9) {
            let chain = |i: usize| mask & (1 << i) != 0;
            let inst = |r: usize, i: usize| mask & (1 << (3 + r * 3 + i)) != 0;
            let mut p = 1.0;
            for (i, &cp) in probs.iter().enumerate() {
                p *= if chain(i) { cp } else { 1.0 - cp };
            }
            for (r, &(_, a)) in reqs.iter().enumerate() {
                for i in 0..3 {
                    p *= if inst(r, i) { a } else { 1.0 - a };
                }
            }
            let ok = reqs.iter().enumerate().all(|(r, &(m, _))| {
                let up = (0..3).filter(|&i| chain(i) && inst(r, i)).count();
                up >= m as usize
            });
            if ok {
                expected += p;
            }
        }
        assert!(
            (got - expected).abs() < 1e-10,
            "got {got} expected {expected}"
        );
    }

    #[test]
    fn params_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<crate::SwParams>();
        check::<crate::HwParams>();
    }
}
