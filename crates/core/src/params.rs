//! Model parameter sets and the paper's default values.

use std::error::Error;
use std::fmt;

use sdnav_json::{FromJson, Json, JsonError, ToJson};

/// A parameter failed validation: the named field is NaN or outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamError {
    /// Name of the offending field (e.g. `a_c`).
    pub field: &'static str,
    /// The out-of-range value.
    pub value: f64,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{field} must lie in [0, 1], got {value}",
            field = self.field,
            value = self.value
        )
    }
}

impl Error for ParamError {}

fn try_unit(value: f64, field: &'static str) -> Result<f64, ParamError> {
    if value.is_nan() || !(0.0..=1.0).contains(&value) {
        Err(ParamError { field, value })
    } else {
        Ok(value)
    }
}

fn check_unit(value: f64, name: &'static str) -> f64 {
    match try_unit(value, name) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Parameters of the HW-centric analysis (§V): per-element availabilities
/// with every controller role treated as an atomic element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwParams {
    /// Availability of one instance of any controller role, `A_C`.
    pub a_c: f64,
    /// Availability of a VM including its guest OS, `A_V`.
    pub a_v: f64,
    /// Availability of a host including host OS and hypervisor, `A_H`.
    pub a_h: f64,
    /// Availability of a rack (power, ToR switching, …), `A_R`.
    pub a_r: f64,
}

impl HwParams {
    /// The paper's §V.D rule-of-thumb values:
    /// `A_C = 0.9995`, `A_V = 0.99995`, `A_H = 0.99999`, `A_R = 0.99999`.
    ///
    /// (The Fig. 3 caption prints `A_H = 0.99990`, but only `0.99999`
    /// reproduces the quoted availabilities; see DESIGN.md.)
    #[must_use]
    pub fn paper_defaults() -> Self {
        HwParams {
            a_c: 0.9995,
            a_v: 0.99995,
            a_h: 0.99999,
            a_r: 0.99999,
        }
    }

    /// Returns a copy with a different role availability `A_C` (the Fig. 3
    /// sweep variable).
    #[must_use]
    pub fn with_a_c(self, a_c: f64) -> Self {
        HwParams {
            a_c: check_unit(a_c, "a_c"),
            ..self
        }
    }

    /// Checks all fields lie in `[0, 1]`, reporting the first violation.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] naming the offending field.
    pub fn try_validate(&self) -> Result<(), ParamError> {
        try_unit(self.a_c, "a_c")?;
        try_unit(self.a_v, "a_v")?;
        try_unit(self.a_h, "a_h")?;
        try_unit(self.a_r, "a_r")?;
        Ok(())
    }
}

impl ToJson for HwParams {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("a_c", Json::Num(self.a_c)),
            ("a_v", Json::Num(self.a_v)),
            ("a_h", Json::Num(self.a_h)),
            ("a_r", Json::Num(self.a_r)),
        ])
    }
}

impl FromJson for HwParams {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(HwParams {
            a_c: value.field("a_c")?.as_f64().map_err(|e| e.ctx("a_c"))?,
            a_v: value.field("a_v")?.as_f64().map_err(|e| e.ctx("a_v"))?,
            a_h: value.field("a_h")?.as_f64().map_err(|e| e.ctx("a_h"))?,
            a_r: value.field("a_r")?.as_f64().map_err(|e| e.ctx("a_r"))?,
        })
    }
}

/// Per-process availability parameters for the SW-centric analysis (§VI.A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessParams {
    /// Availability `A` of a process auto-restarted by its supervisor
    /// (`F/(F+R)`; the paper's default `0.99998` from `F = 5000 h`,
    /// `R = 0.1 h`).
    pub auto: f64,
    /// Availability `A_S` of an unsupervised, manually restarted process —
    /// including the supervisor itself (`F/(F+R_S)`; the paper's default
    /// `0.99980` from `R_S = 1 h`).
    pub manual: f64,
}

impl ProcessParams {
    /// The paper's §VI.A defaults: `A = 0.99998`, `A_S = 0.99980`.
    #[must_use]
    pub fn paper_defaults() -> Self {
        ProcessParams {
            auto: 0.99998,
            manual: 0.99980,
        }
    }

    /// Availability of a process with the given restart mode.
    #[must_use]
    pub fn for_mode(&self, mode: crate::RestartMode) -> f64 {
        match mode {
            crate::RestartMode::Auto => self.auto,
            crate::RestartMode::Manual => self.manual,
        }
    }

    /// Availability of a specific process: the restart-mode baseline
    /// adjusted by the process's [`crate::ProcessSpec::downtime_factor`]
    /// (`u' = u · factor`, clamped into `[0, 1]`).
    #[must_use]
    pub fn for_spec(&self, process: &crate::ProcessSpec) -> f64 {
        let u = (1.0 - self.for_mode(process.restart)) * process.downtime_factor;
        (1.0 - u).clamp(0.0, 1.0)
    }

    /// The paper's Figs. 4–5 x-axis: scale both process *downtimes* by
    /// `10^delta`, in lock-step. `delta = 0` is the default point;
    /// `delta = −1` means 10× less downtime (more reliable);
    /// `delta = +1` means 10× more downtime.
    ///
    /// Note the paper's axis is labeled the other way around in the text
    /// (−1 = "1 order of magnitude less reliable"); [`crate::sweep`]
    /// handles the figure orientation — this function is the primitive.
    #[must_use]
    pub fn scale_downtime(&self, delta: f64) -> Self {
        let factor = 10f64.powf(delta);
        ProcessParams {
            auto: (1.0 - (1.0 - self.auto) * factor).clamp(0.0, 1.0),
            manual: (1.0 - (1.0 - self.manual) * factor).clamp(0.0, 1.0),
        }
    }

    /// Checks all fields lie in `[0, 1]`, reporting the first violation.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] naming the offending field.
    pub fn try_validate(&self) -> Result<(), ParamError> {
        try_unit(self.auto, "auto")?;
        try_unit(self.manual, "manual")?;
        Ok(())
    }
}

impl ToJson for ProcessParams {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("auto", Json::Num(self.auto)),
            ("manual", Json::Num(self.manual)),
        ])
    }
}

impl FromJson for ProcessParams {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ProcessParams {
            auto: value.field("auto")?.as_f64().map_err(|e| e.ctx("auto"))?,
            manual: value
                .field("manual")?
                .as_f64()
                .map_err(|e| e.ctx("manual"))?,
        })
    }
}

/// Full parameter set for the SW-centric analysis: process availabilities
/// plus the platform availabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwParams {
    /// Process availabilities (`A`, `A_S`).
    pub process: ProcessParams,
    /// VM availability `A_V`.
    pub a_v: f64,
    /// Host availability `A_H`.
    pub a_h: f64,
    /// Rack availability `A_R`.
    pub a_r: f64,
}

impl SwParams {
    /// The paper's §VI defaults: `A = 0.99998`, `A_S = 0.99980`,
    /// `A_V = 0.99995`, `A_H = 0.99990`, `A_R = 0.99999`.
    ///
    /// `A_H` here is `0.99990` (not the HW-centric `0.99999`): only that
    /// value reproduces the quoted Fig. 4/5 downtime numbers; see DESIGN.md.
    #[must_use]
    pub fn paper_defaults() -> Self {
        SwParams {
            process: ProcessParams::paper_defaults(),
            a_v: 0.99995,
            a_h: 0.99990,
            a_r: 0.99999,
        }
    }

    /// Returns a copy with process downtimes scaled by `10^delta`
    /// (the Figs. 4–5 sweep).
    #[must_use]
    pub fn scale_process_downtime(self, delta: f64) -> Self {
        SwParams {
            process: self.process.scale_downtime(delta),
            ..self
        }
    }

    /// Checks all fields lie in `[0, 1]`, reporting the first violation.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] naming the offending field.
    pub fn try_validate(&self) -> Result<(), ParamError> {
        self.process.try_validate()?;
        try_unit(self.a_v, "a_v")?;
        try_unit(self.a_h, "a_h")?;
        try_unit(self.a_r, "a_r")?;
        Ok(())
    }
}

impl ToJson for SwParams {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("process", self.process.to_json()),
            ("a_v", Json::Num(self.a_v)),
            ("a_h", Json::Num(self.a_h)),
            ("a_r", Json::Num(self.a_r)),
        ])
    }
}

impl FromJson for SwParams {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(SwParams {
            process: ProcessParams::from_json(value.field("process")?)
                .map_err(|e| e.ctx("process"))?,
            a_v: value.field("a_v")?.as_f64().map_err(|e| e.ctx("a_v"))?,
            a_h: value.field("a_h")?.as_f64().map_err(|e| e.ctx("a_h"))?,
            a_r: value.field("a_r")?.as_f64().map_err(|e| e.ctx("a_r"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5d_and_6a() {
        let hw = HwParams::paper_defaults();
        assert_eq!(hw.a_c, 0.9995);
        assert_eq!(hw.a_v, 0.99995);
        assert_eq!(hw.a_h, 0.99999);
        assert_eq!(hw.a_r, 0.99999);

        let sw = SwParams::paper_defaults();
        assert_eq!(sw.process.auto, 0.99998);
        assert_eq!(sw.process.manual, 0.99980);
        assert_eq!(sw.a_h, 0.99990);
    }

    #[test]
    fn defaults_derive_from_paper_mtbf_mttr() {
        // A = F/(F+R), F = 5000 h, R = 0.1 h; A_S with R_S = 1 h.
        let p = ProcessParams::paper_defaults();
        assert!((p.auto - 5000.0 / 5000.1).abs() < 2e-8);
        assert!((p.manual - 5000.0 / 5001.0).abs() < 2e-7);
    }

    #[test]
    fn downtime_scaling_is_exact_in_unavailability() {
        let p = ProcessParams::paper_defaults();
        let worse = p.scale_downtime(1.0);
        assert!((1.0 - worse.auto - 10.0 * (1.0 - p.auto)).abs() < 1e-12);
        assert!((1.0 - worse.manual - 10.0 * (1.0 - p.manual)).abs() < 1e-12);
        let better = p.scale_downtime(-1.0);
        assert!((1.0 - better.auto - 0.1 * (1.0 - p.auto)).abs() < 1e-12);
    }

    #[test]
    fn downtime_scaling_zero_is_identity() {
        let p = ProcessParams::paper_defaults();
        let same = p.scale_downtime(0.0);
        assert!((same.auto - p.auto).abs() < 1e-15);
        assert!((same.manual - p.manual).abs() < 1e-15);
    }

    #[test]
    fn downtime_scaling_clamps_at_extremes() {
        let p = ProcessParams {
            auto: 0.5,
            manual: 0.5,
        };
        let worse = p.scale_downtime(2.0);
        assert_eq!(worse.auto, 0.0);
    }

    #[test]
    #[should_panic(expected = "a_c must lie in [0, 1]")]
    fn with_a_c_validates() {
        let _ = HwParams::paper_defaults().with_a_c(1.2);
    }

    #[test]
    fn json_round_trip() {
        let hw = HwParams::paper_defaults();
        let json = sdnav_json::to_string(&hw);
        let back: HwParams = sdnav_json::from_str(&json).unwrap();
        assert_eq!(hw, back);

        let sw = SwParams::paper_defaults();
        let back: SwParams = sdnav_json::from_str(&sdnav_json::to_string(&sw)).unwrap();
        assert_eq!(sw, back);
    }

    #[test]
    fn try_validate_reports_field_and_value() {
        let bad = HwParams {
            a_c: 1.2,
            ..HwParams::paper_defaults()
        };
        let err = bad.try_validate().unwrap_err();
        assert_eq!(err.field, "a_c");
        assert_eq!(err.value, 1.2);
        assert!(HwParams::paper_defaults().try_validate().is_ok());
        assert!(SwParams::paper_defaults().try_validate().is_ok());
        assert!(ProcessParams::paper_defaults().try_validate().is_ok());
    }

    #[test]
    fn try_validate_rejects_nan() {
        let bad = SwParams {
            a_v: f64::NAN,
            ..SwParams::paper_defaults()
        };
        assert_eq!(bad.try_validate().unwrap_err().field, "a_v");
    }
}
