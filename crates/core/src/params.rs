//! Model parameter sets and the paper's default values.

use serde::{Deserialize, Serialize};

fn check_unit(value: f64, name: &str) -> f64 {
    assert!(
        (0.0..=1.0).contains(&value),
        "{name} must lie in [0, 1], got {value}"
    );
    value
}

/// Parameters of the HW-centric analysis (§V): per-element availabilities
/// with every controller role treated as an atomic element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwParams {
    /// Availability of one instance of any controller role, `A_C`.
    pub a_c: f64,
    /// Availability of a VM including its guest OS, `A_V`.
    pub a_v: f64,
    /// Availability of a host including host OS and hypervisor, `A_H`.
    pub a_h: f64,
    /// Availability of a rack (power, ToR switching, …), `A_R`.
    pub a_r: f64,
}

impl HwParams {
    /// The paper's §V.D rule-of-thumb values:
    /// `A_C = 0.9995`, `A_V = 0.99995`, `A_H = 0.99999`, `A_R = 0.99999`.
    ///
    /// (The Fig. 3 caption prints `A_H = 0.99990`, but only `0.99999`
    /// reproduces the quoted availabilities; see DESIGN.md.)
    #[must_use]
    pub fn paper_defaults() -> Self {
        HwParams {
            a_c: 0.9995,
            a_v: 0.99995,
            a_h: 0.99999,
            a_r: 0.99999,
        }
    }

    /// Returns a copy with a different role availability `A_C` (the Fig. 3
    /// sweep variable).
    #[must_use]
    pub fn with_a_c(self, a_c: f64) -> Self {
        HwParams {
            a_c: check_unit(a_c, "a_c"),
            ..self
        }
    }

    /// Validates all fields lie in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any availability is out of range.
    pub fn validate(&self) {
        check_unit(self.a_c, "a_c");
        check_unit(self.a_v, "a_v");
        check_unit(self.a_h, "a_h");
        check_unit(self.a_r, "a_r");
    }
}

/// Per-process availability parameters for the SW-centric analysis (§VI.A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessParams {
    /// Availability `A` of a process auto-restarted by its supervisor
    /// (`F/(F+R)`; the paper's default `0.99998` from `F = 5000 h`,
    /// `R = 0.1 h`).
    pub auto: f64,
    /// Availability `A_S` of an unsupervised, manually restarted process —
    /// including the supervisor itself (`F/(F+R_S)`; the paper's default
    /// `0.99980` from `R_S = 1 h`).
    pub manual: f64,
}

impl ProcessParams {
    /// The paper's §VI.A defaults: `A = 0.99998`, `A_S = 0.99980`.
    #[must_use]
    pub fn paper_defaults() -> Self {
        ProcessParams {
            auto: 0.99998,
            manual: 0.99980,
        }
    }

    /// Availability of a process with the given restart mode.
    #[must_use]
    pub fn for_mode(&self, mode: crate::RestartMode) -> f64 {
        match mode {
            crate::RestartMode::Auto => self.auto,
            crate::RestartMode::Manual => self.manual,
        }
    }

    /// Availability of a specific process: the restart-mode baseline
    /// adjusted by the process's [`crate::ProcessSpec::downtime_factor`]
    /// (`u' = u · factor`, clamped into `[0, 1]`).
    #[must_use]
    pub fn for_spec(&self, process: &crate::ProcessSpec) -> f64 {
        let u = (1.0 - self.for_mode(process.restart)) * process.downtime_factor;
        (1.0 - u).clamp(0.0, 1.0)
    }

    /// The paper's Figs. 4–5 x-axis: scale both process *downtimes* by
    /// `10^delta`, in lock-step. `delta = 0` is the default point;
    /// `delta = −1` means 10× less downtime (more reliable);
    /// `delta = +1` means 10× more downtime.
    ///
    /// Note the paper's axis is labeled the other way around in the text
    /// (−1 = "1 order of magnitude less reliable"); [`crate::sweep`]
    /// handles the figure orientation — this function is the primitive.
    #[must_use]
    pub fn scale_downtime(&self, delta: f64) -> Self {
        let factor = 10f64.powf(delta);
        ProcessParams {
            auto: (1.0 - (1.0 - self.auto) * factor).clamp(0.0, 1.0),
            manual: (1.0 - (1.0 - self.manual) * factor).clamp(0.0, 1.0),
        }
    }

    /// Validates all fields lie in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any availability is out of range.
    pub fn validate(&self) {
        check_unit(self.auto, "auto");
        check_unit(self.manual, "manual");
    }
}

/// Full parameter set for the SW-centric analysis: process availabilities
/// plus the platform availabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwParams {
    /// Process availabilities (`A`, `A_S`).
    pub process: ProcessParams,
    /// VM availability `A_V`.
    pub a_v: f64,
    /// Host availability `A_H`.
    pub a_h: f64,
    /// Rack availability `A_R`.
    pub a_r: f64,
}

impl SwParams {
    /// The paper's §VI defaults: `A = 0.99998`, `A_S = 0.99980`,
    /// `A_V = 0.99995`, `A_H = 0.99990`, `A_R = 0.99999`.
    ///
    /// `A_H` here is `0.99990` (not the HW-centric `0.99999`): only that
    /// value reproduces the quoted Fig. 4/5 downtime numbers; see DESIGN.md.
    #[must_use]
    pub fn paper_defaults() -> Self {
        SwParams {
            process: ProcessParams::paper_defaults(),
            a_v: 0.99995,
            a_h: 0.99990,
            a_r: 0.99999,
        }
    }

    /// Returns a copy with process downtimes scaled by `10^delta`
    /// (the Figs. 4–5 sweep).
    #[must_use]
    pub fn scale_process_downtime(self, delta: f64) -> Self {
        SwParams {
            process: self.process.scale_downtime(delta),
            ..self
        }
    }

    /// Validates all fields lie in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any availability is out of range.
    pub fn validate(&self) {
        self.process.validate();
        check_unit(self.a_v, "a_v");
        check_unit(self.a_h, "a_h");
        check_unit(self.a_r, "a_r");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5d_and_6a() {
        let hw = HwParams::paper_defaults();
        assert_eq!(hw.a_c, 0.9995);
        assert_eq!(hw.a_v, 0.99995);
        assert_eq!(hw.a_h, 0.99999);
        assert_eq!(hw.a_r, 0.99999);

        let sw = SwParams::paper_defaults();
        assert_eq!(sw.process.auto, 0.99998);
        assert_eq!(sw.process.manual, 0.99980);
        assert_eq!(sw.a_h, 0.99990);
    }

    #[test]
    fn defaults_derive_from_paper_mtbf_mttr() {
        // A = F/(F+R), F = 5000 h, R = 0.1 h; A_S with R_S = 1 h.
        let p = ProcessParams::paper_defaults();
        assert!((p.auto - 5000.0 / 5000.1).abs() < 2e-8);
        assert!((p.manual - 5000.0 / 5001.0).abs() < 2e-7);
    }

    #[test]
    fn downtime_scaling_is_exact_in_unavailability() {
        let p = ProcessParams::paper_defaults();
        let worse = p.scale_downtime(1.0);
        assert!((1.0 - worse.auto - 10.0 * (1.0 - p.auto)).abs() < 1e-12);
        assert!((1.0 - worse.manual - 10.0 * (1.0 - p.manual)).abs() < 1e-12);
        let better = p.scale_downtime(-1.0);
        assert!((1.0 - better.auto - 0.1 * (1.0 - p.auto)).abs() < 1e-12);
    }

    #[test]
    fn downtime_scaling_zero_is_identity() {
        let p = ProcessParams::paper_defaults();
        let same = p.scale_downtime(0.0);
        assert!((same.auto - p.auto).abs() < 1e-15);
        assert!((same.manual - p.manual).abs() < 1e-15);
    }

    #[test]
    fn downtime_scaling_clamps_at_extremes() {
        let p = ProcessParams {
            auto: 0.5,
            manual: 0.5,
        };
        let worse = p.scale_downtime(2.0);
        assert_eq!(worse.auto, 0.0);
    }

    #[test]
    #[should_panic(expected = "a_c must lie in [0, 1]")]
    fn with_a_c_validates() {
        let _ = HwParams::paper_defaults().with_a_c(1.2);
    }

    #[test]
    fn serde_round_trip() {
        let hw = HwParams::paper_defaults();
        let json = serde_json::to_string(&hw).unwrap();
        let back: HwParams = serde_json::from_str(&json).unwrap();
        assert_eq!(hw, back);
    }
}
