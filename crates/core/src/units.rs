//! Unit metadata for spec-level rate overrides.
//!
//! The paper's parameter tables mix three ways of writing the same physical
//! fact: mean times (hours), rates (per hour), and FIT counts (failures per
//! 10⁹ device-hours). A [`Quantity`] carries a value plus an optional
//! declared [`Unit`], and [`SpecRates`] attaches such quantities to a
//! [`ControllerSpec`](crate::ControllerSpec) so the audit layer can check
//! dimensional consistency end to end (spec → params → RBD → CTMC → sim
//! config) instead of trusting bare `f64`s.

use std::fmt;

use sdnav_json::{FromJson, Json, JsonError, ToJson};

/// Hours in 10⁹ device-hours: the FIT scale (1 FIT ⇔ MTBF of `1e9` hours).
pub const FIT_SCALE: f64 = 1.0e9;

/// Dimension of a numeric model parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Mean time (MTBF, MTTR, restart delay, horizon) in hours.
    Hours,
    /// An event rate per hour (`1/hours`).
    PerHour,
    /// Failures in time: failures per 10⁹ device-hours.
    Fit,
    /// A probability in `[0, 1]` (steady-state availability).
    Probability,
    /// A unitless scale factor (downtime multipliers, counts).
    Dimensionless,
}

impl Unit {
    /// The JSON spelling of the unit.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Hours => "hours",
            Unit::PerHour => "per_hour",
            Unit::Fit => "fit",
            Unit::Probability => "probability",
            Unit::Dimensionless => "dimensionless",
        }
    }

    /// Parses the JSON spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "hours" => Unit::Hours,
            "per_hour" => Unit::PerHour,
            "fit" => Unit::Fit,
            "probability" => Unit::Probability,
            "dimensionless" => Unit::Dimensionless,
            _ => return None,
        })
    }

    /// Whether the unit is dimensionally a time or convertible to one
    /// (hours, a rate, or a FIT count).
    #[must_use]
    pub fn is_time_like(self) -> bool {
        matches!(self, Unit::Hours | Unit::PerHour | Unit::Fit)
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl ToJson for Unit {
    fn to_json(&self) -> Json {
        Json::str(self.as_str())
    }
}

impl FromJson for Unit {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let s = value.as_str()?;
        Unit::parse(s).ok_or_else(|| {
            JsonError::decode(format!(
                "unknown unit `{s}` (expected hours, per_hour, fit, probability, \
                 or dimensionless)"
            ))
        })
    }
}

/// A numeric parameter with an optionally declared unit.
///
/// In JSON a quantity is either a bare number (`5000.0`, unit undeclared —
/// the audit layer infers one) or an annotated object
/// (`{"value": 200.0, "unit": "fit"}`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantity {
    /// The numeric value, in `unit` if declared.
    pub value: f64,
    /// The declared unit, if the spec author annotated one.
    pub unit: Option<Unit>,
}

impl Quantity {
    /// A bare (unit-undeclared) quantity.
    #[must_use]
    pub fn bare(value: f64) -> Self {
        Quantity { value, unit: None }
    }

    /// A unit-annotated quantity.
    #[must_use]
    pub fn with_unit(value: f64, unit: Unit) -> Self {
        Quantity {
            value,
            unit: Some(unit),
        }
    }

    /// Converts a *declared* time-like quantity to hours: `hours` pass
    /// through, `fit` becomes `1e9 / value`, `per_hour` becomes
    /// `1 / value`. Returns `None` for undeclared or non-time units, or a
    /// non-positive value (no finite conversion exists).
    #[must_use]
    pub fn declared_hours(&self) -> Option<f64> {
        if !(self.value.is_finite() && self.value > 0.0) {
            return None;
        }
        match self.unit? {
            Unit::Hours => Some(self.value),
            Unit::Fit => Some(FIT_SCALE / self.value),
            Unit::PerHour => Some(1.0 / self.value),
            Unit::Probability | Unit::Dimensionless => None,
        }
    }
}

impl ToJson for Quantity {
    fn to_json(&self) -> Json {
        match self.unit {
            None => Json::Num(self.value),
            Some(u) => Json::obj(vec![
                ("value", Json::Num(self.value)),
                ("unit", u.to_json()),
            ]),
        }
    }
}

impl FromJson for Quantity {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Ok(n) = value.as_f64() {
            return Ok(Quantity::bare(n));
        }
        let v = value.field("value")?.as_f64().map_err(|e| e.ctx("value"))?;
        let unit = match value.get("unit") {
            None | Some(Json::Null) => None,
            Some(u) => Some(Unit::from_json(u).map_err(|e| e.ctx("unit"))?),
        };
        Ok(Quantity { value: v, unit })
    }
}

/// An MTBF/MTTR pair for one hardware layer, both optional.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RatePair {
    /// Mean time between failures.
    pub mtbf: Option<Quantity>,
    /// Mean time to repair.
    pub mttr: Option<Quantity>,
}

impl RatePair {
    /// Whether neither member is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mtbf.is_none() && self.mttr.is_none()
    }
}

impl ToJson for RatePair {
    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(q) = self.mtbf {
            fields.push(("mtbf", q.to_json()));
        }
        if let Some(q) = self.mttr {
            fields.push(("mttr", q.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for RatePair {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let opt = |name: &str| -> Result<Option<Quantity>, JsonError> {
            match value.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => Quantity::from_json(v).map(Some).map_err(|e| e.ctx(name)),
            }
        };
        Ok(RatePair {
            mtbf: opt("mtbf")?,
            mttr: opt("mttr")?,
        })
    }
}

/// Optional spec-level overrides of the paper's default rates, with unit
/// annotations.
///
/// Every field is optional; an absent field means "use the paper default".
/// The audit layer resolves each declared or inferred unit to the model's
/// canonical dimension (hours for times, probability for availabilities)
/// and flows the resolved values into the derived parameter set, RBD, CTMC
/// generator matrices, and simulator config it re-audits (SA013–SA019).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecRates {
    /// Mean time between process failures (paper: `F = 5000 h`).
    pub process_mtbf: Option<Quantity>,
    /// Supervisor auto-restart delay (paper: `R = 0.1 h`).
    pub auto_restart: Option<Quantity>,
    /// Manual restart delay (paper: `R_S = 1 h`).
    pub manual_restart: Option<Quantity>,
    /// Rack failure/repair times.
    pub rack: Option<RatePair>,
    /// Host failure/repair times.
    pub host: Option<RatePair>,
    /// VM failure/repair times.
    pub vm: Option<RatePair>,
    /// VM availability override (paper: `A_V = 0.99995`).
    pub a_v: Option<Quantity>,
    /// Host availability override (paper: `A_H`).
    pub a_h: Option<Quantity>,
    /// Rack availability override (paper: `A_R = 0.99999`).
    pub a_r: Option<Quantity>,
    /// Simulation horizon override (hours).
    pub sim_horizon: Option<Quantity>,
}

impl SpecRates {
    /// Whether no override is present at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.process_mtbf.is_none()
            && self.auto_restart.is_none()
            && self.manual_restart.is_none()
            && self.rack.as_ref().is_none_or(RatePair::is_empty)
            && self.host.as_ref().is_none_or(RatePair::is_empty)
            && self.vm.as_ref().is_none_or(RatePair::is_empty)
            && self.a_v.is_none()
            && self.a_h.is_none()
            && self.a_r.is_none()
            && self.sim_horizon.is_none()
    }
}

impl ToJson for SpecRates {
    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        let quantities = [
            ("process_mtbf", &self.process_mtbf),
            ("auto_restart", &self.auto_restart),
            ("manual_restart", &self.manual_restart),
        ];
        for (name, v) in quantities {
            if let Some(q) = v {
                fields.push((name, q.to_json()));
            }
        }
        for (name, pair) in [("rack", &self.rack), ("host", &self.host), ("vm", &self.vm)] {
            if let Some(p) = pair {
                if !p.is_empty() {
                    fields.push((name, p.to_json()));
                }
            }
        }
        let trailing = [
            ("a_v", &self.a_v),
            ("a_h", &self.a_h),
            ("a_r", &self.a_r),
            ("sim_horizon", &self.sim_horizon),
        ];
        for (name, v) in trailing {
            if let Some(q) = v {
                fields.push((name, q.to_json()));
            }
        }
        Json::obj(fields)
    }
}

impl FromJson for SpecRates {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let opt_q = |name: &str| -> Result<Option<Quantity>, JsonError> {
            match value.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => Quantity::from_json(v).map(Some).map_err(|e| e.ctx(name)),
            }
        };
        let opt_pair = |name: &str| -> Result<Option<RatePair>, JsonError> {
            match value.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => RatePair::from_json(v).map(Some).map_err(|e| e.ctx(name)),
            }
        };
        Ok(SpecRates {
            process_mtbf: opt_q("process_mtbf")?,
            auto_restart: opt_q("auto_restart")?,
            manual_restart: opt_q("manual_restart")?,
            rack: opt_pair("rack")?,
            host: opt_pair("host")?,
            vm: opt_pair("vm")?,
            a_v: opt_q("a_v")?,
            a_h: opt_q("a_h")?,
            a_r: opt_q("a_r")?,
            sim_horizon: opt_q("sim_horizon")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_spellings_round_trip() {
        for u in [
            Unit::Hours,
            Unit::PerHour,
            Unit::Fit,
            Unit::Probability,
            Unit::Dimensionless,
        ] {
            assert_eq!(Unit::parse(u.as_str()), Some(u));
            let back: Unit = sdnav_json::from_str(&sdnav_json::to_string(&u)).unwrap();
            assert_eq!(back, u);
        }
        assert_eq!(Unit::parse("fortnights"), None);
    }

    #[test]
    fn quantity_json_forms() {
        let bare: Quantity = sdnav_json::from_str("5000.0").unwrap();
        assert_eq!(bare, Quantity::bare(5000.0));
        let annotated: Quantity =
            sdnav_json::from_str(r#"{"value": 200.0, "unit": "fit"}"#).unwrap();
        assert_eq!(annotated, Quantity::with_unit(200.0, Unit::Fit));
        // Bare quantities serialize back to bare numbers.
        assert_eq!(sdnav_json::to_string(&bare), "5000");
        let s = sdnav_json::to_string(&annotated);
        let back: Quantity = sdnav_json::from_str(&s).unwrap();
        assert_eq!(back, annotated);
    }

    #[test]
    fn declared_hours_conversions() {
        assert_eq!(
            Quantity::with_unit(5000.0, Unit::Hours).declared_hours(),
            Some(5000.0)
        );
        assert_eq!(
            Quantity::with_unit(200.0, Unit::Fit).declared_hours(),
            Some(5_000_000.0)
        );
        assert_eq!(
            Quantity::with_unit(0.0002, Unit::PerHour).declared_hours(),
            Some(5000.0)
        );
        assert_eq!(Quantity::bare(5000.0).declared_hours(), None);
        assert_eq!(
            Quantity::with_unit(0.99, Unit::Probability).declared_hours(),
            None
        );
        assert_eq!(Quantity::with_unit(0.0, Unit::Hours).declared_hours(), None);
        assert_eq!(Quantity::with_unit(-5.0, Unit::Fit).declared_hours(), None);
    }

    #[test]
    fn spec_rates_default_is_empty() {
        assert!(SpecRates::default().is_empty());
        let with_rack = SpecRates {
            rack: Some(RatePair {
                mtbf: Some(Quantity::bare(4.8e6)),
                mttr: None,
            }),
            ..SpecRates::default()
        };
        assert!(!with_rack.is_empty());
        // An empty pair does not count as an override.
        let empty_rack = SpecRates {
            rack: Some(RatePair::default()),
            ..SpecRates::default()
        };
        assert!(empty_rack.is_empty());
    }

    #[test]
    fn spec_rates_json_round_trip_omits_absent() {
        let rates = SpecRates {
            process_mtbf: Some(Quantity::with_unit(200_000.0, Unit::Fit)),
            host: Some(RatePair {
                mtbf: Some(Quantity::bare(43_830.0)),
                mttr: Some(Quantity::with_unit(4.383, Unit::Hours)),
            }),
            a_v: Some(Quantity::bare(0.99995)),
            ..SpecRates::default()
        };
        let s = sdnav_json::to_string_pretty(&rates);
        assert!(s.contains("process_mtbf"));
        assert!(!s.contains("manual_restart"));
        assert!(!s.contains("sim_horizon"));
        let back: SpecRates = sdnav_json::from_str(&s).unwrap();
        assert_eq!(back, rates);
    }
}
