//! Deployment planning: the paper's "cost : resiliency tradeoff".
//!
//! §V.D motivates the HW-centric models as a way to evaluate "the
//! cost:resiliency tradeoff before capital investment occurs", and §VII
//! weighs "the space and expense of multiple racks ... against the
//! relatively modest improvement in availability". This module makes that
//! comparison executable: enumerate candidate deployments (topology ×
//! supervisor scenario × host-maintenance tier), price them with a simple
//! linear hardware-cost model, and return the Pareto frontier of
//! {cost, control-plane downtime}.
//!
//! ```
//! use sdnav_core::planner::{cheapest_meeting, evaluate_candidates, CostModel};
//! use sdnav_core::{ControllerSpec, SwParams};
//!
//! let spec = ControllerSpec::opencontrail_3x();
//! let points = evaluate_candidates(&spec, SwParams::paper_defaults(),
//!                                  &CostModel::ballpark());
//! // Meeting a 2 m/y control-plane target requires three-way rack
//! // separation — and the cheapest such layout is the consolidated
//! // Small-3R, not the paper's Large.
//! let pick = cheapest_meeting(&points, 2.0).unwrap();
//! assert_eq!(pick.topology, "Small-3R");
//! ```

use crate::{ControllerSpec, Scenario, SwModel, SwParams, Topology};

/// Linear hardware cost model (arbitrary currency units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost per rack (space, power, ToR switching).
    pub per_rack: f64,
    /// Cost per host server.
    pub per_host: f64,
    /// Cost per VM (licensing/management overhead).
    pub per_vm: f64,
    /// Added cost of a Same-Day maintenance contract per host, relative to
    /// the cheapest tier.
    pub same_day_premium_per_host: f64,
    /// Added cost of a Next-Day contract per host.
    pub next_day_premium_per_host: f64,
}

impl CostModel {
    /// A ballpark model: a rack costs ~10 hosts, a VM is cheap, better
    /// maintenance contracts carry per-host premiums.
    #[must_use]
    pub fn ballpark() -> Self {
        CostModel {
            per_rack: 100.0,
            per_host: 10.0,
            per_vm: 1.0,
            same_day_premium_per_host: 4.0,
            next_day_premium_per_host: 1.0,
        }
    }
}

/// §V.D's host maintenance tiers and their `A_H` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaintenanceTier {
    /// Same Day (4 h MTTR): `A_H = 0.9999`.
    SameDay,
    /// Next Day (24 h MTTR): `A_H = 0.9995`.
    NextDay,
    /// Next Business Day (48 h MTTR): `A_H = 0.9990`.
    NextBusinessDay,
}

impl MaintenanceTier {
    /// All tiers, cheapest last.
    pub const ALL: [MaintenanceTier; 3] = [
        MaintenanceTier::SameDay,
        MaintenanceTier::NextDay,
        MaintenanceTier::NextBusinessDay,
    ];

    /// The tier's host availability (§V.D).
    #[must_use]
    pub fn a_h(self) -> f64 {
        match self {
            MaintenanceTier::SameDay => 0.9999,
            MaintenanceTier::NextDay => 0.9995,
            MaintenanceTier::NextBusinessDay => 0.9990,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MaintenanceTier::SameDay => "Same Day",
            MaintenanceTier::NextDay => "Next Day",
            MaintenanceTier::NextBusinessDay => "Next Business Day",
        }
    }
}

/// One evaluated deployment candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPoint {
    /// Layout name (`Small` / `Medium` / `Large`).
    pub topology: String,
    /// Supervisor mode of operation.
    pub scenario: Scenario,
    /// Host maintenance tier.
    pub tier: MaintenanceTier,
    /// Hardware + contract cost under the cost model.
    pub cost: f64,
    /// Control-plane availability.
    pub cp_availability: f64,
    /// Control-plane downtime in minutes/year.
    pub cp_downtime_m_y: f64,
}

fn cost_of(topology: &Topology, tier: MaintenanceTier, cost: &CostModel) -> f64 {
    let premium = match tier {
        MaintenanceTier::SameDay => cost.same_day_premium_per_host,
        MaintenanceTier::NextDay => cost.next_day_premium_per_host,
        MaintenanceTier::NextBusinessDay => 0.0,
    };
    cost.per_rack * topology.rack_count() as f64
        + (cost.per_host + premium) * topology.host_count() as f64
        + cost.per_vm * topology.vm_count() as f64
}

/// Evaluates every candidate (4 topologies — the paper's three plus the
/// rack-separated Small — × 2 scenarios × 3 tiers) at the given base
/// parameters, sorted by cost then downtime.
#[must_use]
pub fn evaluate_candidates(
    spec: &ControllerSpec,
    base: SwParams,
    cost: &CostModel,
) -> Vec<PlanPoint> {
    let mut out = Vec::new();
    for topology in [
        Topology::small(spec),
        Topology::small_three_racks(spec),
        Topology::medium(spec),
        Topology::large(spec),
    ] {
        for scenario in [
            Scenario::SupervisorNotRequired,
            Scenario::SupervisorRequired,
        ] {
            for tier in MaintenanceTier::ALL {
                let params = SwParams {
                    a_h: tier.a_h(),
                    ..base
                };
                let model =
                    SwModel::try_new(spec, &topology, params, scenario).expect("valid SW model");
                let cp = model.cp_availability();
                out.push(PlanPoint {
                    topology: topology.name().to_owned(),
                    scenario,
                    tier,
                    cost: cost_of(&topology, tier, cost),
                    cp_availability: cp,
                    cp_downtime_m_y: (1.0 - cp) * 525_960.0,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.cp_downtime_m_y
                    .partial_cmp(&b.cp_downtime_m_y)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    out
}

/// Filters `points` (any order) down to the Pareto frontier of
/// {minimize cost, minimize CP downtime}, returned cheapest-first.
///
/// A point survives if no other point is at most as expensive *and*
/// strictly less down (or strictly cheaper and at most as down).
#[must_use]
pub fn pareto_frontier(points: &[PlanPoint]) -> Vec<PlanPoint> {
    let mut frontier: Vec<PlanPoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                (q.cost < p.cost && q.cp_downtime_m_y <= p.cp_downtime_m_y)
                    || (q.cost <= p.cost && q.cp_downtime_m_y < p.cp_downtime_m_y)
            })
        })
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    frontier.dedup_by(|a, b| a.cost == b.cost && a.cp_downtime_m_y == b.cp_downtime_m_y);
    frontier
}

/// The cheapest candidate meeting a CP downtime target, if any.
#[must_use]
pub fn cheapest_meeting(points: &[PlanPoint], max_downtime_m_y: f64) -> Option<PlanPoint> {
    points
        .iter()
        .filter(|p| p.cp_downtime_m_y <= max_downtime_m_y)
        .min_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<PlanPoint> {
        evaluate_candidates(
            &ControllerSpec::opencontrail_3x(),
            SwParams::paper_defaults(),
            &CostModel::ballpark(),
        )
    }

    #[test]
    fn evaluates_all_candidates() {
        assert_eq!(points().len(), 4 * 2 * 3);
    }

    #[test]
    fn rack_separated_small_dominates_large() {
        // The framework's own finding: Small-3R gets the Large topology's
        // quorum protection (slightly better, via failure correlation)
        // from a third of the hardware, so Large is dominated off the
        // frontier entirely.
        let pts = points();
        let frontier = pareto_frontier(&pts);
        assert!(frontier.iter().any(|p| p.topology == "Small-3R"));
        assert!(
            frontier.iter().all(|p| p.topology != "Large"),
            "{frontier:#?}"
        );
        // And directly: same scenario/tier, Small-3R is cheaper and at
        // least as available.
        let pick = |name: &str| {
            pts.iter()
                .find(|p| {
                    p.topology == name
                        && p.scenario == Scenario::SupervisorRequired
                        && p.tier == MaintenanceTier::SameDay
                })
                .unwrap()
        };
        let s3r = pick("Small-3R");
        let large = pick("Large");
        assert!(s3r.cost < large.cost);
        assert!(s3r.cp_availability >= large.cp_availability - 1e-9);
    }

    #[test]
    fn frontier_is_nondominated_and_sorted() {
        let pts = points();
        let frontier = pareto_frontier(&pts);
        assert!(!frontier.is_empty());
        for w in frontier.windows(2) {
            assert!(w[0].cost < w[1].cost);
            assert!(w[0].cp_downtime_m_y > w[1].cp_downtime_m_y);
        }
        // Every frontier point is actually nondominated.
        for f in &frontier {
            for p in &pts {
                assert!(
                    !(p.cost < f.cost && p.cp_downtime_m_y < f.cp_downtime_m_y),
                    "{f:?} dominated by {p:?}"
                );
            }
        }
    }

    #[test]
    fn frontier_ends_with_the_best_availability() {
        let pts = points();
        let frontier = pareto_frontier(&pts);
        let best = pts
            .iter()
            .map(|p| p.cp_downtime_m_y)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(frontier.last().unwrap().cp_downtime_m_y, best);
        // Which is the rack-separated Small with the best tier: quorum
        // protection at consolidated-hardware cost beats even Large.
        let last = frontier.last().unwrap();
        assert_eq!(last.topology, "Small-3R");
        assert_eq!(last.tier, MaintenanceTier::SameDay);
    }

    #[test]
    fn medium_is_never_on_the_frontier() {
        // "One rack or three, but not two": Medium costs more than Small
        // and is (slightly) less available, so it can never be Pareto
        // optimal under any positive rack cost.
        let frontier = pareto_frontier(&points());
        assert!(
            frontier.iter().all(|p| p.topology != "Medium"),
            "{frontier:#?}"
        );
    }

    #[test]
    fn cheapest_meeting_targets() {
        let pts = points();
        // A loose target is met by the cheapest configuration overall.
        let loose = cheapest_meeting(&pts, 60.0).unwrap();
        let min_cost = pts.iter().map(|p| p.cost).fold(f64::INFINITY, f64::min);
        assert_eq!(loose.cost, min_cost);
        // A tight target forces three-way rack separation — and the
        // cheapest such layout is the consolidated Small-3R, not Large.
        let tight = cheapest_meeting(&pts, 2.0).unwrap();
        assert_eq!(tight.topology, "Small-3R");
        // An impossible target yields None.
        assert!(cheapest_meeting(&pts, 0.0).is_none());
    }

    #[test]
    fn maintenance_tier_values_match_section_5d() {
        assert_eq!(MaintenanceTier::SameDay.a_h(), 0.9999);
        assert_eq!(MaintenanceTier::NextDay.a_h(), 0.9995);
        assert_eq!(MaintenanceTier::NextBusinessDay.a_h(), 0.9990);
        assert_eq!(MaintenanceTier::SameDay.name(), "Same Day");
    }

    #[test]
    fn cost_reflects_hardware_counts() {
        let pts = points();
        let small_nbd = pts
            .iter()
            .find(|p| p.topology == "Small" && p.tier == MaintenanceTier::NextBusinessDay)
            .unwrap();
        // 1 rack + 3 hosts + 3 VMs at ballpark prices.
        assert_eq!(small_nbd.cost, 100.0 + 30.0 + 3.0);
        let large_sd = pts
            .iter()
            .find(|p| p.topology == "Large" && p.tier == MaintenanceTier::SameDay)
            .unwrap();
        assert_eq!(large_sd.cost, 300.0 + 12.0 * 14.0 + 12.0);
    }
}
