//! Consensus-protocol configuration: the control-plane coordination layer
//! the paper abstracts away as a static k-of-n quorum count.
//!
//! Sakic & Kellerer ("Response Time and Availability Study of RAFT
//! Consensus in Distributed SDN Control Plane") show that leader election
//! and log-replication dynamics materially change control-plane
//! availability, and MORPH shows the crash-vs-Byzantine fault mix changes
//! the required cluster size itself. [`ConsensusSpec`] captures exactly the
//! parameters those dynamics need — election timeout distribution,
//! heartbeat interval, cluster size, and declared fault mix — as *data*,
//! attachable to a [`crate::ControllerSpec`] via its optional `consensus`
//! block. The dynamics themselves live in the `sdnav-consensus` crate (a
//! discrete-event layer) and in `sdnav-markov` (the macro-state CTMC
//! counterpart).

use std::error::Error;
use std::fmt;

use sdnav_json::{FromJson, Json, JsonError, ToJson};

/// Declared fault-tolerance mix, following MORPH's adaptive quorum model:
/// the cluster promises to mask `byzantine` arbitrary-behavior controllers
/// and `crash` fail-stop controllers simultaneously, and sizes its quorum
/// threshold as `2·byzantine + crash + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultMix {
    /// Number of Byzantine (arbitrary-behavior) faults to mask (`F_BFT`).
    pub byzantine: u32,
    /// Number of crash (fail-stop) faults to mask (`F_crash`).
    pub crash: u32,
}

impl FaultMix {
    /// Crash-only mix tolerating `crash` fail-stop faults (plain RAFT).
    #[must_use]
    pub fn crash_only(crash: u32) -> Self {
        FaultMix {
            byzantine: 0,
            crash,
        }
    }

    /// MORPH's adaptive quorum threshold: `2·F_BFT + F_crash + 1` votes
    /// are needed to commit under this declared mix.
    #[must_use]
    pub fn quorum(&self) -> u32 {
        2 * self.byzantine + self.crash + 1
    }

    /// Minimum cluster size that can both form the quorum and survive the
    /// declared crash count: `2·F_BFT + 2·F_crash + 1` (the quorum plus one
    /// spare per tolerated crash).
    #[must_use]
    pub fn min_cluster(&self) -> u32 {
        2 * self.byzantine + 2 * self.crash + 1
    }

    /// The CLI/JSON spelling `B:C` (e.g. `0:1` for crash-only RAFT,
    /// `1:1` for one Byzantine plus one crash fault).
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}:{}", self.byzantine, self.crash)
    }

    /// Parses the `B:C` spelling.
    #[must_use]
    pub fn parse(text: &str) -> Option<FaultMix> {
        let (b, c) = text.split_once(':')?;
        Some(FaultMix {
            byzantine: b.trim().parse().ok()?,
            crash: c.trim().parse().ok()?,
        })
    }
}

impl ToJson for FaultMix {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("byzantine", self.byzantine.to_json()),
            ("crash", self.crash.to_json()),
        ])
    }
}

impl FromJson for FaultMix {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(FaultMix {
            byzantine: value
                .field("byzantine")?
                .as_u32()
                .map_err(|e| e.ctx("byzantine"))?,
            crash: value.field("crash")?.as_u32().map_err(|e| e.ctx("crash"))?,
        })
    }
}

/// Consensus-protocol parameters for the controller cluster's control
/// plane (RAFT-style, with MORPH's adaptive-BFT quorum when the declared
/// fault mix includes Byzantine faults).
///
/// All durations are in milliseconds; the availability models convert to
/// hours internally. Election timeouts are *randomized* per follower,
/// uniform over `[election_timeout_min_ms, election_timeout_max_ms]`,
/// exactly as RAFT prescribes to break split votes.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusSpec {
    /// Lower bound of the randomized follower election timeout.
    pub election_timeout_min_ms: f64,
    /// Upper bound of the randomized follower election timeout.
    pub election_timeout_max_ms: f64,
    /// Leader heartbeat (AppendEntries keep-alive) interval.
    pub heartbeat_interval_ms: f64,
    /// Number of consensus participants (overrides nothing: the paper's
    /// controller cluster is `2N+1` nodes and this is that `n`).
    pub cluster_size: u32,
    /// Declared byzantine/crash fault-tolerance mix.
    pub fault_mix: FaultMix,
    /// Time a repaired follower spends replaying the log before it counts
    /// toward the commit quorum again (JSON default: `4×` heartbeat).
    pub catch_up_ms: f64,
}

impl ConsensusSpec {
    /// RAFT-flavored defaults matching Sakic & Kellerer's measured etcd
    /// ranges: 150–300 ms randomized election timeout, 50 ms heartbeat,
    /// 3-node crash-only cluster.
    #[must_use]
    pub fn raft_defaults() -> Self {
        ConsensusSpec {
            election_timeout_min_ms: 150.0,
            election_timeout_max_ms: 300.0,
            heartbeat_interval_ms: 50.0,
            cluster_size: 3,
            fault_mix: FaultMix::crash_only(1),
            catch_up_ms: 200.0,
        }
    }

    /// The effective commit quorum under the declared fault mix
    /// (`2·F_BFT + F_crash + 1`), never below a simple majority of the
    /// cluster — a RAFT cluster cannot commit on a minority whatever the
    /// declared mix.
    #[must_use]
    pub fn quorum(&self) -> u32 {
        self.fault_mix.quorum().max(self.cluster_size / 2 + 1)
    }

    /// Mean of the randomized election timeout distribution.
    #[must_use]
    pub fn mean_election_timeout_ms(&self) -> f64 {
        0.5 * (self.election_timeout_min_ms + self.election_timeout_max_ms)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConsensusError`] for non-finite or non-positive
    /// durations, an inverted timeout range, or an empty cluster. Semantic
    /// misconfigurations (timeout ≤ heartbeat, cluster too small for the
    /// mix, quorum unreachable) are deliberately *not* rejected here — they
    /// decode fine and are surfaced as SA033–SA035 lint findings instead.
    pub fn validate(&self) -> Result<(), ConsensusError> {
        let finite_positive = |v: f64| v.is_finite() && v > 0.0;
        let durations_ok = finite_positive(self.election_timeout_min_ms)
            && finite_positive(self.election_timeout_max_ms)
            && finite_positive(self.heartbeat_interval_ms)
            && self.catch_up_ms.is_finite()
            && self.catch_up_ms >= 0.0;
        if !durations_ok {
            return Err(ConsensusError::BadDuration);
        }
        if self.election_timeout_max_ms < self.election_timeout_min_ms {
            return Err(ConsensusError::InvertedTimeoutRange);
        }
        if self.cluster_size == 0 {
            return Err(ConsensusError::EmptyCluster);
        }
        Ok(())
    }
}

impl ToJson for ConsensusSpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "election_timeout_min_ms",
                Json::Num(self.election_timeout_min_ms),
            ),
            (
                "election_timeout_max_ms",
                Json::Num(self.election_timeout_max_ms),
            ),
            (
                "heartbeat_interval_ms",
                Json::Num(self.heartbeat_interval_ms),
            ),
            ("cluster_size", self.cluster_size.to_json()),
            ("fault_mix", self.fault_mix.to_json()),
            ("catch_up_ms", Json::Num(self.catch_up_ms)),
        ])
    }
}

impl FromJson for ConsensusSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let heartbeat = value
            .field("heartbeat_interval_ms")?
            .as_f64()
            .map_err(|e| e.ctx("heartbeat_interval_ms"))?;
        Ok(ConsensusSpec {
            election_timeout_min_ms: value
                .field("election_timeout_min_ms")?
                .as_f64()
                .map_err(|e| e.ctx("election_timeout_min_ms"))?,
            election_timeout_max_ms: value
                .field("election_timeout_max_ms")?
                .as_f64()
                .map_err(|e| e.ctx("election_timeout_max_ms"))?,
            heartbeat_interval_ms: heartbeat,
            cluster_size: value
                .field("cluster_size")?
                .as_u32()
                .map_err(|e| e.ctx("cluster_size"))?,
            fault_mix: FaultMix::from_json(value.field("fault_mix")?)
                .map_err(|e| e.ctx("fault_mix"))?,
            catch_up_ms: match value.get("catch_up_ms") {
                None | Some(Json::Null) => 4.0 * heartbeat,
                Some(v) => v.as_f64().map_err(|e| e.ctx("catch_up_ms"))?,
            },
        })
    }
}

/// Validation errors for a [`ConsensusSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConsensusError {
    /// A duration was non-finite, negative, or (for the mandatory ones)
    /// zero.
    BadDuration,
    /// `election_timeout_max_ms < election_timeout_min_ms`.
    InvertedTimeoutRange,
    /// `cluster_size` was zero.
    EmptyCluster,
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::BadDuration => {
                write!(f, "consensus durations must be finite and positive")
            }
            ConsensusError::InvertedTimeoutRange => {
                write!(f, "election timeout range is inverted (max < min)")
            }
            ConsensusError::EmptyCluster => {
                write!(f, "consensus cluster must have at least one node")
            }
        }
    }
}

impl Error for ConsensusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raft_defaults_validate() {
        let spec = ConsensusSpec::raft_defaults();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.quorum(), 2);
        assert_eq!(spec.mean_election_timeout_ms(), 225.0);
    }

    #[test]
    fn morph_quorum_formula() {
        // MORPH: 2·F_BFT + F_crash + 1.
        assert_eq!(
            FaultMix {
                byzantine: 1,
                crash: 1
            }
            .quorum(),
            4
        );
        assert_eq!(FaultMix::crash_only(2).quorum(), 3);
        assert_eq!(
            FaultMix {
                byzantine: 1,
                crash: 1
            }
            .min_cluster(),
            5
        );
    }

    #[test]
    fn quorum_never_below_majority() {
        // A degenerate declared mix (tolerate nothing) still needs a
        // majority of the cluster to commit.
        let mut spec = ConsensusSpec::raft_defaults();
        spec.fault_mix = FaultMix::crash_only(0);
        spec.cluster_size = 5;
        assert_eq!(spec.quorum(), 3);
    }

    #[test]
    fn fault_mix_label_round_trips() {
        for mix in [
            FaultMix::crash_only(1),
            FaultMix {
                byzantine: 2,
                crash: 1,
            },
        ] {
            assert_eq!(FaultMix::parse(&mix.label()), Some(mix));
        }
        assert_eq!(FaultMix::parse("nonsense"), None);
        assert_eq!(FaultMix::parse("1"), None);
    }

    #[test]
    fn json_round_trip_and_catch_up_default() {
        let spec = ConsensusSpec::raft_defaults();
        let json = sdnav_json::to_string_pretty(&spec);
        let back: ConsensusSpec = sdnav_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Old JSON without catch_up_ms defaults to 4× heartbeat.
        let minimal = r#"{
            "election_timeout_min_ms": 150, "election_timeout_max_ms": 300,
            "heartbeat_interval_ms": 50, "cluster_size": 3,
            "fault_mix": {"byzantine": 0, "crash": 1}
        }"#;
        let p: ConsensusSpec = sdnav_json::from_str(minimal).unwrap();
        assert_eq!(p.catch_up_ms, 200.0);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut spec = ConsensusSpec::raft_defaults();
        spec.election_timeout_max_ms = 100.0;
        assert_eq!(spec.validate(), Err(ConsensusError::InvertedTimeoutRange));
        spec = ConsensusSpec::raft_defaults();
        spec.heartbeat_interval_ms = f64::NAN;
        assert_eq!(spec.validate(), Err(ConsensusError::BadDuration));
        spec = ConsensusSpec::raft_defaults();
        spec.cluster_size = 0;
        assert_eq!(spec.validate(), Err(ConsensusError::EmptyCluster));
        // Semantically suspect but *valid* (lint territory, SA033).
        spec = ConsensusSpec::raft_defaults();
        spec.election_timeout_min_ms = 10.0;
        spec.election_timeout_max_ms = 20.0;
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn errors_display_meaningfully() {
        assert!(ConsensusError::InvertedTimeoutRange
            .to_string()
            .contains("inverted"));
    }
}
