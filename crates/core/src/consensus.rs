//! Consensus-protocol configuration: the control-plane coordination layer
//! the paper abstracts away as a static k-of-n quorum count.
//!
//! Sakic & Kellerer ("Response Time and Availability Study of RAFT
//! Consensus in Distributed SDN Control Plane") show that leader election
//! and log-replication dynamics materially change control-plane
//! availability, and MORPH shows the crash-vs-Byzantine fault mix changes
//! the required cluster size itself. [`ConsensusSpec`] captures exactly the
//! parameters those dynamics need — election latency distribution,
//! heartbeat interval, cluster size, and declared fault mix — as *data*,
//! attachable to a [`crate::ControllerSpec`] via its optional `consensus`
//! block. The dynamics themselves live in the `sdnav-consensus` crate (a
//! discrete-event layer) and in `sdnav-markov` (the macro-state CTMC
//! counterpart).
//!
//! Election latency is a first-class *distribution* ([`ElectionLatency`]),
//! not a bare `[min, max]` pair: RAFT's prescribed uniform timeout is one
//! choice, but Sakic & Kellerer's measurements show real failover latency
//! is heavy-tailed — an [`ElectionLatency::Empirical`] quantile table
//! digitized from such measurements (or an [`ElectionLatency::LogNormal`]
//! fit) drops in without touching the simulators, which only ever draw
//! through the distribution's inverse CDF.

use std::error::Error;
use std::fmt;

use sdnav_json::{FromJson, Json, JsonError, ToJson};

/// Declared fault-tolerance mix, following MORPH's adaptive quorum model:
/// the cluster promises to mask `byzantine` arbitrary-behavior controllers
/// and `crash` fail-stop controllers simultaneously, and sizes its quorum
/// threshold as `2·byzantine + crash + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultMix {
    /// Number of Byzantine (arbitrary-behavior) faults to mask (`F_BFT`).
    pub byzantine: u32,
    /// Number of crash (fail-stop) faults to mask (`F_crash`).
    pub crash: u32,
}

impl FaultMix {
    /// Crash-only mix tolerating `crash` fail-stop faults (plain RAFT).
    #[must_use]
    pub fn crash_only(crash: u32) -> Self {
        FaultMix {
            byzantine: 0,
            crash,
        }
    }

    /// MORPH's adaptive quorum threshold: `2·F_BFT + F_crash + 1` votes
    /// are needed to commit under this declared mix.
    #[must_use]
    pub fn quorum(&self) -> u32 {
        2 * self.byzantine + self.crash + 1
    }

    /// Minimum cluster size that can both form the quorum and survive the
    /// declared crash count: `2·F_BFT + 2·F_crash + 1` (the quorum plus one
    /// spare per tolerated crash).
    #[must_use]
    pub fn min_cluster(&self) -> u32 {
        2 * self.byzantine + 2 * self.crash + 1
    }

    /// The CLI/JSON spelling `B:C` (e.g. `0:1` for crash-only RAFT,
    /// `1:1` for one Byzantine plus one crash fault).
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}:{}", self.byzantine, self.crash)
    }

    /// Parses the `B:C` spelling.
    #[must_use]
    pub fn parse(text: &str) -> Option<FaultMix> {
        let (b, c) = text.split_once(':')?;
        Some(FaultMix {
            byzantine: b.trim().parse().ok()?,
            crash: c.trim().parse().ok()?,
        })
    }
}

impl ToJson for FaultMix {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("byzantine", self.byzantine.to_json()),
            ("crash", self.crash.to_json()),
        ])
    }
}

impl FromJson for FaultMix {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(FaultMix {
            byzantine: value
                .field("byzantine")?
                .as_u32()
                .map_err(|e| e.ctx("byzantine"))?,
            crash: value.field("crash")?.as_u32().map_err(|e| e.ctx("crash"))?,
        })
    }
}

/// The probit (inverse standard-normal CDF), Acklam's rational
/// approximation: |relative error| < 1.15e-9 over (0, 1), std-only.
fn probit(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The quantile used as the effective distribution floor for unbounded
/// (log-normal) election latencies in SA033-style sanity checks.
const FLOOR_QUANTILE: f64 = 0.01;

/// The randomized election-latency distribution: how long a follower waits
/// before standing for election once the leader's heartbeats stop.
///
/// Every simulator draws through [`ElectionLatency::sample_ms`], the
/// inverse CDF applied to one uniform variate — so swapping the
/// distribution never changes how many random numbers a replication
/// consumes, and paired-seed comparisons across distributions stay paired.
#[derive(Debug, Clone, PartialEq)]
pub enum ElectionLatency {
    /// RAFT's prescribed uniform timeout over `[min_ms, max_ms]`.
    Uniform {
        /// Lower bound of the randomized timeout, milliseconds.
        min_ms: f64,
        /// Upper bound of the randomized timeout, milliseconds.
        max_ms: f64,
    },
    /// A measured quantile table `(q, ms)`, linearly interpolated between
    /// points. The table must start at `q = 0`, end at `q = 1`, and be
    /// non-decreasing in both coordinates — it *is* the inverse CDF.
    Empirical {
        /// `(quantile, latency_ms)` points, `q ∈ [0, 1]` ascending.
        quantiles: Vec<(f64, f64)>,
    },
    /// A log-normal fit: `ln(latency_ms) ~ Normal(mu, sigma²)`.
    LogNormal {
        /// Mean of `ln(latency_ms)`.
        mu: f64,
        /// Standard deviation of `ln(latency_ms)`, `≥ 0`.
        sigma: f64,
    },
}

impl ElectionLatency {
    /// The inverse CDF: maps one uniform variate `u ∈ [0, 1)` to a
    /// latency draw in milliseconds.
    ///
    /// For [`ElectionLatency::Uniform`] this is exactly
    /// `min + (max − min)·u` — bit-identical to the historical inline
    /// uniform draw, so existing seeded runs reproduce byte-for-byte.
    #[must_use]
    pub fn sample_ms(&self, u: f64) -> f64 {
        match self {
            ElectionLatency::Uniform { min_ms, max_ms } => min_ms + (max_ms - min_ms) * u,
            ElectionLatency::Empirical { quantiles } => {
                let first = quantiles.first().copied().unwrap_or((0.0, 0.0));
                let last = quantiles.last().copied().unwrap_or((1.0, 0.0));
                if u <= first.0 {
                    return first.1;
                }
                if u >= last.0 {
                    return last.1;
                }
                for pair in quantiles.windows(2) {
                    let (q0, v0) = pair[0];
                    let (q1, v1) = pair[1];
                    if u <= q1 {
                        // A vertical step (q0 == q1) jumps to the upper
                        // value; otherwise interpolate linearly.
                        if q1 <= q0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (u - q0) / (q1 - q0);
                    }
                }
                last.1
            }
            ElectionLatency::LogNormal { mu, sigma } => {
                // Clamp away from the endpoints: probit(0) = −∞.
                let u = u.clamp(1e-12, 1.0 - 1e-12);
                (mu + sigma * probit(u)).exp()
            }
        }
    }

    /// The distribution mean, milliseconds: midpoint for uniform,
    /// trapezoid integral of the quantile table for empirical,
    /// `exp(mu + sigma²/2)` for log-normal.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        match self {
            ElectionLatency::Uniform { min_ms, max_ms } => 0.5 * (min_ms + max_ms),
            ElectionLatency::Empirical { quantiles } => quantiles
                .windows(2)
                .map(|pair| 0.5 * (pair[0].1 + pair[1].1) * (pair[1].0 - pair[0].0))
                .sum(),
            ElectionLatency::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
        }
    }

    /// The effective lower edge of the distribution, milliseconds: the
    /// value SA033 compares against the heartbeat interval. Uniform → the
    /// min; empirical → the `q = 0` entry; log-normal → the p1 quantile
    /// (the support is unbounded below toward 0, so a low quantile stands
    /// in for the floor).
    #[must_use]
    pub fn floor_ms(&self) -> f64 {
        match self {
            ElectionLatency::Uniform { min_ms, .. } => *min_ms,
            ElectionLatency::Empirical { quantiles } => {
                quantiles.first().map_or(f64::NAN, |&(_, ms)| ms)
            }
            ElectionLatency::LogNormal { mu, sigma } => {
                (mu + sigma * probit(FLOOR_QUANTILE)).exp()
            }
        }
    }

    /// Re-anchors the distribution so its floor sits at `floor_ms` while
    /// preserving its shape — the sweep-axis operation behind
    /// `consensus_election_timeouts_ms`. Uniform keeps its width,
    /// empirical shifts every quantile by the same offset, log-normal
    /// scales (a shift in `mu`).
    #[must_use]
    pub fn with_floor_ms(&self, floor_ms: f64) -> ElectionLatency {
        match self {
            ElectionLatency::Uniform { min_ms, max_ms } => ElectionLatency::Uniform {
                min_ms: floor_ms,
                max_ms: floor_ms + (max_ms - min_ms),
            },
            ElectionLatency::Empirical { quantiles } => {
                let shift = floor_ms - self.floor_ms();
                ElectionLatency::Empirical {
                    quantiles: quantiles.iter().map(|&(q, ms)| (q, ms + shift)).collect(),
                }
            }
            ElectionLatency::LogNormal { mu, sigma } => {
                let current = self.floor_ms();
                ElectionLatency::LogNormal {
                    mu: mu + (floor_ms / current).ln(),
                    sigma: *sigma,
                }
            }
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`ConsensusError::BadDuration`] for non-finite/non-positive bounds,
    /// [`ConsensusError::InvertedTimeoutRange`] when `max < min`,
    /// [`ConsensusError::BadQuantileTable`] for a malformed empirical
    /// table, [`ConsensusError::BadLogNormal`] for non-finite `mu` or a
    /// negative/non-finite `sigma`.
    pub fn validate(&self) -> Result<(), ConsensusError> {
        let finite_positive = |v: f64| v.is_finite() && v > 0.0;
        match self {
            ElectionLatency::Uniform { min_ms, max_ms } => {
                if !finite_positive(*min_ms) || !finite_positive(*max_ms) {
                    return Err(ConsensusError::BadDuration);
                }
                if max_ms < min_ms {
                    return Err(ConsensusError::InvertedTimeoutRange);
                }
                Ok(())
            }
            ElectionLatency::Empirical { quantiles } => {
                if quantiles.len() < 2 {
                    return Err(ConsensusError::BadQuantileTable);
                }
                let first = quantiles[0];
                let last = quantiles[quantiles.len() - 1];
                if first.0 != 0.0 || last.0 != 1.0 {
                    return Err(ConsensusError::BadQuantileTable);
                }
                for pair in quantiles.windows(2) {
                    let ((q0, v0), (q1, v1)) = (pair[0], pair[1]);
                    let ok = q0.is_finite()
                        && q1.is_finite()
                        && finite_positive(v0)
                        && finite_positive(v1)
                        && q1 >= q0
                        && v1 >= v0;
                    if !ok {
                        return Err(ConsensusError::BadQuantileTable);
                    }
                }
                Ok(())
            }
            ElectionLatency::LogNormal { mu, sigma } => {
                if !mu.is_finite() || !sigma.is_finite() || *sigma < 0.0 {
                    return Err(ConsensusError::BadLogNormal);
                }
                Ok(())
            }
        }
    }
}

impl ToJson for ElectionLatency {
    fn to_json(&self) -> Json {
        match self {
            ElectionLatency::Uniform { min_ms, max_ms } => Json::obj(vec![
                ("kind", Json::str("uniform")),
                ("min_ms", Json::Num(*min_ms)),
                ("max_ms", Json::Num(*max_ms)),
            ]),
            ElectionLatency::Empirical { quantiles } => Json::obj(vec![
                ("kind", Json::str("empirical")),
                (
                    "quantiles",
                    Json::Arr(
                        quantiles
                            .iter()
                            .map(|&(q, ms)| {
                                Json::obj(vec![("q", Json::Num(q)), ("ms", Json::Num(ms))])
                            })
                            .collect(),
                    ),
                ),
            ]),
            ElectionLatency::LogNormal { mu, sigma } => Json::obj(vec![
                ("kind", Json::str("log_normal")),
                ("mu", Json::Num(*mu)),
                ("sigma", Json::Num(*sigma)),
            ]),
        }
    }
}

impl FromJson for ElectionLatency {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = value.field("kind")?.as_str().map_err(|e| e.ctx("kind"))?;
        match kind {
            "uniform" => Ok(ElectionLatency::Uniform {
                min_ms: value
                    .field("min_ms")?
                    .as_f64()
                    .map_err(|e| e.ctx("min_ms"))?,
                max_ms: value
                    .field("max_ms")?
                    .as_f64()
                    .map_err(|e| e.ctx("max_ms"))?,
            }),
            "empirical" => {
                let arr = value
                    .field("quantiles")?
                    .as_arr()
                    .map_err(|e| e.ctx("quantiles"))?;
                let mut quantiles = Vec::with_capacity(arr.len());
                for point in arr {
                    quantiles.push((
                        point.field("q")?.as_f64().map_err(|e| e.ctx("q"))?,
                        point.field("ms")?.as_f64().map_err(|e| e.ctx("ms"))?,
                    ));
                }
                Ok(ElectionLatency::Empirical { quantiles })
            }
            "log_normal" => Ok(ElectionLatency::LogNormal {
                mu: value.field("mu")?.as_f64().map_err(|e| e.ctx("mu"))?,
                sigma: value.field("sigma")?.as_f64().map_err(|e| e.ctx("sigma"))?,
            }),
            other => Err(JsonError::decode(format!(
                "unknown election latency kind {other:?} \
                 (want uniform, empirical, or log_normal)"
            ))),
        }
    }
}

/// Consensus-protocol parameters for the controller cluster's control
/// plane (RAFT-style, with MORPH's adaptive-BFT quorum when the declared
/// fault mix includes Byzantine faults).
///
/// All durations are in milliseconds; the availability models convert to
/// hours internally. Election latency is *randomized* per election, drawn
/// from the declared [`ElectionLatency`] distribution — RAFT's uniform
/// timeout by default, or a measured empirical table.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusSpec {
    /// The randomized election-latency distribution.
    pub election_latency: ElectionLatency,
    /// Leader heartbeat (AppendEntries keep-alive) interval.
    pub heartbeat_interval_ms: f64,
    /// Number of consensus participants (overrides nothing: the paper's
    /// controller cluster is `2N+1` nodes and this is that `n`).
    pub cluster_size: u32,
    /// Declared byzantine/crash fault-tolerance mix.
    pub fault_mix: FaultMix,
    /// Time a repaired follower spends replaying the log before it counts
    /// toward the commit quorum again (JSON default: `4×` heartbeat).
    pub catch_up_ms: f64,
}

impl ConsensusSpec {
    /// RAFT-flavored defaults matching Sakic & Kellerer's measured etcd
    /// ranges: 150–300 ms randomized election timeout, 50 ms heartbeat,
    /// 3-node crash-only cluster.
    #[must_use]
    pub fn raft_defaults() -> Self {
        ConsensusSpec {
            election_latency: ElectionLatency::Uniform {
                min_ms: 150.0,
                max_ms: 300.0,
            },
            heartbeat_interval_ms: 50.0,
            cluster_size: 3,
            fault_mix: FaultMix::crash_only(1),
            catch_up_ms: 200.0,
        }
    }

    /// The effective commit quorum under the declared fault mix
    /// (`2·F_BFT + F_crash + 1`), never below a simple majority of the
    /// cluster — a RAFT cluster cannot commit on a minority whatever the
    /// declared mix.
    #[must_use]
    pub fn quorum(&self) -> u32 {
        self.fault_mix.quorum().max(self.cluster_size / 2 + 1)
    }

    /// Mean of the election-latency distribution, milliseconds.
    #[must_use]
    pub fn mean_election_timeout_ms(&self) -> f64 {
        self.election_latency.mean_ms()
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConsensusError`] for non-finite or non-positive
    /// durations, a malformed election-latency distribution, or an empty
    /// cluster. Semantic misconfigurations (latency floor ≤ heartbeat,
    /// cluster too small for the mix, quorum unreachable) are deliberately
    /// *not* rejected here — they decode fine and are surfaced as
    /// SA033–SA035 lint findings instead.
    pub fn validate(&self) -> Result<(), ConsensusError> {
        let finite_positive = |v: f64| v.is_finite() && v > 0.0;
        self.election_latency.validate()?;
        let durations_ok = finite_positive(self.heartbeat_interval_ms)
            && self.catch_up_ms.is_finite()
            && self.catch_up_ms >= 0.0;
        if !durations_ok {
            return Err(ConsensusError::BadDuration);
        }
        if self.cluster_size == 0 {
            return Err(ConsensusError::EmptyCluster);
        }
        Ok(())
    }
}

impl ToJson for ConsensusSpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("election_latency", self.election_latency.to_json()),
            (
                "heartbeat_interval_ms",
                Json::Num(self.heartbeat_interval_ms),
            ),
            ("cluster_size", self.cluster_size.to_json()),
            ("fault_mix", self.fault_mix.to_json()),
            ("catch_up_ms", Json::Num(self.catch_up_ms)),
        ])
    }
}

impl FromJson for ConsensusSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let heartbeat = value
            .field("heartbeat_interval_ms")?
            .as_f64()
            .map_err(|e| e.ctx("heartbeat_interval_ms"))?;
        // New documents carry an `election_latency` object; legacy ones
        // carry the bare `election_timeout_min_ms`/`..._max_ms` pair,
        // decoded as the uniform distribution they always meant.
        let election_latency = match value.get("election_latency") {
            Some(v) if !matches!(v, Json::Null) => {
                ElectionLatency::from_json(v).map_err(|e| e.ctx("election_latency"))?
            }
            _ => ElectionLatency::Uniform {
                min_ms: value
                    .field("election_timeout_min_ms")?
                    .as_f64()
                    .map_err(|e| e.ctx("election_timeout_min_ms"))?,
                max_ms: value
                    .field("election_timeout_max_ms")?
                    .as_f64()
                    .map_err(|e| e.ctx("election_timeout_max_ms"))?,
            },
        };
        Ok(ConsensusSpec {
            election_latency,
            heartbeat_interval_ms: heartbeat,
            cluster_size: value
                .field("cluster_size")?
                .as_u32()
                .map_err(|e| e.ctx("cluster_size"))?,
            fault_mix: FaultMix::from_json(value.field("fault_mix")?)
                .map_err(|e| e.ctx("fault_mix"))?,
            catch_up_ms: match value.get("catch_up_ms") {
                None | Some(Json::Null) => 4.0 * heartbeat,
                Some(v) => v.as_f64().map_err(|e| e.ctx("catch_up_ms"))?,
            },
        })
    }
}

/// Validation errors for a [`ConsensusSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConsensusError {
    /// A duration was non-finite, negative, or (for the mandatory ones)
    /// zero.
    BadDuration,
    /// A uniform election latency with `max_ms < min_ms`.
    InvertedTimeoutRange,
    /// An empirical quantile table that is too short, does not span
    /// `q = 0..1`, or is not non-decreasing in both coordinates.
    BadQuantileTable,
    /// A log-normal election latency with non-finite `mu` or a
    /// negative/non-finite `sigma`.
    BadLogNormal,
    /// `cluster_size` was zero.
    EmptyCluster,
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::BadDuration => {
                write!(f, "consensus durations must be finite and positive")
            }
            ConsensusError::InvertedTimeoutRange => {
                write!(f, "election timeout range is inverted (max < min)")
            }
            ConsensusError::BadQuantileTable => write!(
                f,
                "empirical election latency needs a non-decreasing quantile \
                 table spanning q = 0..1 with positive latencies"
            ),
            ConsensusError::BadLogNormal => write!(
                f,
                "log-normal election latency needs finite mu and sigma >= 0"
            ),
            ConsensusError::EmptyCluster => {
                write!(f, "consensus cluster must have at least one node")
            }
        }
    }
}

impl Error for ConsensusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raft_defaults_validate() {
        let spec = ConsensusSpec::raft_defaults();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.quorum(), 2);
        assert_eq!(spec.mean_election_timeout_ms(), 225.0);
        assert_eq!(spec.election_latency.floor_ms(), 150.0);
    }

    #[test]
    fn morph_quorum_formula() {
        // MORPH: 2·F_BFT + F_crash + 1.
        assert_eq!(
            FaultMix {
                byzantine: 1,
                crash: 1
            }
            .quorum(),
            4
        );
        assert_eq!(FaultMix::crash_only(2).quorum(), 3);
        assert_eq!(
            FaultMix {
                byzantine: 1,
                crash: 1
            }
            .min_cluster(),
            5
        );
    }

    #[test]
    fn quorum_never_below_majority() {
        // A degenerate declared mix (tolerate nothing) still needs a
        // majority of the cluster to commit.
        let mut spec = ConsensusSpec::raft_defaults();
        spec.fault_mix = FaultMix::crash_only(0);
        spec.cluster_size = 5;
        assert_eq!(spec.quorum(), 3);
    }

    #[test]
    fn fault_mix_label_round_trips() {
        for mix in [
            FaultMix::crash_only(1),
            FaultMix {
                byzantine: 2,
                crash: 1,
            },
        ] {
            assert_eq!(FaultMix::parse(&mix.label()), Some(mix));
        }
        assert_eq!(FaultMix::parse("nonsense"), None);
        assert_eq!(FaultMix::parse("1"), None);
    }

    #[test]
    fn json_round_trip_and_catch_up_default() {
        let spec = ConsensusSpec::raft_defaults();
        let json = sdnav_json::to_string_pretty(&spec);
        let back: ConsensusSpec = sdnav_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Legacy JSON: a bare min/max pair decodes as Uniform, and a
        // missing catch_up_ms defaults to 4× heartbeat.
        let minimal = r#"{
            "election_timeout_min_ms": 150, "election_timeout_max_ms": 300,
            "heartbeat_interval_ms": 50, "cluster_size": 3,
            "fault_mix": {"byzantine": 0, "crash": 1}
        }"#;
        let p: ConsensusSpec = sdnav_json::from_str(minimal).unwrap();
        assert_eq!(p.catch_up_ms, 200.0);
        assert_eq!(
            p.election_latency,
            ElectionLatency::Uniform {
                min_ms: 150.0,
                max_ms: 300.0
            }
        );
    }

    #[test]
    fn latency_variants_round_trip_json() {
        for latency in [
            ElectionLatency::Uniform {
                min_ms: 10.0,
                max_ms: 20.0,
            },
            ElectionLatency::Empirical {
                quantiles: vec![(0.0, 100.0), (0.5, 180.0), (1.0, 900.0)],
            },
            ElectionLatency::LogNormal {
                mu: 5.2,
                sigma: 0.4,
            },
        ] {
            let json = sdnav_json::to_string_pretty(&latency);
            let back: ElectionLatency = sdnav_json::from_str(&json).unwrap();
            assert_eq!(latency, back);
        }
        let err = sdnav_json::from_str::<ElectionLatency>(r#"{"kind": "cauchy"}"#).unwrap_err();
        assert!(err.to_string().contains("cauchy"));
    }

    #[test]
    fn uniform_sampling_matches_the_legacy_draw() {
        // sample_ms must be exactly `min + (max − min)·u`, the historical
        // inline draw — bit-identical, not merely close.
        let latency = ElectionLatency::Uniform {
            min_ms: 150.0,
            max_ms: 300.0,
        };
        for u in [0.0, 0.125, 0.5, 0.999_999] {
            assert_eq!(latency.sample_ms(u).to_bits(), (150.0 + 150.0 * u).to_bits());
        }
    }

    #[test]
    fn empirical_interpolates_its_table() {
        let latency = ElectionLatency::Empirical {
            quantiles: vec![(0.0, 100.0), (0.5, 200.0), (1.0, 1000.0)],
        };
        assert!(latency.validate().is_ok());
        assert_eq!(latency.sample_ms(0.0), 100.0);
        assert_eq!(latency.sample_ms(0.25), 150.0);
        assert_eq!(latency.sample_ms(0.5), 200.0);
        assert_eq!(latency.sample_ms(0.75), 600.0);
        assert_eq!(latency.floor_ms(), 100.0);
        // Trapezoid mean: 0.5·(100+200)·0.5 + 0.5·(200+1000)·0.5 = 375.
        assert_eq!(latency.mean_ms(), 375.0);
    }

    #[test]
    fn log_normal_quantiles_are_sane() {
        let latency = ElectionLatency::LogNormal {
            mu: 5.0,
            sigma: 0.5,
        };
        assert!(latency.validate().is_ok());
        // Median is exp(mu); mean is exp(mu + sigma²/2) > median.
        let median = latency.sample_ms(0.5);
        assert!((median - 5.0f64.exp()).abs() < 1e-6 * 5.0f64.exp());
        assert!(latency.mean_ms() > median);
        // Monotone inverse CDF.
        assert!(latency.sample_ms(0.9) > latency.sample_ms(0.1));
        assert!(latency.floor_ms() < median);
    }

    #[test]
    fn with_floor_preserves_shape() {
        let uniform = ElectionLatency::Uniform {
            min_ms: 150.0,
            max_ms: 300.0,
        };
        assert_eq!(
            uniform.with_floor_ms(600.0),
            ElectionLatency::Uniform {
                min_ms: 600.0,
                max_ms: 750.0
            }
        );
        let empirical = ElectionLatency::Empirical {
            quantiles: vec![(0.0, 100.0), (1.0, 500.0)],
        };
        let shifted = empirical.with_floor_ms(250.0);
        assert_eq!(shifted.floor_ms(), 250.0);
        assert_eq!(shifted.sample_ms(1.0), 650.0);
        let log_normal = ElectionLatency::LogNormal {
            mu: 5.0,
            sigma: 0.5,
        };
        let scaled = log_normal.with_floor_ms(2.0 * log_normal.floor_ms());
        assert!((scaled.floor_ms() - 2.0 * log_normal.floor_ms()).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut spec = ConsensusSpec::raft_defaults();
        spec.election_latency = ElectionLatency::Uniform {
            min_ms: 150.0,
            max_ms: 100.0,
        };
        assert_eq!(spec.validate(), Err(ConsensusError::InvertedTimeoutRange));
        spec = ConsensusSpec::raft_defaults();
        spec.heartbeat_interval_ms = f64::NAN;
        assert_eq!(spec.validate(), Err(ConsensusError::BadDuration));
        spec = ConsensusSpec::raft_defaults();
        spec.cluster_size = 0;
        assert_eq!(spec.validate(), Err(ConsensusError::EmptyCluster));
        // Semantically suspect but *valid* (lint territory, SA033).
        spec = ConsensusSpec::raft_defaults();
        spec.election_latency = ElectionLatency::Uniform {
            min_ms: 10.0,
            max_ms: 20.0,
        };
        assert!(spec.validate().is_ok());
        // Malformed quantile tables and log-normal parameters.
        for bad in [
            ElectionLatency::Empirical { quantiles: vec![] },
            ElectionLatency::Empirical {
                quantiles: vec![(0.1, 100.0), (1.0, 200.0)],
            },
            ElectionLatency::Empirical {
                quantiles: vec![(0.0, 300.0), (1.0, 200.0)],
            },
            ElectionLatency::LogNormal {
                mu: f64::NAN,
                sigma: 0.5,
            },
            ElectionLatency::LogNormal {
                mu: 5.0,
                sigma: -1.0,
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn errors_display_meaningfully() {
        assert!(ConsensusError::InvertedTimeoutRange
            .to_string()
            .contains("inverted"));
        assert!(ConsensusError::BadQuantileTable
            .to_string()
            .contains("quantile"));
        assert!(ConsensusError::BadLogNormal.to_string().contains("sigma"));
    }
}
