//! Parameter sensitivity analysis.
//!
//! The paper's purpose statement: the models are used to "predict
//! availability and quantify sensitivity to underlying platform and
//! process resiliency." This module makes that quantitative for any
//! topology/scenario: for each model parameter it computes
//!
//! * the **derivative** `∂A_sys/∂A_p` — how much system availability moves
//!   per unit of parameter availability (a Birnbaum-style measure), and
//! * the **downtime share** `(∂U_sys/∂U_p)·U_p/U_sys` — the fraction of
//!   current system downtime attributable to that parameter (a criticality
//!   measure). A share *above* 100% is meaningful: it marks a parameter a
//!   `k`-of-`n` quorum protects, where system downtime scales
//!   superlinearly (`U_sys ∝ U_p²` for 2-of-3, so the elasticity is ≈ 2).
//!
//! Rankings answer the operational question the paper closes with: *which
//! knob buys the most downtime reduction?*
//!
//! ```
//! use sdnav_core::sensitivity::hw;
//! use sdnav_core::{ControllerSpec, HwParams, Topology};
//!
//! let spec = ControllerSpec::opencontrail_3x();
//! // In the Small topology, the single rack owns ~90% of the downtime.
//! let ranking = hw(&spec, &Topology::small(&spec), HwParams::paper_defaults());
//! assert_eq!(ranking[0].parameter, "A_R");
//! assert!(ranking[0].downtime_share > 0.8);
//! ```

use crate::{ControllerSpec, HwModel, HwParams, Scenario, SwModel, SwParams, Topology};

/// Sensitivity of the system metric to one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSensitivity {
    /// Parameter name (`A_C`, `A`, `A_S`, `A_V`, `A_H`, `A_R`).
    pub parameter: String,
    /// The parameter's current value.
    pub value: f64,
    /// `∂A_sys/∂A_p` (central finite difference).
    pub derivative: f64,
    /// Fraction of system downtime attributable to this parameter:
    /// `derivative · (1−A_p) / (1−A_sys)`.
    pub downtime_share: f64,
}

fn central_difference(value: f64, eval: impl Fn(f64) -> f64) -> f64 {
    // Step small relative to the parameter's distance from 1 (its
    // unavailability), but never denormal.
    let h = ((1.0 - value) * 0.01).clamp(1e-9, 1e-4);
    let hi = (value + h).min(1.0);
    let lo = value - h;
    (eval(hi) - eval(lo)) / (hi - lo)
}

fn build(
    name: &str,
    value: f64,
    base_availability: f64,
    eval: impl Fn(f64) -> f64,
) -> ParamSensitivity {
    let derivative = central_difference(value, eval);
    let u_sys = 1.0 - base_availability;
    let downtime_share = if u_sys > 0.0 {
        derivative * (1.0 - value) / u_sys
    } else {
        0.0
    };
    ParamSensitivity {
        parameter: name.to_owned(),
        value,
        derivative,
        downtime_share,
    }
}

fn ranked(mut out: Vec<ParamSensitivity>) -> Vec<ParamSensitivity> {
    out.sort_by(|a, b| {
        b.downtime_share
            .partial_cmp(&a.downtime_share)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// Sensitivities of the HW-centric controller availability to
/// `A_C`, `A_V`, `A_H`, `A_R`, ranked by downtime share.
#[must_use]
pub fn hw(spec: &ControllerSpec, topology: &Topology, params: HwParams) -> Vec<ParamSensitivity> {
    let eval = |p: HwParams| {
        HwModel::try_new(spec, topology, p)
            .expect("valid HW model")
            .availability()
    };
    let base = eval(params);
    ranked(vec![
        build("A_C", params.a_c, base, |v| {
            eval(HwParams { a_c: v, ..params })
        }),
        build("A_V", params.a_v, base, |v| {
            eval(HwParams { a_v: v, ..params })
        }),
        build("A_H", params.a_h, base, |v| {
            eval(HwParams { a_h: v, ..params })
        }),
        build("A_R", params.a_r, base, |v| {
            eval(HwParams { a_r: v, ..params })
        }),
    ])
}

/// Which SW-centric metric to analyze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwMetric {
    /// SDN control-plane availability.
    ControlPlane,
    /// Per-host data-plane availability.
    HostDataPlane,
}

/// Sensitivities of a SW-centric metric to `A`, `A_S`, `A_V`, `A_H`,
/// `A_R`, ranked by downtime share.
#[must_use]
pub fn sw(
    spec: &ControllerSpec,
    topology: &Topology,
    params: SwParams,
    scenario: Scenario,
    metric: SwMetric,
) -> Vec<ParamSensitivity> {
    let eval = |p: SwParams| {
        let model = SwModel::try_new(spec, topology, p, scenario).expect("valid SW model");
        match metric {
            SwMetric::ControlPlane => model.cp_availability(),
            SwMetric::HostDataPlane => model.host_dp_availability(),
        }
    };
    let base = eval(params);
    let with_auto = |v: f64| {
        let mut p = params;
        p.process.auto = v;
        p
    };
    let with_manual = |v: f64| {
        let mut p = params;
        p.process.manual = v;
        p
    };
    ranked(vec![
        build("A (auto)", params.process.auto, base, |v| {
            eval(with_auto(v))
        }),
        build("A_S (manual)", params.process.manual, base, |v| {
            eval(with_manual(v))
        }),
        build("A_V", params.a_v, base, |v| {
            eval(SwParams { a_v: v, ..params })
        }),
        build("A_H", params.a_h, base, |v| {
            eval(SwParams { a_h: v, ..params })
        }),
        build("A_R", params.a_r, base, |v| {
            eval(SwParams { a_r: v, ..params })
        }),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    #[test]
    fn hw_small_is_rack_dominated() {
        // In the Small topology virtually all downtime is the single rack.
        let s = spec();
        let ranking = hw(&s, &Topology::small(&s), HwParams::paper_defaults());
        assert_eq!(ranking[0].parameter, "A_R");
        assert!(ranking[0].downtime_share > 0.8, "{:?}", ranking[0]);
    }

    #[test]
    fn hw_large_shifts_to_roles() {
        // With three racks the quorum protects against rack loss; the role
        // availability becomes the lever.
        let s = spec();
        let ranking = hw(&s, &Topology::large(&s), HwParams::paper_defaults());
        assert_eq!(ranking[0].parameter, "A_C");
        let rack = ranking.iter().find(|p| p.parameter == "A_R").unwrap();
        assert!(rack.downtime_share < 0.2, "{rack:?}");
    }

    #[test]
    fn derivatives_are_nonnegative() {
        let s = spec();
        for topo in [Topology::small(&s), Topology::large(&s)] {
            for p in hw(&s, &topo, HwParams::paper_defaults()) {
                assert!(p.derivative >= 0.0, "{p:?}");
            }
            for metric in [SwMetric::ControlPlane, SwMetric::HostDataPlane] {
                for p in sw(
                    &s,
                    &topo,
                    SwParams::paper_defaults(),
                    Scenario::SupervisorRequired,
                    metric,
                ) {
                    assert!(p.derivative >= 0.0, "{p:?}");
                }
            }
        }
    }

    #[test]
    fn dp_is_dominated_by_processes() {
        // §VI.G/§VII: the host DP's weak link is the vRouter software, so
        // process availability (A, and A_S when the supervisor is
        // required) must dominate the DP ranking.
        let s = spec();
        let ranking = sw(
            &s,
            &Topology::large(&s),
            SwParams::paper_defaults(),
            Scenario::SupervisorRequired,
            SwMetric::HostDataPlane,
        );
        assert_eq!(ranking[0].parameter, "A_S (manual)");
        assert!(ranking[0].downtime_share > 0.5);
        let second = &ranking[1];
        assert_eq!(second.parameter, "A (auto)");
    }

    #[test]
    fn cp_ranking_shifts_with_scenario() {
        // Requiring the supervisor increases the A_S share of CP downtime.
        let s = spec();
        let topo = Topology::large(&s);
        let share = |scenario| {
            sw(
                &s,
                &topo,
                SwParams::paper_defaults(),
                scenario,
                SwMetric::ControlPlane,
            )
            .into_iter()
            .find(|p| p.parameter == "A_S (manual)")
            .unwrap()
            .downtime_share
        };
        assert!(share(Scenario::SupervisorRequired) > share(Scenario::SupervisorNotRequired));
    }

    #[test]
    fn shares_roughly_partition_downtime() {
        // For near-series systems the downtime shares roughly partition
        // unity; each parameter drives several physical elements (3 VMs,
        // 3 hosts, 16 process groups, …), and quorum redundancy makes the
        // marginal effect superlinear, so the sum overshoots 1 by the
        // redundancy factor — about 10% here.
        let s = spec();
        let total: f64 = sw(
            &s,
            &Topology::small(&s),
            SwParams::paper_defaults(),
            Scenario::SupervisorNotRequired,
            SwMetric::ControlPlane,
        )
        .iter()
        .map(|p| p.downtime_share)
        .sum();
        assert!((total - 1.0).abs() < 0.2, "total={total}");
    }

    #[test]
    fn perfect_parameter_has_zero_share() {
        let s = spec();
        let p = HwParams {
            a_r: 1.0,
            ..HwParams::paper_defaults()
        };
        let ranking = hw(&s, &Topology::small(&s), p);
        let rack = ranking.iter().find(|x| x.parameter == "A_R").unwrap();
        assert_eq!(rack.downtime_share, 0.0);
        // The derivative itself is still meaningful (>0: a rack *can* hurt).
        assert!(rack.derivative > 0.0);
    }
}
