//! The paper's conclusions-section closed-form approximations.
//!
//! §VII distills the HW-centric analysis into two rules of thumb. For a
//! one- or two-rack deployment with a 2-of-3 quorum,
//!
//! ```text
//! A ≈ α²(3 − 2α) · A_R,   α = A_C · A_V · A_H
//! ```
//!
//! and for a three-rack deployment,
//!
//! ```text
//! A ≈ α²(3 − 2α),         α = A_C · A_V · A_H · A_R.
//! ```
//!
//! The intuition: availability is dominated by the Database quorum, whose
//! three members are effectively single series chains of
//! `{role + VM + host (+ rack)}`; the 1-of-3 roles only contribute at
//! second order.

use crate::HwParams;

/// The 2-of-3 quorum polynomial `α²(3 − 2α)` (Eq. 1 specialized).
///
/// ```
/// use sdnav_core::approx::two_of_three;
/// assert_eq!(two_of_three(1.0), 1.0);
/// assert_eq!(two_of_three(0.0), 0.0);
/// assert!((two_of_three(0.999) - (3.0 * 0.999f64.powi(2) - 2.0 * 0.999f64.powi(3))).abs() < 1e-15);
/// ```
#[must_use]
pub fn two_of_three(alpha: f64) -> f64 {
    alpha * alpha * (3.0 - 2.0 * alpha)
}

/// §VII approximation for the Small topology: `A_{2/3}(A_C·A_V·A_H) · A_R`.
#[must_use]
pub fn hw_small(p: HwParams) -> f64 {
    two_of_three(p.a_c * p.a_v * p.a_h) * p.a_r
}

/// §VII approximation for the Medium topology (the paper shows
/// `A_M ≈ A_S`): identical to [`hw_small`].
#[must_use]
pub fn hw_medium(p: HwParams) -> f64 {
    hw_small(p)
}

/// §VII approximation for the Large topology:
/// `A_{2/3}(A_C·A_V·A_H·A_R)`.
#[must_use]
pub fn hw_large(p: HwParams) -> f64 {
    two_of_three(p.a_c * p.a_v * p.a_h * p.a_r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControllerSpec, HwModel, Topology};

    /// The approximations must track the exact model to well under the
    /// quantities the paper reasons about (fractions of a minute per year).
    #[test]
    fn approximations_track_exact_models() {
        let spec = ControllerSpec::opencontrail_3x();
        let minutes = 525_960.0;
        for a_c in [0.999, 0.9995, 0.9999] {
            let p = HwParams::paper_defaults().with_a_c(a_c);
            let small_exact = HwModel::try_new(&spec, &Topology::small(&spec), p)
                .expect("valid HW model")
                .availability();
            let medium_exact = HwModel::try_new(&spec, &Topology::medium(&spec), p)
                .expect("valid HW model")
                .availability();
            let large_exact = HwModel::try_new(&spec, &Topology::large(&spec), p)
                .expect("valid HW model")
                .availability();
            assert!(
                (hw_small(p) - small_exact).abs() * minutes < 0.2,
                "small a_c={a_c}: {} vs {}",
                hw_small(p),
                small_exact
            );
            assert!(
                (hw_medium(p) - medium_exact).abs() * minutes < 0.2,
                "medium a_c={a_c}"
            );
            assert!(
                (hw_large(p) - large_exact).abs() * minutes < 0.2,
                "large a_c={a_c}"
            );
        }
    }

    #[test]
    fn approximation_ordering_matches_exact() {
        // Large ≥ Small under the approximations too.
        let p = HwParams::paper_defaults();
        assert!(hw_large(p) > hw_small(p));
        assert_eq!(hw_small(p), hw_medium(p));
    }

    #[test]
    fn two_of_three_bounds() {
        for a in [0.0, 0.3, 0.7, 0.9995, 1.0] {
            let v = two_of_three(a);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn two_of_three_is_monotone() {
        let mut last = 0.0;
        for i in 0..=100 {
            let v = two_of_three(f64::from(i) / 100.0);
            assert!(v >= last - 1e-15);
            last = v;
        }
    }
}
