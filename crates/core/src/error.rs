//! The unified workspace error: one kind taxonomy, one exit-code mapping,
//! one HTTP-status mapping.
//!
//! Each crate keeps its own precise error enum ([`SpecError`],
//! [`ParamError`], `GridError`, …) — those carry the structured detail
//! tests assert on. What used to be ad hoc is the *boundary*: the CLI
//! mapped errors onto exit codes by hand and `sdnav serve` would have
//! needed a second hand-written mapping onto HTTP statuses. [`SdnavError`]
//! is that boundary type: every crate-level error converts into it (via
//! `From` impls living next to each error type), and both frontends read
//! the same [`ErrorKind::exit_code`] / [`ErrorKind::http_status`] tables.
//!
//! [`SpecError`]: crate::SpecError
//! [`ParamError`]: crate::ParamError

use std::error::Error;
use std::fmt;

use sdnav_json::JsonError;

use crate::{ParamError, SpecError, TopologyError};

/// Failure taxonomy shared by the CLI (exit codes) and `sdnav serve`
/// (HTTP statuses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The invocation itself is malformed (unknown flag, bad option
    /// value).
    Usage,
    /// Input text could not be parsed or decoded (JSON syntax, shape).
    Parse,
    /// The named thing does not exist (unknown route, unknown parameter).
    NotFound,
    /// The route exists but not under this HTTP method.
    Method,
    /// A well-formed model or spec failed validation.
    Model,
    /// A well-formed request failed during analysis/evaluation.
    Analysis,
    /// The environment failed us (file I/O, sockets).
    Io,
    /// Results were produced but are incomplete (interrupt, quarantine).
    Partial,
}

impl ErrorKind {
    /// The process exit code contract: 0 success, 1 analysis/input
    /// failure, 2 usage error, 3 partial results.
    #[must_use]
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Usage | ErrorKind::Method => 2,
            ErrorKind::Partial => 3,
            _ => 1,
        }
    }

    /// The HTTP status `sdnav serve` answers with.
    #[must_use]
    pub fn http_status(self) -> u16 {
        match self {
            ErrorKind::Usage | ErrorKind::Parse => 400,
            ErrorKind::NotFound => 404,
            ErrorKind::Method => 405,
            ErrorKind::Model => 422,
            ErrorKind::Analysis | ErrorKind::Io => 500,
            ErrorKind::Partial => 503,
        }
    }

    /// Stable lowercase name used in structured error bodies.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Usage => "usage",
            ErrorKind::Parse => "parse",
            ErrorKind::NotFound => "not_found",
            ErrorKind::Method => "method",
            ErrorKind::Model => "model",
            ErrorKind::Analysis => "analysis",
            ErrorKind::Io => "io",
            ErrorKind::Partial => "partial",
        }
    }
}

/// A classified, displayable workspace error (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct SdnavError {
    kind: ErrorKind,
    message: String,
}

impl SdnavError {
    /// An error of the given kind.
    #[must_use]
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        SdnavError {
            kind,
            message: message.into(),
        }
    }

    /// A malformed invocation (exit 2 / HTTP 400).
    #[must_use]
    pub fn usage(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Usage, message)
    }

    /// Unparsable or undecodable input (exit 1 / HTTP 400).
    #[must_use]
    pub fn parse(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Parse, message)
    }

    /// An unknown route or name (exit 1 / HTTP 404).
    #[must_use]
    pub fn not_found(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::NotFound, message)
    }

    /// A known route under the wrong HTTP method (exit 2 / HTTP 405).
    #[must_use]
    pub fn method(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Method, message)
    }

    /// A model/spec validation failure (exit 1 / HTTP 422).
    #[must_use]
    pub fn model(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Model, message)
    }

    /// An evaluation failure (exit 1 / HTTP 500).
    #[must_use]
    pub fn analysis(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Analysis, message)
    }

    /// An environment/I-O failure (exit 1 / HTTP 500).
    #[must_use]
    pub fn io(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Io, message)
    }

    /// Incomplete-but-emitted results (exit 3 / HTTP 503).
    #[must_use]
    pub fn partial(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Partial, message)
    }

    /// The failure class.
    #[must_use]
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Shorthand for `self.kind().exit_code()`.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        self.kind.exit_code()
    }

    /// Shorthand for `self.kind().http_status()`.
    #[must_use]
    pub fn http_status(&self) -> u16 {
        self.kind.http_status()
    }
}

impl fmt::Display for SdnavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for SdnavError {}

impl From<JsonError> for SdnavError {
    fn from(e: JsonError) -> Self {
        SdnavError::parse(e.to_string())
    }
}

impl From<SpecError> for SdnavError {
    fn from(e: SpecError) -> Self {
        SdnavError::model(e.to_string())
    }
}

impl From<ParamError> for SdnavError {
    fn from(e: ParamError) -> Self {
        SdnavError::model(e.to_string())
    }
}

impl From<TopologyError> for SdnavError {
    fn from(e: TopologyError) -> Self {
        SdnavError::model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_documented_contract() {
        assert_eq!(SdnavError::usage("x").exit_code(), 2);
        assert_eq!(SdnavError::method("x").exit_code(), 2);
        assert_eq!(SdnavError::partial("x").exit_code(), 3);
        for e in [
            SdnavError::parse("x"),
            SdnavError::not_found("x"),
            SdnavError::model("x"),
            SdnavError::analysis("x"),
            SdnavError::io("x"),
        ] {
            assert_eq!(e.exit_code(), 1, "{:?}", e.kind());
        }
    }

    #[test]
    fn http_statuses_partition_by_kind() {
        assert_eq!(SdnavError::usage("x").http_status(), 400);
        assert_eq!(SdnavError::parse("x").http_status(), 400);
        assert_eq!(SdnavError::not_found("x").http_status(), 404);
        assert_eq!(SdnavError::method("x").http_status(), 405);
        assert_eq!(SdnavError::model("x").http_status(), 422);
        assert_eq!(SdnavError::analysis("x").http_status(), 500);
        assert_eq!(SdnavError::io("x").http_status(), 500);
        assert_eq!(SdnavError::partial("x").http_status(), 503);
    }

    #[test]
    fn core_errors_convert_with_model_kind() {
        let param = ParamError {
            field: "a_c",
            value: 1.5,
        };
        let e: SdnavError = param.into();
        assert_eq!(e.kind(), ErrorKind::Model);
        assert!(e.to_string().contains("a_c"));

        let json = JsonError::decode("missing field `x`");
        let e: SdnavError = json.into();
        assert_eq!(e.kind(), ErrorKind::Parse);
    }

    #[test]
    fn kinds_have_stable_names() {
        assert_eq!(ErrorKind::NotFound.name(), "not_found");
        assert_eq!(ErrorKind::Usage.name(), "usage");
    }
}
