//! SW-centric availability analysis (§VI): process-level quorums, the
//! supervisor scenarios, and separate control-plane / data-plane results.

use crate::eval::{role_availability, Enumerator};
use crate::{ControllerSpec, Plane, SwParams, Topology};

/// The two supervisor modes of operation analyzed in §VI.A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Optimistic upper bound: a node-role keeps operating after its
    /// supervisor fails (supervisor restarted at the next maintenance
    /// window, hitlessly).
    SupervisorNotRequired,
    /// Realistic lower bound: a supervisor failure kills its node-role;
    /// every process in it is down until the supervisor is manually
    /// restarted.
    SupervisorRequired,
}

/// The paper's SW-centric availability model (Eqs. 9–15), generalized to
/// any topology and controller spec.
///
/// Differences from the HW-centric [`crate::HwModel`]:
///
/// * roles are decomposed into processes with per-process quorum
///   requirements (Table III) and restart-mode-dependent availabilities
///   (`A` for auto-restarted, `A_S` for manual — Table II);
/// * the supervisor scenario is modeled: in
///   [`Scenario::SupervisorRequired`], a node-role survives only if its
///   supervisor is also up (the paper's `ρ`-weighted conditioning,
///   Eqs. 12–14);
/// * control-plane and data-plane availability are computed separately, the
///   latter split into the *shared* controller contribution `A_SDP` and the
///   *local* per-host vRouter contribution `A_LDP`.
///
/// ```
/// use sdnav_core::{ControllerSpec, Scenario, SwModel, SwParams, Topology};
///
/// let spec = ControllerSpec::opencontrail_3x();
/// let topo = Topology::small(&spec);
/// let model = SwModel::try_new(&spec, &topo, SwParams::paper_defaults(),
///                          Scenario::SupervisorNotRequired).expect("valid SW model");
/// // §VI.G: "A_CP exceeds 0.999987 for the Small topology".
/// assert!(model.cp_availability() > 0.999987);
/// ```
#[derive(Debug)]
pub struct SwModel<'a> {
    spec: &'a ControllerSpec,
    params: SwParams,
    scenario: Scenario,
    enumerator: Enumerator,
}

impl<'a> SwModel<'a> {
    /// Builds the model, validating the parameters first.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ParamError`] naming the first out-of-range
    /// availability. (Topology/spec mismatches still panic — run
    /// [`Topology::validate`] first for a proper error.)
    pub fn try_new(
        spec: &'a ControllerSpec,
        topology: &Topology,
        params: SwParams,
        scenario: Scenario,
    ) -> Result<Self, crate::ParamError> {
        params.try_validate()?;
        let enumerator = Enumerator::new(spec, topology, params.a_v, params.a_h, params.a_r);
        Ok(SwModel {
            spec,
            params,
            scenario,
            enumerator,
        })
    }

    /// The scenario being analyzed.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> SwParams {
        self.params
    }

    /// SDN control-plane availability `A_CP`.
    #[must_use]
    pub fn cp_availability(&self) -> f64 {
        self.plane_availability(Plane::ControlPlane)
    }

    /// Shared data-plane availability `A_SDP`: the controller-side
    /// contribution that affects the DP of *every* host at once.
    #[must_use]
    pub fn shared_dp_availability(&self) -> f64 {
        self.plane_availability(Plane::DataPlane)
    }

    /// Local data-plane availability `A_LDP`: the per-host vRouter
    /// contribution — `A^K` (times `A_S` when the vRouter supervisor is
    /// required).
    #[must_use]
    pub fn local_dp_availability(&self) -> f64 {
        let mut a = 1.0;
        for p in self.spec.local_dp_processes() {
            a *= self.params.process.for_spec(p);
        }
        if self.scenario == Scenario::SupervisorRequired {
            if let Some(sup) = self.spec.per_host_roles().find_map(|r| r.supervisor()) {
                a *= self.params.process.for_spec(sup);
            }
        }
        a
    }

    /// Per-host data-plane availability
    /// `A_DP = A_SDP · A_LDP`.
    #[must_use]
    pub fn host_dp_availability(&self) -> f64 {
        self.shared_dp_availability() * self.local_dp_availability()
    }

    fn plane_availability(&self, plane: Plane) -> f64 {
        let nodes = self.enumerator.nodes();
        let reqs = self.spec.requirements(plane);
        // Per covered role: list of (m, instance availability).
        let role_reqs: Vec<Vec<(u32, f64)>> = self
            .enumerator
            .role_indices()
            .iter()
            .map(|&ri| {
                reqs.iter()
                    .filter(|r| r.role_index == ri)
                    .map(|r| (r.required, r.instance_availability(&self.params.process)))
                    .collect()
            })
            .collect();
        // In the supervisor-required scenario a node-role block survives
        // only if its supervisor is up: multiply the chain probability by
        // the supervisor's availability (the paper's ρ = A_S conditioning).
        let sup_factor: Vec<f64> = self
            .enumerator
            .role_indices()
            .iter()
            .map(|&ri| {
                if self.scenario == Scenario::SupervisorRequired {
                    self.spec.roles[ri]
                        .supervisor()
                        .map_or(1.0, |s| self.params.process.for_spec(s))
                } else {
                    1.0
                }
            })
            .collect();

        let mut probs = vec![0.0; nodes];
        self.enumerator.evaluate(|q| {
            let mut avail = 1.0;
            for (r, reqs) in role_reqs.iter().enumerate() {
                if reqs.is_empty() {
                    continue;
                }
                for (i, p) in probs.iter_mut().enumerate() {
                    *p = q[r * nodes + i] * sup_factor[r];
                }
                avail *= role_availability(&probs, reqs);
                if avail == 0.0 {
                    break;
                }
            }
            avail
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINUTES_PER_YEAR: f64 = 525_960.0;

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    fn defaults() -> SwParams {
        SwParams::paper_defaults()
    }

    fn downtime(a: f64) -> f64 {
        (1.0 - a) * MINUTES_PER_YEAR
    }

    #[test]
    fn try_new_rejects_bad_params_and_accepts_defaults() {
        let s = spec();
        let topo = Topology::small(&s);
        let bad = SwParams {
            a_v: -0.1,
            ..defaults()
        };
        let err = SwModel::try_new(&s, &topo, bad, Scenario::SupervisorNotRequired).unwrap_err();
        assert_eq!(err.field, "a_v");
        let model =
            SwModel::try_new(&s, &topo, defaults(), Scenario::SupervisorNotRequired).unwrap();
        assert!(model.cp_availability() > 0.999987);
    }

    #[test]
    fn cp_small_supervisor_not_required_is_5_9_minutes() {
        // §VI.G quotes 5.9 m/y for option 1S.
        let s = spec();
        let m = SwModel::try_new(
            &s,
            &Topology::small(&s),
            defaults(),
            Scenario::SupervisorNotRequired,
        )
        .expect("valid SW model");
        let dt = downtime(m.cp_availability());
        assert!((dt - 5.9).abs() < 0.15, "got {dt:.2} m/y");
    }

    #[test]
    fn cp_small_supervisor_required_is_6_6_minutes() {
        let s = spec();
        let m = SwModel::try_new(
            &s,
            &Topology::small(&s),
            defaults(),
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model");
        let dt = downtime(m.cp_availability());
        assert!((dt - 6.6).abs() < 0.25, "got {dt:.2} m/y");
    }

    #[test]
    fn cp_large_supervisor_not_required_is_0_7_minutes() {
        let s = spec();
        let m = SwModel::try_new(
            &s,
            &Topology::large(&s),
            defaults(),
            Scenario::SupervisorNotRequired,
        )
        .expect("valid SW model");
        let dt = downtime(m.cp_availability());
        assert!((dt - 0.7).abs() < 0.15, "got {dt:.2} m/y");
    }

    #[test]
    fn cp_large_supervisor_required_is_1_4_minutes() {
        let s = spec();
        let m = SwModel::try_new(
            &s,
            &Topology::large(&s),
            defaults(),
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model");
        let dt = downtime(m.cp_availability());
        assert!((dt - 1.4).abs() < 0.25, "got {dt:.2} m/y");
    }

    #[test]
    fn cp_exceeds_quoted_floors() {
        // §VI.G: "A_CP exceeds 0.999987 for the Small topology and
        // 0.999997 for the Large topology" (both scenarios at defaults).
        let s = spec();
        for scenario in [
            Scenario::SupervisorNotRequired,
            Scenario::SupervisorRequired,
        ] {
            let small = SwModel::try_new(&s, &Topology::small(&s), defaults(), scenario)
                .expect("valid SW model");
            assert!(small.cp_availability() > 0.999987, "{scenario:?}");
            let large = SwModel::try_new(&s, &Topology::large(&s), defaults(), scenario)
                .expect("valid SW model");
            assert!(large.cp_availability() > 0.999997, "{scenario:?}");
        }
    }

    #[test]
    fn dp_small_downtimes_match_paper() {
        // §VI.G: DP downtime "from 26 to 131 m/y in the Small topology".
        let s = spec();
        let without = SwModel::try_new(
            &s,
            &Topology::small(&s),
            defaults(),
            Scenario::SupervisorNotRequired,
        )
        .expect("valid SW model");
        let with = SwModel::try_new(
            &s,
            &Topology::small(&s),
            defaults(),
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model");
        let dt_without = downtime(without.host_dp_availability());
        let dt_with = downtime(with.host_dp_availability());
        assert!((dt_without - 26.0).abs() < 1.0, "got {dt_without:.1}");
        assert!((dt_with - 131.0).abs() < 2.0, "got {dt_with:.1}");
    }

    #[test]
    fn dp_large_downtimes_match_paper() {
        // §VI.G: "from 21 to 126 m/y in the Large topology".
        let s = spec();
        let without = SwModel::try_new(
            &s,
            &Topology::large(&s),
            defaults(),
            Scenario::SupervisorNotRequired,
        )
        .expect("valid SW model");
        let with = SwModel::try_new(
            &s,
            &Topology::large(&s),
            defaults(),
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model");
        let dt_without = downtime(without.host_dp_availability());
        let dt_with = downtime(with.host_dp_availability());
        assert!((dt_without - 21.0).abs() < 1.0, "got {dt_without:.1}");
        assert!((dt_with - 126.0).abs() < 2.0, "got {dt_with:.1}");
    }

    #[test]
    fn dp_floors_match_paper() {
        // §VI.G: A_DP = 0.99975+ with supervisor required, 0.99995+ without.
        let s = spec();
        for topo in [Topology::small(&s), Topology::large(&s)] {
            let with = SwModel::try_new(&s, &topo, defaults(), Scenario::SupervisorRequired)
                .expect("valid SW model");
            assert!(with.host_dp_availability() > 0.99975);
            let without = SwModel::try_new(&s, &topo, defaults(), Scenario::SupervisorNotRequired)
                .expect("valid SW model");
            assert!(without.host_dp_availability() > 0.99995);
        }
    }

    #[test]
    fn supervisor_required_is_always_worse() {
        let s = spec();
        for topo in [
            Topology::small(&s),
            Topology::medium(&s),
            Topology::large(&s),
        ] {
            let with = SwModel::try_new(&s, &topo, defaults(), Scenario::SupervisorRequired)
                .expect("valid SW model");
            let without = SwModel::try_new(&s, &topo, defaults(), Scenario::SupervisorNotRequired)
                .expect("valid SW model");
            assert!(
                with.cp_availability() < without.cp_availability(),
                "{}",
                topo.name()
            );
            assert!(
                with.host_dp_availability() < without.host_dp_availability(),
                "{}",
                topo.name()
            );
        }
    }

    #[test]
    fn local_dp_is_a_squared_without_supervisor() {
        let s = spec();
        let m = SwModel::try_new(
            &s,
            &Topology::small(&s),
            defaults(),
            Scenario::SupervisorNotRequired,
        )
        .expect("valid SW model");
        let a = defaults().process.auto;
        assert!((m.local_dp_availability() - a * a).abs() < 1e-15);
    }

    #[test]
    fn local_dp_includes_supervisor_when_required() {
        let s = spec();
        let m = SwModel::try_new(
            &s,
            &Topology::small(&s),
            defaults(),
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model");
        let p = defaults().process;
        assert!((m.local_dp_availability() - p.auto * p.auto * p.manual).abs() < 1e-15);
    }

    #[test]
    fn host_dp_is_product_of_shared_and_local() {
        let s = spec();
        let m = SwModel::try_new(
            &s,
            &Topology::large(&s),
            defaults(),
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model");
        let product = m.shared_dp_availability() * m.local_dp_availability();
        assert!((m.host_dp_availability() - product).abs() < 1e-15);
    }

    #[test]
    fn dp_dominated_by_local_vrouter() {
        // §VI.G: "total DP availability is dominated by the identical host
        // vRouter LDP availability" — shared DP is much better than local.
        let s = spec();
        let m = SwModel::try_new(
            &s,
            &Topology::large(&s),
            defaults(),
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model");
        assert!(m.shared_dp_availability() > m.local_dp_availability());
    }

    #[test]
    fn high_process_availability_converges_scenarios() {
        // §VI.G: at +1 order of magnitude the supervisor impact becomes
        // irrelevant; CP availabilities converge per topology, and the
        // Small topology becomes rack-limited. (The paper quotes limit
        // values of 0.999999/0.9999988 that are inconsistent with its own
        // A_R = 0.99999 rack floor; we assert the qualitative claims —
        // see EXPERIMENTS.md.)
        let s = spec();
        let params = defaults().scale_process_downtime(-1.0);
        let small_with = SwModel::try_new(
            &s,
            &Topology::small(&s),
            params,
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model")
        .cp_availability();
        let small_without = SwModel::try_new(
            &s,
            &Topology::small(&s),
            params,
            Scenario::SupervisorNotRequired,
        )
        .expect("valid SW model")
        .cp_availability();
        assert!((small_with - small_without).abs() < 2e-7);
        // Small is dominated by its single rack: unavailability ≈ 1 − A_R.
        let u = 1.0 - small_with;
        assert!((u - 1e-5).abs() < 2e-6, "u={u:e}");
        // Rack separation becomes the key differentiator: Large beats
        // Small by roughly the rack unavailability.
        let large_with = SwModel::try_new(
            &s,
            &Topology::large(&s),
            params,
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model")
        .cp_availability();
        assert!(large_with - small_with > 8e-6);
    }

    #[test]
    fn low_process_availability_converges_topologies() {
        // §VI.G: at −1 order of magnitude rack separation becomes less
        // relevant; Small and Large begin to converge.
        let s = spec();
        let params = defaults().scale_process_downtime(1.0);
        let small = SwModel::try_new(
            &s,
            &Topology::small(&s),
            params,
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model")
        .cp_availability();
        let large = SwModel::try_new(
            &s,
            &Topology::large(&s),
            params,
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model")
        .cp_availability();
        let gap_low = small - large;
        let small0 = SwModel::try_new(
            &s,
            &Topology::small(&s),
            defaults(),
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model")
        .cp_availability();
        let large0 = SwModel::try_new(
            &s,
            &Topology::large(&s),
            defaults(),
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model")
        .cp_availability();
        let gap_default = small0 - large0;
        // The relative gap (as a share of unavailability) shrinks.
        assert!(gap_low.abs() / (1.0 - large) < gap_default.abs() / (1.0 - large0));
    }

    #[test]
    fn dp_low_availability_convergence_values() {
        // §VI.G: at −1 OoM, DP availabilities converge to ~0.9976 with the
        // supervisor required and ~0.9996 without.
        let s = spec();
        let params = defaults().scale_process_downtime(1.0);
        let with = SwModel::try_new(
            &s,
            &Topology::small(&s),
            params,
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model")
        .host_dp_availability();
        let without = SwModel::try_new(
            &s,
            &Topology::small(&s),
            params,
            Scenario::SupervisorNotRequired,
        )
        .expect("valid SW model")
        .host_dp_availability();
        assert!((with - 0.9976).abs() < 3e-4, "got {with:.5}");
        assert!((without - 0.9996).abs() < 1e-4, "got {without:.5}");
    }

    #[test]
    fn dp_high_availability_convergence_values() {
        // §VI.G: at +1 OoM, DP converges to ~0.999976 (required) and
        // ~0.999996 (not required). Those values are the Large-topology
        // limits (Small keeps its ~1e-5 rack term in the SDP; the paper
        // notes "the difference is due to rack separation in the SDP").
        let s = spec();
        let params = defaults().scale_process_downtime(-1.0);
        let with = SwModel::try_new(
            &s,
            &Topology::large(&s),
            params,
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model")
        .host_dp_availability();
        let without = SwModel::try_new(
            &s,
            &Topology::large(&s),
            params,
            Scenario::SupervisorNotRequired,
        )
        .expect("valid SW model")
        .host_dp_availability();
        assert!((with - 0.999976).abs() < 3e-6, "got {with:.7}");
        assert!((without - 0.999996).abs() < 3e-6, "got {without:.7}");
    }

    #[test]
    fn immature_quorum_process_hurts_far_more_than_immature_any_instance() {
        // §VI.A's "new vs mature code" extension: a 10x-worse 1-of-3
        // process costs almost nothing (its failures need two partners),
        // while a 10x-worse 2-of-3 Database process costs ~100x more
        // (quorum downtime is quadratic in process downtime).
        let degrade = |role: &str, process: &str| {
            let mut s = spec();
            let r = s.roles.iter_mut().find(|r| r.name == role).unwrap();
            let p = r.processes.iter_mut().find(|p| p.name == process).unwrap();
            p.downtime_factor = 10.0;
            s
        };
        let base_spec = spec();
        let topo = Topology::large(&base_spec);
        let cp = |s: &ControllerSpec| {
            SwModel::try_new(
                s,
                &Topology::large(s),
                defaults(),
                Scenario::SupervisorNotRequired,
            )
            .expect("valid SW model")
            .cp_availability()
        };
        let base = cp(&base_spec);
        let with_bad_config = cp(&degrade("Config", "ifmap"));
        let with_bad_db = cp(&degrade("Database", "zookeeper"));
        let cost_config = base - with_bad_config;
        let cost_db = base - with_bad_db;
        assert!(cost_config >= 0.0 && cost_db > 0.0);
        assert!(
            cost_db > 30.0 * cost_config.max(1e-15),
            "db={cost_db:e} config={cost_config:e}"
        );
        // Quadratic scaling: 10x downtime on a 2-of-3 process multiplies
        // its quorum-loss contribution by ~100.
        let zk_pair_base = 3.0 * (1.0 - defaults().process.manual).powi(2);
        assert!(
            (cost_db / zk_pair_base - 99.0).abs() < 20.0,
            "{}",
            cost_db / zk_pair_base
        );
        let _ = topo;
    }

    #[test]
    fn kernel_mode_vrouter_improves_dp_by_one_process() {
        // DESIGN.md extension: dropping vrouter-dpdk (kernel-mode
        // forwarding) raises A_LDP from A² to A.
        let dpdk = spec();
        let kernel = ControllerSpec::opencontrail_3x_kernel_mode();
        let topo_d = Topology::large(&dpdk);
        let topo_k = Topology::large(&kernel);
        let m_d = SwModel::try_new(&dpdk, &topo_d, defaults(), Scenario::SupervisorNotRequired)
            .expect("valid SW model");
        let m_k = SwModel::try_new(
            &kernel,
            &topo_k,
            defaults(),
            Scenario::SupervisorNotRequired,
        )
        .expect("valid SW model");
        let a = defaults().process.auto;
        assert!((m_d.local_dp_availability() - a * a).abs() < 1e-15);
        assert!((m_k.local_dp_availability() - a).abs() < 1e-15);
        // ~10.5 m/y saved at the defaults.
        let saved = (m_k.host_dp_availability() - m_d.host_dp_availability()) * MINUTES_PER_YEAR;
        assert!((saved - 10.5).abs() < 0.2, "saved {saved:.2} m/y");
    }

    #[test]
    fn accessors() {
        let s = spec();
        let m = SwModel::try_new(
            &s,
            &Topology::small(&s),
            defaults(),
            Scenario::SupervisorRequired,
        )
        .expect("valid SW model");
        assert_eq!(m.scenario(), Scenario::SupervisorRequired);
        assert_eq!(m.params(), defaults());
    }
}
