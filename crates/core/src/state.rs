//! The mutable evaluator state behind `sdnav serve`: a resolved spec plus
//! parameter sets, content-addressed by FNV-1a domain fingerprints.
//!
//! The incremental evaluation graph in `sdnav-grid` keys every memoized
//! sub-model by `(domain fingerprint, sub-model key)`. [`ModelState`]
//! owns the inputs that fingerprint covers and exposes exactly two
//! domains:
//!
//! * [`ModelState::hw_domain`] — everything the HW-centric figures read:
//!   the spec document and [`HwParams`] bit patterns.
//! * [`ModelState::sw_domain`] — everything the SW-centric figures read:
//!   the spec document and [`SwParams`] bit patterns.
//!
//! [`ModelState::patch`] edits one named rate and returns which domains
//! changed; a patch to `sw.a_h` leaves `hw_domain` untouched, so every
//! HW sub-model stays addressable (and therefore cached) across the edit.
//! Fingerprints hash f64 *bit patterns*, never formatted decimals, so two
//! states compare equal exactly when they evaluate identically.

use sdnav_json::ToJson;

use crate::error::SdnavError;
use crate::{ControllerSpec, HwParams, SwParams};

/// FNV-1a offset basis (the same seed the checkpoint WAL fingerprint
/// uses, so the two fingerprint families stay recognisably related).
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Folds `bytes` into an FNV-1a running state.
#[must_use]
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// Names every parameter [`ModelState::patch`] accepts, for error
/// messages and discoverability.
pub const PATCHABLE: &[&str] = &[
    "hw.a_c",
    "hw.a_v",
    "hw.a_h",
    "hw.a_r",
    "sw.a_v",
    "sw.a_h",
    "sw.a_r",
    "sw.process.auto",
    "sw.process.manual",
    "spec.<role>/<process>.downtime_factor",
];

/// Which fingerprint domains a patch touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchEffect {
    /// The HW-centric domain fingerprint changed.
    pub hw: bool,
    /// The SW-centric domain fingerprint changed.
    pub sw: bool,
}

/// A resolved controller spec plus the HW/SW parameter sets it is
/// evaluated under (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// The controller deployment under analysis.
    pub spec: ControllerSpec,
    /// HW-centric (§V) parameters.
    pub hw: HwParams,
    /// SW-centric (§VI) parameters.
    pub sw: SwParams,
}

impl ModelState {
    /// A state evaluating `spec` under the paper's default parameters —
    /// the configuration the one-shot CLI path uses.
    #[must_use]
    pub fn paper(spec: ControllerSpec) -> Self {
        ModelState {
            spec,
            hw: HwParams::paper_defaults(),
            sw: SwParams::paper_defaults(),
        }
    }

    /// Validates the spec and both parameter sets.
    ///
    /// # Errors
    ///
    /// Returns a `Model`-kind [`SdnavError`] naming the first violation.
    pub fn try_validate(&self) -> Result<(), SdnavError> {
        self.spec.validate()?;
        self.hw.try_validate()?;
        self.sw.try_validate()?;
        Ok(())
    }

    fn spec_fp(&self) -> u64 {
        fnv1a(FNV_OFFSET, self.spec.to_json().to_compact().as_bytes())
    }

    /// Fingerprint of everything the HW-centric figures depend on.
    #[must_use]
    pub fn hw_domain(&self) -> u64 {
        let mut fp = fnv1a(self.spec_fp(), b"hw");
        for v in [self.hw.a_c, self.hw.a_v, self.hw.a_h, self.hw.a_r] {
            fp = fnv1a(fp, &v.to_bits().to_le_bytes());
        }
        fp
    }

    /// Fingerprint of everything the SW-centric figures depend on.
    #[must_use]
    pub fn sw_domain(&self) -> u64 {
        let mut fp = fnv1a(self.spec_fp(), b"sw");
        for v in [
            self.sw.process.auto,
            self.sw.process.manual,
            self.sw.a_v,
            self.sw.a_h,
            self.sw.a_r,
        ] {
            fp = fnv1a(fp, &v.to_bits().to_le_bytes());
        }
        fp
    }

    /// Sets the named rate or parameter to `value` and reports which
    /// domains changed.
    ///
    /// Accepted names are listed in [`PATCHABLE`]: `hw.*` and `sw.*`
    /// address the parameter sets; `spec.<role>/<process>.downtime_factor`
    /// addresses one process's downtime multiplier.
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown name (the message lists valid names);
    /// `Model` when the patched state fails validation — the state is
    /// left unchanged in both cases.
    pub fn patch(&mut self, name: &str, value: f64) -> Result<PatchEffect, SdnavError> {
        let mut next = self.clone();
        let effect = match name {
            "hw.a_c" => set_hw(&mut next.hw.a_c, value),
            "hw.a_v" => set_hw(&mut next.hw.a_v, value),
            "hw.a_h" => set_hw(&mut next.hw.a_h, value),
            "hw.a_r" => set_hw(&mut next.hw.a_r, value),
            "sw.a_v" => set_sw(&mut next.sw.a_v, value),
            "sw.a_h" => set_sw(&mut next.sw.a_h, value),
            "sw.a_r" => set_sw(&mut next.sw.a_r, value),
            "sw.process.auto" => set_sw(&mut next.sw.process.auto, value),
            "sw.process.manual" => set_sw(&mut next.sw.process.manual, value),
            other => patch_spec(&mut next.spec, other, value)?,
        };
        next.try_validate()?;
        *self = next;
        Ok(effect)
    }
}

fn set_hw(slot: &mut f64, value: f64) -> PatchEffect {
    *slot = value;
    PatchEffect {
        hw: true,
        sw: false,
    }
}

fn set_sw(slot: &mut f64, value: f64) -> PatchEffect {
    *slot = value;
    PatchEffect {
        hw: false,
        sw: true,
    }
}

fn unknown_name(name: &str) -> SdnavError {
    SdnavError::not_found(format!(
        "unknown parameter {name:?}; valid names: {}",
        PATCHABLE.join(", ")
    ))
}

fn patch_spec(
    spec: &mut ControllerSpec,
    name: &str,
    value: f64,
) -> Result<PatchEffect, SdnavError> {
    // spec.<role>/<process>.downtime_factor — the spec document feeds
    // both domain fingerprints, so the whole graph invalidates.
    let path = name
        .strip_prefix("spec.")
        .and_then(|p| p.strip_suffix(".downtime_factor"))
        .ok_or_else(|| unknown_name(name))?;
    let (role_name, proc_name) = path.split_once('/').ok_or_else(|| unknown_name(name))?;
    let process = spec
        .roles
        .iter_mut()
        .find(|r| r.name == role_name)
        .and_then(|r| r.processes.iter_mut().find(|p| p.name == proc_name))
        .ok_or_else(|| {
            SdnavError::not_found(format!(
                "unknown process {role_name:?}/{proc_name:?} in spec"
            ))
        })?;
    process.downtime_factor = value;
    Ok(PatchEffect { hw: true, sw: true })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    fn state() -> ModelState {
        ModelState::paper(ControllerSpec::opencontrail_3x())
    }

    #[test]
    fn fingerprints_are_stable_and_domain_separated() {
        let s = state();
        assert_eq!(s.hw_domain(), state().hw_domain());
        assert_eq!(s.sw_domain(), state().sw_domain());
        assert_ne!(s.hw_domain(), s.sw_domain());
    }

    #[test]
    fn sw_patch_leaves_hw_domain_untouched() {
        let mut s = state();
        let (hw0, sw0) = (s.hw_domain(), s.sw_domain());
        let effect = s.patch("sw.a_h", 0.9998).unwrap();
        assert_eq!(
            effect,
            PatchEffect {
                hw: false,
                sw: true
            }
        );
        assert_eq!(s.hw_domain(), hw0);
        assert_ne!(s.sw_domain(), sw0);
    }

    #[test]
    fn hw_patch_leaves_sw_domain_untouched() {
        let mut s = state();
        let (hw0, sw0) = (s.hw_domain(), s.sw_domain());
        let effect = s.patch("hw.a_c", 0.999).unwrap();
        assert_eq!(
            effect,
            PatchEffect {
                hw: true,
                sw: false
            }
        );
        assert_ne!(s.hw_domain(), hw0);
        assert_eq!(s.sw_domain(), sw0);
    }

    #[test]
    fn downtime_factor_patch_changes_both_domains() {
        let mut s = state();
        let (hw0, sw0) = (s.hw_domain(), s.sw_domain());
        let role = s.spec.roles[0].name.clone();
        let proc_name = s.spec.roles[0].processes[0].name.clone();
        let effect = s
            .patch(&format!("spec.{role}/{proc_name}.downtime_factor"), 10.0)
            .unwrap();
        assert_eq!(effect, PatchEffect { hw: true, sw: true });
        assert_ne!(s.hw_domain(), hw0);
        assert_ne!(s.sw_domain(), sw0);
    }

    #[test]
    fn patch_back_to_original_restores_the_fingerprint() {
        let mut s = state();
        let hw0 = s.hw_domain();
        let original = s.hw.a_c;
        s.patch("hw.a_c", 0.999).unwrap();
        s.patch("hw.a_c", original).unwrap();
        assert_eq!(s.hw_domain(), hw0);
    }

    #[test]
    fn unknown_name_is_not_found_and_lists_valid_names() {
        let mut s = state();
        let err = s.patch("hw.bogus", 0.5).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
        assert!(err.to_string().contains("hw.a_c"), "{err}");
        let err = s
            .patch("spec.nope/nothing.downtime_factor", 1.0)
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
    }

    #[test]
    fn invalid_value_is_model_error_and_state_is_unchanged() {
        let mut s = state();
        let before = s.clone();
        let err = s.patch("hw.a_c", 1.5).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Model);
        assert_eq!(s, before);
        let err = s.patch("sw.a_v", f64::NAN).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Model);
        assert_eq!(s, before);
    }
}
