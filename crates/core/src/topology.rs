//! Physical deployment topologies (the paper's §IV, Fig. 2).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use sdnav_json::{FromJson, Json, JsonError, ToJson};

use crate::{ControllerSpec, RoleScope};

/// Identifier of a rack within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(pub usize);

/// Identifier of a host within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

/// Identifier of a VM within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub usize);

macro_rules! id_json {
    ($($id:ident),+) => {$(
        impl ToJson for $id {
            fn to_json(&self) -> Json {
                self.0.to_json()
            }
        }

        impl FromJson for $id {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                value.as_usize().map($id)
            }
        }
    )+};
}

id_json!(RackId, HostId, VmId);

/// A physical deployment layout: racks contain hosts, hosts run VMs, and
/// each VM carries one or more `(role, node)` assignments.
///
/// The three reference layouts of Fig. 2 are provided as constructors:
///
/// * [`Topology::small`] — one rack, three hosts, one `GCAD` VM per host
///   carrying all four controller roles of its node;
/// * [`Topology::medium`] — two racks (hosts 1–2 in rack 1, host 3 in rack
///   2), one VM per role per node, each node's four VMs on one host;
/// * [`Topology::large`] — three racks, twelve hosts, one VM per host,
///   each node's four VMs in its own rack.
///
/// ```
/// use sdnav_core::{ControllerSpec, Topology};
///
/// let spec = ControllerSpec::opencontrail_3x();
/// let large = Topology::large(&spec);
/// assert_eq!(large.rack_count(), 3);
/// assert_eq!(large.host_count(), 12);
/// assert_eq!(large.vm_count(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    name: String,
    /// `hosts[h]` is the rack of host `h`.
    hosts: Vec<RackId>,
    /// `vms[v]` is the host of VM `v`.
    vms: Vec<HostId>,
    rack_count: usize,
    /// `(role name, node index)` → VM.
    assignments: BTreeMap<(String, u32), VmId>,
}

impl ToJson for Topology {
    fn to_json(&self) -> Json {
        // JSON cannot key maps by tuples; serialize assignments as an
        // entry list `[{role, node, vm}, …]`.
        let entries: Vec<Json> = self
            .assignments
            .iter()
            .map(|((role, node), vm)| {
                Json::obj(vec![
                    ("role", Json::str(role.clone())),
                    ("node", node.to_json()),
                    ("vm", vm.to_json()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("name", Json::str(self.name.clone())),
            ("hosts", self.hosts.to_json()),
            ("vms", self.vms.to_json()),
            ("rack_count", self.rack_count.to_json()),
            ("assignments", Json::Arr(entries)),
        ])
    }
}

impl FromJson for Topology {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let mut assignments = BTreeMap::new();
        let entries = value
            .field("assignments")?
            .as_arr()
            .map_err(|e| e.ctx("assignments"))?;
        for (i, entry) in entries.iter().enumerate() {
            let decoded = (|| -> Result<((String, u32), VmId), JsonError> {
                let role = String::from_json(entry.field("role")?).map_err(|e| e.ctx("role"))?;
                let node = entry.field("node")?.as_u32().map_err(|e| e.ctx("node"))?;
                let vm = VmId::from_json(entry.field("vm")?).map_err(|e| e.ctx("vm"))?;
                Ok(((role, node), vm))
            })()
            .map_err(|e| e.ctx(&format!("[{i}]")).ctx("assignments"))?;
            assignments.insert(decoded.0, decoded.1);
        }
        Ok(Topology {
            name: String::from_json(value.field("name")?).map_err(|e| e.ctx("name"))?,
            hosts: Vec::from_json(value.field("hosts")?).map_err(|e| e.ctx("hosts"))?,
            vms: Vec::from_json(value.field("vms")?).map_err(|e| e.ctx("vms"))?,
            rack_count: value
                .field("rack_count")?
                .as_usize()
                .map_err(|e| e.ctx("rack_count"))?,
            assignments,
        })
    }
}

impl Topology {
    /// Creates an empty topology to be populated with
    /// [`add_rack`](Self::add_rack) / [`add_host`](Self::add_host) /
    /// [`add_vm`](Self::add_vm) / [`assign`](Self::assign).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            hosts: Vec::new(),
            vms: Vec::new(),
            rack_count: 0,
            assignments: BTreeMap::new(),
        }
    }

    /// The paper's Small topology: 3 `GCAD` VMs on 3 hosts in 1 rack.
    #[must_use]
    pub fn small(spec: &ControllerSpec) -> Self {
        let mut t = Topology::new("Small");
        let rack = t.add_rack();
        for node in 0..spec.nodes {
            let host = t.add_host(rack);
            let vm = t.add_vm(host);
            for (_, role) in spec.controller_roles() {
                t.assign(vm, &role.name, node);
            }
        }
        t
    }

    /// A layout the paper does not evaluate: the Small topology's three
    /// consolidated `GCAD` VMs, but with each host in its **own rack**.
    ///
    /// This combines the paper's two findings — role/VM/host consolidation
    /// is availability-neutral (§V.D), and only three-way rack separation
    /// protects the quorum (§VII) — into their logical conclusion: Large-
    /// topology control-plane availability from Small-topology hardware
    /// (3 hosts, 3 VMs). See the `pareto_planning` experiment, where this
    /// layout dominates the paper's Large topology.
    #[must_use]
    pub fn small_three_racks(spec: &ControllerSpec) -> Self {
        let mut t = Topology::new("Small-3R");
        for node in 0..spec.nodes {
            let rack = t.add_rack();
            let host = t.add_host(rack);
            let vm = t.add_vm(host);
            for (_, role) in spec.controller_roles() {
                t.assign(vm, &role.name, node);
            }
        }
        t
    }

    /// The paper's Medium topology: one VM per role, each node's VMs
    /// sharing a host; hosts 1–2 in rack 1, host 3 in rack 2.
    ///
    /// For clusters larger than 3 nodes the first `n−1` hosts share rack 1
    /// and the last host gets rack 2, preserving the paper's "quorum still
    /// on one rack" property.
    #[must_use]
    pub fn medium(spec: &ControllerSpec) -> Self {
        let mut t = Topology::new("Medium");
        let rack1 = t.add_rack();
        let rack2 = t.add_rack();
        for node in 0..spec.nodes {
            let rack = if node + 1 < spec.nodes { rack1 } else { rack2 };
            let host = t.add_host(rack);
            for (_, role) in spec.controller_roles() {
                let vm = t.add_vm(host);
                t.assign(vm, &role.name, node);
            }
        }
        t
    }

    /// The paper's Large topology: every role VM on its own host, each
    /// node's hosts in their own rack.
    #[must_use]
    pub fn large(spec: &ControllerSpec) -> Self {
        let mut t = Topology::new("Large");
        for node in 0..spec.nodes {
            let rack = t.add_rack();
            for (_, role) in spec.controller_roles() {
                let host = t.add_host(rack);
                let vm = t.add_vm(host);
                t.assign(vm, &role.name, node);
            }
        }
        t
    }

    /// Adds a rack.
    pub fn add_rack(&mut self) -> RackId {
        self.rack_count += 1;
        RackId(self.rack_count - 1)
    }

    /// Adds a host to `rack`.
    ///
    /// # Panics
    ///
    /// Panics if `rack` does not exist.
    pub fn add_host(&mut self, rack: RackId) -> HostId {
        assert!(rack.0 < self.rack_count, "rack {rack:?} does not exist");
        self.hosts.push(rack);
        HostId(self.hosts.len() - 1)
    }

    /// Adds a VM to `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` does not exist.
    pub fn add_vm(&mut self, host: HostId) -> VmId {
        assert!(host.0 < self.hosts.len(), "host {host:?} does not exist");
        self.vms.push(host);
        VmId(self.vms.len() - 1)
    }

    /// Assigns `(role, node)` to `vm`, replacing any previous assignment of
    /// that pair.
    ///
    /// # Panics
    ///
    /// Panics if `vm` does not exist.
    pub fn assign(&mut self, vm: VmId, role: &str, node: u32) {
        assert!(vm.0 < self.vms.len(), "vm {vm:?} does not exist");
        self.assignments.insert((role.to_owned(), node), vm);
    }

    /// Layout name (`Small`, `Medium`, `Large`, or custom).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of racks.
    #[must_use]
    pub fn rack_count(&self) -> usize {
        self.rack_count
    }

    /// Number of hosts.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of VMs.
    #[must_use]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// The rack of `host`.
    #[must_use]
    pub fn rack_of(&self, host: HostId) -> RackId {
        self.hosts[host.0]
    }

    /// The host of `vm`.
    #[must_use]
    pub fn host_of(&self, vm: VmId) -> HostId {
        self.vms[vm.0]
    }

    /// The VM assigned to `(role, node)`, if any.
    #[must_use]
    pub fn vm_of(&self, role: &str, node: u32) -> Option<VmId> {
        self.assignments.get(&(role.to_owned(), node)).copied()
    }

    /// All `(role, node) → vm` assignments.
    pub fn assignments(&self) -> impl Iterator<Item = (&str, u32, VmId)> {
        self.assignments
            .iter()
            .map(|((role, node), vm)| (role.as_str(), *node, *vm))
    }

    /// Checks the topology can host `spec`: every controller `(role, node)`
    /// pair must be assigned to exactly one existing VM.
    ///
    /// # Errors
    ///
    /// Returns the first [`TopologyError`] found.
    pub fn validate(&self, spec: &ControllerSpec) -> Result<(), TopologyError> {
        for (_, role) in spec.controller_roles() {
            for node in 0..spec.nodes {
                if self.vm_of(&role.name, node).is_none() {
                    return Err(TopologyError::MissingAssignment {
                        role: role.name.clone(),
                        node,
                    });
                }
            }
        }
        for ((role, node), vm) in &self.assignments {
            if vm.0 >= self.vms.len() {
                return Err(TopologyError::DanglingVm {
                    role: role.clone(),
                    node: *node,
                });
            }
            let known = spec
                .roles
                .iter()
                .any(|r| r.scope == RoleScope::Controller && r.name == *role);
            if !known {
                return Err(TopologyError::UnknownRole { role: role.clone() });
            }
        }
        Ok(())
    }

    /// A multi-line ASCII rendering of the layout (regenerates Fig. 2).
    #[must_use]
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} topology:", self.name);
        for rack in 0..self.rack_count {
            let _ = writeln!(out, "  rack R{}", rack + 1);
            for (h, host_rack) in self.hosts.iter().enumerate() {
                if host_rack.0 != rack {
                    continue;
                }
                let _ = writeln!(out, "    host H{}", h + 1);
                for (v, vm_host) in self.vms.iter().enumerate() {
                    if vm_host.0 != h {
                        continue;
                    }
                    let roles: Vec<String> = self
                        .assignments
                        .iter()
                        .filter(|(_, vm)| vm.0 == v)
                        .map(|((role, node), _)| format!("{}{}", role, node + 1))
                        .collect();
                    let _ = writeln!(out, "      vm V{}: {}", v + 1, roles.join(" "));
                }
            }
        }
        out
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Validation errors for a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A `(role, node)` pair has no VM.
    MissingAssignment {
        /// The unassigned role.
        role: String,
        /// The unassigned node index.
        node: u32,
    },
    /// An assignment references a VM that does not exist.
    DanglingVm {
        /// The role of the dangling assignment.
        role: String,
        /// The node of the dangling assignment.
        node: u32,
    },
    /// An assignment references a role the spec does not define.
    UnknownRole {
        /// The unknown role name.
        role: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::MissingAssignment { role, node } => {
                write!(f, "role {role:?} node {node} has no VM assignment")
            }
            TopologyError::DanglingVm { role, node } => {
                write!(f, "role {role:?} node {node} is assigned to a missing VM")
            }
            TopologyError::UnknownRole { role } => {
                write!(f, "assignment references unknown role {role:?}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ControllerSpec;

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    #[test]
    fn small_matches_fig_2() {
        let s = spec();
        let t = Topology::small(&s);
        assert_eq!(t.rack_count(), 1);
        assert_eq!(t.host_count(), 3);
        assert_eq!(t.vm_count(), 3);
        assert!(t.validate(&s).is_ok());
        // All four roles of node 0 share VM 0.
        let vm = t.vm_of("Config", 0).unwrap();
        assert_eq!(t.vm_of("Database", 0).unwrap(), vm);
        assert_ne!(t.vm_of("Config", 1).unwrap(), vm);
    }

    #[test]
    fn medium_matches_fig_2() {
        let s = spec();
        let t = Topology::medium(&s);
        assert_eq!(t.rack_count(), 2);
        assert_eq!(t.host_count(), 3);
        assert_eq!(t.vm_count(), 12);
        assert!(t.validate(&s).is_ok());
        // Node 0's roles are on distinct VMs but the same host.
        let vm_g = t.vm_of("Config", 0).unwrap();
        let vm_d = t.vm_of("Database", 0).unwrap();
        assert_ne!(vm_g, vm_d);
        assert_eq!(t.host_of(vm_g), t.host_of(vm_d));
        // Hosts 1-2 in rack 1, host 3 in rack 2.
        assert_eq!(t.rack_of(HostId(0)), t.rack_of(HostId(1)));
        assert_ne!(t.rack_of(HostId(0)), t.rack_of(HostId(2)));
    }

    #[test]
    fn large_matches_fig_2() {
        let s = spec();
        let t = Topology::large(&s);
        assert_eq!(t.rack_count(), 3);
        assert_eq!(t.host_count(), 12);
        assert_eq!(t.vm_count(), 12);
        assert!(t.validate(&s).is_ok());
        // Every VM has its own host; node 0's hosts share rack 0.
        let vm_g = t.vm_of("Config", 0).unwrap();
        let vm_d = t.vm_of("Database", 0).unwrap();
        assert_ne!(t.host_of(vm_g), t.host_of(vm_d));
        assert_eq!(t.rack_of(t.host_of(vm_g)), t.rack_of(t.host_of(vm_d)));
        assert_ne!(
            t.rack_of(t.host_of(t.vm_of("Config", 0).unwrap())),
            t.rack_of(t.host_of(t.vm_of("Config", 1).unwrap()))
        );
    }

    #[test]
    fn small_three_racks_layout() {
        let s = spec();
        let t = Topology::small_three_racks(&s);
        assert_eq!(t.rack_count(), 3);
        assert_eq!(t.host_count(), 3);
        assert_eq!(t.vm_count(), 3);
        assert!(t.validate(&s).is_ok());
        // One node per rack; all roles of a node share a VM.
        let vm = t.vm_of("Config", 0).unwrap();
        assert_eq!(t.vm_of("Database", 0).unwrap(), vm);
        assert_ne!(
            t.rack_of(t.host_of(t.vm_of("Config", 0).unwrap())),
            t.rack_of(t.host_of(t.vm_of("Config", 1).unwrap()))
        );
    }

    #[test]
    fn validate_catches_missing_assignment() {
        let s = spec();
        let mut t = Topology::new("custom");
        let rack = t.add_rack();
        let host = t.add_host(rack);
        let vm = t.add_vm(host);
        t.assign(vm, "Config", 0);
        assert!(matches!(
            t.validate(&s),
            Err(TopologyError::MissingAssignment { .. })
        ));
    }

    #[test]
    fn validate_catches_unknown_role() {
        let s = spec();
        let mut t = Topology::small(&s);
        let vm = t.vm_of("Config", 0).unwrap();
        t.assign(vm, "Nonexistent", 0);
        assert!(matches!(
            t.validate(&s),
            Err(TopologyError::UnknownRole { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn add_host_checks_rack() {
        let mut t = Topology::new("x");
        let _ = t.add_host(RackId(0));
    }

    #[test]
    fn describe_renders_layout() {
        let s = spec();
        let text = Topology::small(&s).describe();
        assert!(text.contains("rack R1"));
        assert!(text.contains("host H3"));
        assert!(text.contains("Config1"));
        assert!(text.contains("Database3"));
        // Display delegates to describe.
        assert_eq!(Topology::small(&s).to_string(), text);
    }

    #[test]
    fn json_round_trip() {
        let s = spec();
        let t = Topology::medium(&s);
        let json = sdnav_json::to_string(&t);
        let back: Topology = sdnav_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        // Assignments serialize as an entry list.
        assert!(json.contains(r#""role":"Config""#));
    }
}
