//! Parametric failure-mode and availability models for distributed SDN
//! controllers.
//!
//! This crate is a faithful, extensible implementation of the modeling
//! framework of *"Distributed Software Defined Networking Controller Failure
//! Mode and Availability Analysis"* (Reeser, Tesseyre & Callaway, ISPASS
//! 2019). The paper's thesis is that a distributed SDN controller can be
//! fully encapsulated — for availability purposes — in two tables:
//!
//! * which processes exist in each role and how they restart
//!   (auto-restarted by a *supervisor* vs manual; the paper's Table II), and
//! * how many instances of each process a plane needs
//!   (`m`-of-`n` quorum requirements for the SDN control plane and the
//!   per-host vRouter data plane; the paper's Table III).
//!
//! Those tables are *data* here: [`ControllerSpec`] holds them, the bundled
//! [`ControllerSpec::opencontrail_3x`] reproduces the paper's OpenContrail
//! 3.x reference exactly, and any other controller (ONOS, ODL, …) can be
//! modeled by building a different spec.
//!
//! On top of the spec sit:
//!
//! * [`Topology`] — physical deployment layouts (racks → hosts → VMs → role
//!   assignments), with the paper's Small / Medium / Large references
//!   (§IV, Fig. 2) as constructors;
//! * [`HwModel`] — the HW-centric analysis of §V (Eqs. 1–8): roles as
//!   atomic elements, exact availability for *any* topology via conditional
//!   enumeration over shared hardware;
//! * [`SwModel`] — the SW-centric analysis of §VI (Eqs. 9–15):
//!   process-level quorums, supervisor-required vs not-required scenarios,
//!   and separate control-plane (CP) and per-host data-plane (DP)
//!   availabilities;
//! * [`paper`] — direct transcriptions of the paper's closed-form equations
//!   for cross-validation against the general evaluator;
//! * [`approx`] — the paper's conclusions-section approximations;
//! * [`sweep`] — the parameter sweeps behind Figs. 3, 4 and 5.
//!
//! # Quickstart
//!
//! ```
//! use sdnav_core::{ControllerSpec, HwModel, HwParams, Topology};
//!
//! let spec = ControllerSpec::opencontrail_3x();
//! let params = HwParams::paper_defaults();
//!
//! let small = HwModel::try_new(&spec, &Topology::small(&spec), params).expect("valid HW model").availability();
//! let large = HwModel::try_new(&spec, &Topology::large(&spec), params).expect("valid HW model").availability();
//!
//! // Fig. 3: at the default parameters the Large topology reaches ~6.5
//! // nines while Small stays just below 5 nines.
//! assert!(small > 0.99998 && small < 0.99999);
//! assert!(large > 0.999999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod approx;
pub mod consensus;
pub mod error;
mod eval;
mod hw;
pub mod paper;
mod params;
pub mod planner;
pub mod sensitivity;
mod spec;
pub mod state;
mod sw;
pub mod sweep;
mod topology;
mod units;

pub use consensus::{ConsensusError, ConsensusSpec, ElectionLatency, FaultMix};
pub use error::{ErrorKind, SdnavError};
pub use hw::HwModel;
pub use params::{HwParams, ParamError, ProcessParams, SwParams};
pub use spec::{
    ControllerSpec, Plane, ProcessSpec, QuorumCount, Requirement, RestartCount, RestartMode,
    RoleScope, RoleSpec, SpecError,
};
pub use state::{ModelState, PatchEffect};
pub use sw::{Scenario, SwModel};
pub use topology::{HostId, RackId, Topology, TopologyError, VmId};
pub use units::{Quantity, RatePair, SpecRates, Unit, FIT_SCALE};
