//! Direct transcriptions of the paper's closed-form equations.
//!
//! These are *independent implementations* of Eqs. (3), (6), (8)
//! (HW-centric, §V) and Eqs. (9)–(15) (SW-centric, §VI), written exactly as
//! the paper states them, with the four-role OpenContrail structure. They
//! exist to cross-validate the general conditional-enumeration evaluator
//! behind [`crate::HwModel`] and [`crate::SwModel`]:
//!
//! * Small and Large formulas are exact, so the general evaluator must
//!   agree to machine precision;
//! * the Medium Eq. (6) embeds a first-order simplification, so the
//!   evaluator agrees only to ~1e-9 (quantified in the `approx_validation`
//!   experiment).
//!
//! Per the paper's §VI.A text (and DESIGN.md), process availabilities are
//! per-process: auto-restarted processes use `A`, manually restarted ones
//! use `A_S`. The `m`-of-`n` helper `A_{m/n}(α)` is Eq. (1), provided by
//! [`sdnav_blocks::kofn::k_of_n`].

use sdnav_blocks::kofn::{binomial, k_of_n};

use crate::{ControllerSpec, HwParams, Plane, Scenario, SwParams};

/// Eq. (3): Small-topology HW-centric controller availability, `α = A_C`.
#[must_use]
pub fn hw_small_eq3(p: HwParams) -> f64 {
    let a = p.a_c;
    let a13 = k_of_n(1, 3, a);
    let a23 = k_of_n(2, 3, a);
    let a12 = k_of_n(1, 2, a);
    let a22 = k_of_n(2, 2, a);
    let vh = p.a_v * p.a_h;
    (a13.powi(3) * a23 * vh + 3.0 * a12.powi(3) * a22 * (1.0 - vh))
        * p.a_v.powi(2)
        * p.a_h.powi(2)
        * p.a_r
}

/// Eq. (6) *as printed*: Medium-topology HW-centric controller
/// availability, `α = A_C · A_V`.
///
/// **The printed equation contains a typo**: its first bracket term
/// `A_{1/3}³·A_{2/3}·A_H` is missing a factor `A_R` (the exact derivation
/// from the paper's own Eqs. 4–5 yields `A_{1/3}³·A_{2/3}·A_H·A_R` — both
/// bracket terms carry one power of `A_R` beyond the trailing `A_H²·A_R`).
/// As printed, the formula evaluates to ≈ 0.9999990 at the defaults, while
/// the paper's own Fig. 3 reports 0.999989 for Medium. See
/// [`hw_medium_eq6_corrected`] and the `approx_validation` experiment.
#[must_use]
pub fn hw_medium_eq6_printed(p: HwParams) -> f64 {
    let a = p.a_c * p.a_v;
    let a13 = k_of_n(1, 3, a);
    let a23 = k_of_n(2, 3, a);
    let a12 = k_of_n(1, 2, a);
    let a22 = k_of_n(2, 2, a);
    (a13.powi(3) * a23 * p.a_h + a12.powi(3) * a22 * (4.0 - 3.0 * p.a_h - p.a_r))
        * p.a_h.powi(2)
        * p.a_r
}

/// Eq. (6) with the missing `A_R` restored (see
/// [`hw_medium_eq6_printed`]): first-order-accurate in `(1−A_R)`, matching
/// the exact Medium expression to ~1e-9 at the paper's parameters.
#[must_use]
pub fn hw_medium_eq6_corrected(p: HwParams) -> f64 {
    let a = p.a_c * p.a_v;
    let a13 = k_of_n(1, 3, a);
    let a23 = k_of_n(2, 3, a);
    let a12 = k_of_n(1, 2, a);
    let a22 = k_of_n(2, 2, a);
    (a13.powi(3) * a23 * p.a_h * p.a_r + a12.powi(3) * a22 * (4.0 - 3.0 * p.a_h - p.a_r))
        * p.a_h.powi(2)
        * p.a_r
}

/// The exact Medium-topology expression the paper derives *before*
/// simplifying to Eq. (6) (its Eqs. 4–5 combined without dropping
/// higher-order rack terms). Used to quantify Eq. (6)'s simplification gap.
#[must_use]
pub fn hw_medium_exact(p: HwParams) -> f64 {
    let a = p.a_c * p.a_v;
    let x = k_of_n(1, 3, a).powi(3) * k_of_n(2, 3, a);
    let y = k_of_n(1, 2, a).powi(3) * k_of_n(2, 2, a);
    let ah = p.a_h;
    let ar = p.a_r;
    // A = A_R²·[X·A_H³ + 3Y·A_H²(1−A_H)] + A_R(1−A_R)·Y·A_H².
    ar * ar * (x * ah.powi(3) + 3.0 * y * ah.powi(2) * (1.0 - ah))
        + ar * (1.0 - ar) * y * ah.powi(2)
}

/// Eq. (8): Large-topology HW-centric controller availability,
/// `α = A_C · A_V · A_H`.
#[must_use]
pub fn hw_large_eq8(p: HwParams) -> f64 {
    let a = p.a_c * p.a_v * p.a_h;
    let a13 = k_of_n(1, 3, a);
    let a23 = k_of_n(2, 3, a);
    let a12 = k_of_n(1, 2, a);
    let a22 = k_of_n(2, 2, a);
    (a13.powi(3) * a23 * p.a_r + a12.powi(3) * a22 * 3.0 * (1.0 - p.a_r)) * p.a_r.powi(2)
}

/// One role's quorum requirements for a plane: `(m, instance availability)`
/// pairs (Table III rows resolved against Table II restart modes).
fn role_requirements(
    spec: &ControllerSpec,
    plane: Plane,
    params: &SwParams,
) -> Vec<Vec<(u32, f64)>> {
    let reqs = spec.requirements(plane);
    spec.controller_roles()
        .map(|(ri, _)| {
            reqs.iter()
                .filter(|r| r.role_index == ri)
                .map(|r| (r.required, r.instance_availability(&params.process)))
                .collect()
        })
        .collect()
}

/// Functional availability of one role given `x` candidate node slots and
/// an optional per-node conditioning probability `rho` (Eqs. 12–14): the
/// sum over `g` of `C(x,g)·ρ^g(1−ρ)^{x−g} · Π_reqs A_{m/g}`.
/// With `rho = None` the node slots are certain (Eq. 10 / 13 without the
/// ρ-weighting).
fn role_term(x: u32, rho: Option<f64>, reqs: &[(u32, f64)]) -> f64 {
    if reqs.is_empty() {
        return 1.0;
    }
    match rho {
        None => reqs.iter().map(|&(m, a)| k_of_n(m, x, a)).product(),
        Some(rho) => (0..=x)
            .map(|g| {
                let weight = binomial(x, g) * rho.powi(g as i32) * (1.0 - rho).powi((x - g) as i32);
                let avail: f64 = reqs.iter().map(|&(m, a)| k_of_n(m, g, a)).product();
                weight * avail
            })
            .sum(),
    }
}

/// Conditional functional availability with `x` blocks up: the product over
/// roles of [`role_term`] (Eq. 10 for scenario 1, Eqs. 12–14 for the
/// ρ-conditioned cases).
fn functional(x: u32, rho: Option<f64>, role_reqs: &[Vec<(u32, f64)>]) -> f64 {
    role_reqs
        .iter()
        .map(|reqs| role_term(x, rho, reqs))
        .product()
}

/// Eqs. (9)–(14): Small-topology SW-centric plane availability.
///
/// Scenario 1 is Eq. (11); scenario 2 adds the supervisor conditioning of
/// Eqs. (12)–(14) with `ρ = A_S`.
///
/// The paper writes only the "3 blocks up" and "2 blocks up" terms because
/// the remaining terms vanish for the control plane (the Database role's
/// 2-of-`g` quorum zeroes them). For the data plane the "1 block up" term
/// is tiny but nonzero, so this transcription sums the full conditioning
/// (the extra terms are exactly zero in the CP case, keeping the CP result
/// identical to the paper's two-term form).
#[must_use]
pub fn sw_small(spec: &ControllerSpec, params: SwParams, scenario: Scenario, plane: Plane) -> f64 {
    let role_reqs = role_requirements(spec, plane, &params);
    let rho = match scenario {
        Scenario::SupervisorNotRequired => None,
        Scenario::SupervisorRequired => Some(params.process.manual),
    };
    let n = spec.nodes;
    let vh = params.a_v * params.a_h;
    let total: f64 = (0..=n)
        .map(|x| {
            let weight = binomial(n, x) * vh.powi(x as i32) * (1.0 - vh).powi((n - x) as i32);
            weight * functional(x, rho, &role_reqs)
        })
        .sum();
    total * params.a_r
}

/// Eq. (15) with Eqs. (12)–(14): Large-topology SW-centric plane
/// availability. Scenario 1 uses `ρ = A_V·A_H`; scenario 2 uses
/// `ρ = A_S·A_V·A_H`. As in [`sw_small`], the full rack conditioning is
/// summed; the terms the paper omits are zero for the control plane.
#[must_use]
pub fn sw_large(spec: &ControllerSpec, params: SwParams, scenario: Scenario, plane: Plane) -> f64 {
    let role_reqs = role_requirements(spec, plane, &params);
    let rho = match scenario {
        Scenario::SupervisorNotRequired => params.a_v * params.a_h,
        Scenario::SupervisorRequired => params.process.manual * params.a_v * params.a_h,
    };
    let n = spec.nodes;
    (0..=n)
        .map(|x| {
            let weight = binomial(n, x)
                * params.a_r.powi(x as i32)
                * (1.0 - params.a_r).powi((n - x) as i32);
            weight * functional(x, Some(rho), &role_reqs)
        })
        .sum()
}

/// The local (per-host vRouter) data-plane contribution:
/// `A_LDP = A^K` (scenario 1) or `A^K · A_S` (scenario 2).
#[must_use]
pub fn sw_local_dp(spec: &ControllerSpec, params: SwParams, scenario: Scenario) -> f64 {
    let mut a: f64 = spec
        .local_dp_processes()
        .iter()
        .map(|p| params.process.for_spec(p))
        .product();
    if scenario == Scenario::SupervisorRequired && spec.per_host_has_supervisor() {
        a *= params.process.manual;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HwModel, SwModel, Topology};

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    #[test]
    fn eq3_matches_general_evaluator() {
        let s = spec();
        let topo = Topology::small(&s);
        for a_c in [0.999, 0.9995, 0.99999] {
            let p = HwParams::paper_defaults().with_a_c(a_c);
            let general = HwModel::try_new(&s, &topo, p)
                .expect("valid HW model")
                .availability();
            assert!((hw_small_eq3(p) - general).abs() < 1e-13, "a_c={a_c}");
        }
    }

    #[test]
    fn eq8_matches_general_evaluator() {
        let s = spec();
        let topo = Topology::large(&s);
        for a_c in [0.999, 0.9995, 0.99999] {
            let p = HwParams::paper_defaults().with_a_c(a_c);
            let general = HwModel::try_new(&s, &topo, p)
                .expect("valid HW model")
                .availability();
            assert!((hw_large_eq8(p) - general).abs() < 1e-13, "a_c={a_c}");
        }
    }

    #[test]
    fn medium_exact_matches_general_evaluator() {
        let s = spec();
        let topo = Topology::medium(&s);
        let p = HwParams::paper_defaults();
        let general = HwModel::try_new(&s, &topo, p)
            .expect("valid HW model")
            .availability();
        assert!((hw_medium_exact(p) - general).abs() < 1e-13);
    }

    #[test]
    fn eq6_corrected_is_close_to_exact() {
        let p = HwParams::paper_defaults();
        let gap = (hw_medium_eq6_corrected(p) - hw_medium_exact(p)).abs();
        assert!(gap < 1e-8, "gap={gap:e}");
    }

    #[test]
    fn eq6_printed_typo_is_exactly_a_missing_rack_factor() {
        // printed − corrected = X·A_H·(1 − A_R)·A_H²·A_R ≈ 1e-5 at defaults.
        let p = HwParams::paper_defaults();
        let printed = hw_medium_eq6_printed(p);
        let corrected = hw_medium_eq6_corrected(p);
        let a = p.a_c * p.a_v;
        let x = k_of_n(1, 3, a).powi(3) * k_of_n(2, 3, a);
        let expected_gap = x * p.a_h * (1.0 - p.a_r) * p.a_h.powi(2) * p.a_r;
        assert!((printed - corrected - expected_gap).abs() < 1e-15);
        // The typo is material: it shifts Medium onto the Large curve.
        assert!(printed - corrected > 9e-6);
    }

    #[test]
    fn sw_small_matches_general_evaluator() {
        let s = spec();
        let topo = Topology::small(&s);
        let params = SwParams::paper_defaults();
        for scenario in [
            Scenario::SupervisorNotRequired,
            Scenario::SupervisorRequired,
        ] {
            let model = SwModel::try_new(&s, &topo, params, scenario).expect("valid SW model");
            for plane in [Plane::ControlPlane, Plane::DataPlane] {
                let closed = sw_small(&s, params, scenario, plane);
                let general = match plane {
                    Plane::ControlPlane => model.cp_availability(),
                    Plane::DataPlane => model.shared_dp_availability(),
                };
                assert!(
                    (closed - general).abs() < 1e-12,
                    "{scenario:?} {plane:?}: closed={closed:.12} general={general:.12}"
                );
            }
        }
    }

    #[test]
    fn sw_large_matches_general_evaluator() {
        let s = spec();
        let topo = Topology::large(&s);
        let params = SwParams::paper_defaults();
        for scenario in [
            Scenario::SupervisorNotRequired,
            Scenario::SupervisorRequired,
        ] {
            let model = SwModel::try_new(&s, &topo, params, scenario).expect("valid SW model");
            for plane in [Plane::ControlPlane, Plane::DataPlane] {
                let closed = sw_large(&s, params, scenario, plane);
                let general = match plane {
                    Plane::ControlPlane => model.cp_availability(),
                    Plane::DataPlane => model.shared_dp_availability(),
                };
                assert!(
                    (closed - general).abs() < 1e-12,
                    "{scenario:?} {plane:?}: closed={closed:.12} general={general:.12}"
                );
            }
        }
    }

    #[test]
    fn sw_local_dp_matches_general_evaluator() {
        let s = spec();
        let topo = Topology::small(&s);
        let params = SwParams::paper_defaults();
        for scenario in [
            Scenario::SupervisorNotRequired,
            Scenario::SupervisorRequired,
        ] {
            let model = SwModel::try_new(&s, &topo, params, scenario).expect("valid SW model");
            assert!(
                (sw_local_dp(&s, params, scenario) - model.local_dp_availability()).abs() < 1e-15
            );
        }
    }

    #[test]
    fn uniform_alpha_misses_paper_numbers() {
        // DESIGN.md ablation 2: reading Eq. (11) literally with a single
        // α = A for every process does NOT reproduce the paper's quoted
        // 5.9 m/y — demonstrating the per-process interpretation is the
        // intended one.
        let s = spec();
        let mut params = SwParams::paper_defaults();
        params.process.manual = params.process.auto; // uniform α = A
        let a = sw_small(
            &s,
            params,
            Scenario::SupervisorNotRequired,
            Plane::ControlPlane,
        );
        let dt = (1.0 - a) * 525_960.0;
        // Uniform α under-predicts: ~5.3 m/y (rack-dominated) instead of 5.9.
        assert!(dt < 5.6, "uniform-α downtime {dt:.2} should be < 5.6 m/y");
    }

    #[test]
    fn role_term_degenerate_cases() {
        assert_eq!(role_term(3, None, &[]), 1.0);
        assert_eq!(role_term(0, None, &[(1, 0.9)]), 0.0);
        // ρ-conditioned with zero requirement slots.
        assert_eq!(role_term(0, Some(0.5), &[(1, 0.9)]), 0.0);
    }
}
