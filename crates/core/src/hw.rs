//! HW-centric availability analysis (§V): roles as atomic elements.

use sdnav_blocks::kofn::k_of_n_heterogeneous;

use crate::eval::Enumerator;
use crate::{ControllerSpec, HwParams, Topology};

/// The paper's HW-centric controller availability model.
///
/// Each controller role instance is an atomic element with availability
/// `A_C`; a role is available when its `m`-of-`n` node quorum is met
/// (`1`-of-`3` for Config/Control/Analytics, `2`-of-`3` for Database,
/// derived from the spec); the controller is available when every role is.
/// Shared racks, hosts, and VMs correlate the role instances; the model
/// computes the *exact* availability for any [`Topology`] by conditional
/// enumeration, generalizing the paper's Eqs. (2)–(8).
///
/// ```
/// use sdnav_core::{ControllerSpec, HwModel, HwParams, Topology};
///
/// let spec = ControllerSpec::opencontrail_3x();
/// let model = HwModel::try_new(&spec, &Topology::small(&spec), HwParams::paper_defaults()).expect("valid HW model");
/// // §V.D: "with role availability A_C = 0.9995, Controller availability
/// // is 0.999989 for the Small ... topologies".
/// assert!((model.availability() - 0.999989).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct HwModel<'a> {
    spec: &'a ControllerSpec,
    params: HwParams,
    enumerator: Enumerator,
}

impl<'a> HwModel<'a> {
    /// Builds the model, validating the parameters first.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ParamError`] naming the first out-of-range
    /// availability. (Topology/spec mismatches still panic — run
    /// [`Topology::validate`] first for a proper error.)
    pub fn try_new(
        spec: &'a ControllerSpec,
        topology: &Topology,
        params: HwParams,
    ) -> Result<Self, crate::ParamError> {
        params.try_validate()?;
        let enumerator = Enumerator::new(spec, topology, params.a_v, params.a_h, params.a_r);
        Ok(HwModel {
            spec,
            params,
            enumerator,
        })
    }

    /// Exact controller availability.
    #[must_use]
    pub fn availability(&self) -> f64 {
        let nodes = self.enumerator.nodes();
        // Per covered role: the atomic-role quorum m.
        let quorums: Vec<u32> = self
            .enumerator
            .role_indices()
            .iter()
            .map(|&ri| self.spec.roles[ri].hw_quorum())
            .collect();
        let a_c = self.params.a_c;
        let mut instance = Vec::with_capacity(nodes);
        self.enumerator.evaluate(|q| {
            let mut avail = 1.0;
            for (r, &m) in quorums.iter().enumerate() {
                if m == 0 {
                    continue;
                }
                instance.clear();
                instance.extend(q[r * nodes..(r + 1) * nodes].iter().map(|&p| p * a_c));
                avail *= k_of_n_heterogeneous(m as usize, &instance);
                if avail == 0.0 {
                    break;
                }
            }
            avail
        })
    }

    /// Controller unavailability (`1 −` [`HwModel::availability`]).
    #[must_use]
    pub fn unavailability(&self) -> f64 {
        1.0 - self.availability()
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> HwParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    fn defaults() -> HwParams {
        HwParams::paper_defaults()
    }

    #[test]
    fn try_new_rejects_bad_params_and_accepts_defaults() {
        let s = spec();
        let topo = Topology::small(&s);
        let bad = HwParams {
            a_c: 1.5,
            ..defaults()
        };
        let err = HwModel::try_new(&s, &topo, bad).unwrap_err();
        assert_eq!(err.field, "a_c");
        let model = HwModel::try_new(&s, &topo, defaults()).unwrap();
        assert!(model.availability() > 0.9999);
    }

    #[test]
    fn fig3_quoted_small_availability() {
        // §V.D: A_S = 0.999989 at A_C = 0.9995.
        let s = spec();
        let a = HwModel::try_new(&s, &Topology::small(&s), defaults())
            .expect("valid HW model")
            .availability();
        assert!((a - 0.999989).abs() < 1e-6, "got {a:.9}");
    }

    #[test]
    fn fig3_quoted_medium_availability() {
        // §V.D: Medium matches Small at 0.999989 (to printed precision).
        let s = spec();
        let a = HwModel::try_new(&s, &Topology::medium(&s), defaults())
            .expect("valid HW model")
            .availability();
        assert!((a - 0.999989).abs() < 1e-6, "got {a:.9}");
    }

    #[test]
    fn fig3_quoted_large_availability() {
        // §V.D: A_L = 0.9999990 at A_C = 0.9995.
        let s = spec();
        let a = HwModel::try_new(&s, &Topology::large(&s), defaults())
            .expect("valid HW model")
            .availability();
        assert!((a - 0.9999990).abs() < 2e-7, "got {a:.9}");
    }

    #[test]
    fn exact_matches_paper_eq3_for_small() {
        // Eq. (3) is exact, so the general enumerator must agree closely.
        let s = spec();
        for a_c in [0.999, 0.9995, 0.9999] {
            let p = defaults().with_a_c(a_c);
            let exact = HwModel::try_new(&s, &Topology::small(&s), p)
                .expect("valid HW model")
                .availability();
            let closed = paper::hw_small_eq3(p);
            assert!(
                (exact - closed).abs() < 1e-12,
                "a_c={a_c}: exact={exact:.12} eq3={closed:.12}"
            );
        }
    }

    #[test]
    fn exact_matches_paper_eq8_for_large() {
        let s = spec();
        for a_c in [0.999, 0.9995, 0.9999] {
            let p = defaults().with_a_c(a_c);
            let exact = HwModel::try_new(&s, &Topology::large(&s), p)
                .expect("valid HW model")
                .availability();
            let closed = paper::hw_large_eq8(p);
            assert!(
                (exact - closed).abs() < 1e-12,
                "a_c={a_c}: exact={exact:.12} eq8={closed:.12}"
            );
        }
    }

    #[test]
    fn paper_eq6_corrected_medium_is_a_close_approximation() {
        // Eq. (6) with its typo fixed (see `paper::hw_medium_eq6_printed`)
        // simplifies the exact Medium expression; the gap must be far below
        // the quantities of interest (< 1e-8) but may be nonzero.
        let s = spec();
        let p = defaults();
        let exact = HwModel::try_new(&s, &Topology::medium(&s), p)
            .expect("valid HW model")
            .availability();
        let closed = paper::hw_medium_eq6_corrected(p);
        assert!(
            (exact - closed).abs() < 1e-8,
            "exact={exact:.12} eq6={closed:.12}"
        );
    }

    #[test]
    fn two_racks_slightly_worse_than_one() {
        // §V.D: "adding a second rack (S→M) actually slightly reduces
        // availability".
        let s = spec();
        let small = HwModel::try_new(&s, &Topology::small(&s), defaults())
            .expect("valid HW model")
            .availability();
        let medium = HwModel::try_new(&s, &Topology::medium(&s), defaults())
            .expect("valid HW model")
            .availability();
        assert!(medium < small, "small={small:.9} medium={medium:.9}");
        // ... but only slightly.
        assert!(small - medium < 1e-5);
    }

    #[test]
    fn three_racks_beat_one() {
        let s = spec();
        let small = HwModel::try_new(&s, &Topology::small(&s), defaults())
            .expect("valid HW model")
            .availability();
        let large = HwModel::try_new(&s, &Topology::large(&s), defaults())
            .expect("valid HW model")
            .availability();
        assert!(large > small);
    }

    #[test]
    fn third_rack_saves_about_five_minutes_per_year() {
        // §V.D: "Controller availability increases from 0.999989 to
        // 0.9999990 (a savings of 5 minutes/year in downtime)".
        let s = spec();
        let small = HwModel::try_new(&s, &Topology::small(&s), defaults())
            .expect("valid HW model")
            .availability();
        let large = HwModel::try_new(&s, &Topology::large(&s), defaults())
            .expect("valid HW model")
            .availability();
        let minutes_saved = (large - small) * 525_960.0;
        assert!(
            (minutes_saved - 5.0).abs() < 0.5,
            "saved {minutes_saved:.2} m/y"
        );
    }

    #[test]
    fn availability_monotone_in_role_availability() {
        let s = spec();
        let topo = Topology::small(&s);
        let mut last = 0.0;
        for a_c in [0.999, 0.9993, 0.9996, 0.9999] {
            let a = HwModel::try_new(&s, &topo, defaults().with_a_c(a_c))
                .expect("valid HW model")
                .availability();
            assert!(a >= last);
            last = a;
        }
    }

    #[test]
    fn perfect_hardware_leaves_only_role_failures() {
        let s = spec();
        let p = HwParams {
            a_c: 0.9995,
            a_v: 1.0,
            a_h: 1.0,
            a_r: 1.0,
        };
        let a = HwModel::try_new(&s, &Topology::large(&s), p)
            .expect("valid HW model")
            .availability();
        // A = A_{1/3}³ · A_{2/3} at α = 0.9995.
        let a13 = sdnav_blocks::kofn::k_of_n(1, 3, 0.9995);
        let a23 = sdnav_blocks::kofn::k_of_n(2, 3, 0.9995);
        let expected = a13.powi(3) * a23;
        assert!((a - expected).abs() < 1e-12);
    }

    #[test]
    fn small_equals_large_when_racks_perfect() {
        // With A_R = 1, the Small and Large topologies differ only in rack
        // exposure... and in VM/host sharing, which the paper shows is
        // availability-neutral. Verify the near-equality quantitatively.
        let s = spec();
        let p = HwParams {
            a_r: 1.0,
            ..defaults()
        };
        let small = HwModel::try_new(&s, &Topology::small(&s), p)
            .expect("valid HW model")
            .availability();
        let large = HwModel::try_new(&s, &Topology::large(&s), p)
            .expect("valid HW model")
            .availability();
        assert!(
            (small - large).abs() < 1e-7,
            "small={small:.10} large={large:.10}"
        );
    }

    #[test]
    fn unavailability_complements() {
        let s = spec();
        let m = HwModel::try_new(&s, &Topology::small(&s), defaults()).expect("valid HW model");
        assert!((m.availability() + m.unavailability() - 1.0).abs() < 1e-15);
        assert_eq!(m.params(), defaults());
    }
}
