//! Property-based tests for the availability models.

use proptest::prelude::*;

use sdnav_core::{ControllerSpec, HwModel, HwParams, Plane, Scenario, SwModel, SwParams, Topology};

fn high_availability() -> impl Strategy<Value = f64> {
    0.99f64..=1.0
}

fn arb_hw_params() -> impl Strategy<Value = HwParams> {
    (
        high_availability(),
        high_availability(),
        high_availability(),
        high_availability(),
    )
        .prop_map(|(a_c, a_v, a_h, a_r)| HwParams { a_c, a_v, a_h, a_r })
}

fn arb_sw_params() -> impl Strategy<Value = SwParams> {
    (
        high_availability(),
        0.0f64..=0.01,
        high_availability(),
        high_availability(),
        high_availability(),
    )
        .prop_map(|(auto, manual_penalty, a_v, a_h, a_r)| SwParams {
            process: sdnav_core::ProcessParams {
                auto,
                // Manual restart is never better than auto restart.
                manual: (auto - manual_penalty).max(0.0),
            },
            a_v,
            a_h,
            a_r,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hw_availability_in_unit_interval(p in arb_hw_params()) {
        let spec = ControllerSpec::opencontrail_3x();
        for topo in [Topology::small(&spec), Topology::medium(&spec), Topology::large(&spec)] {
            let a = HwModel::try_new(&spec, &topo, p).unwrap().availability();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&a), "{}: {}", topo.name(), a);
        }
    }

    #[test]
    fn hw_large_beats_small_when_racks_dominate(
        a_c in 0.99f64..=1.0,
        a_v in 0.99995f64..=1.0,
        a_h in 0.99995f64..=1.0,
        a_r in 0.99f64..=0.9999,
    ) {
        // In the paper's regime — rack risk well above VM/host risk — the
        // third rack's quorum protection outweighs the (second-order)
        // correlation penalty of separating roles onto more hardware.
        // (This is NOT a theorem for arbitrary parameters: with
        // near-perfect racks and weak VMs/hosts, Small's correlated
        // failures beat Large; see `vm_host_separation_never_helps`.)
        let p = HwParams { a_c, a_v, a_h, a_r };
        let spec = ControllerSpec::opencontrail_3x();
        let small = HwModel::try_new(&spec, &Topology::small(&spec), p).unwrap().availability();
        let medium = HwModel::try_new(&spec, &Topology::medium(&spec), p).unwrap().availability();
        let large = HwModel::try_new(&spec, &Topology::large(&spec), p).unwrap().availability();
        prop_assert!(large >= small - 1e-12);
        prop_assert!(large >= medium - 1e-12);
    }

    #[test]
    fn vm_host_separation_never_helps(p in arb_hw_params()) {
        // §V.D / §VII: "separation of roles onto separate VMs does not
        // improve availability" — with racks removed from the picture
        // (A_R = 1), the fully separated Large layout is never *better*
        // than the fully shared Small layout: per-node correlation
        // concentrates failures onto nodes the quorum already tolerates.
        let p = HwParams { a_r: 1.0, ..p };
        let spec = ControllerSpec::opencontrail_3x();
        let small = HwModel::try_new(&spec, &Topology::small(&spec), p).unwrap().availability();
        let large = HwModel::try_new(&spec, &Topology::large(&spec), p).unwrap().availability();
        prop_assert!(large <= small + 1e-12, "small={} large={}", small, large);
    }

    #[test]
    fn hw_one_rack_or_three_not_two(p in arb_hw_params()) {
        // The paper's headline conclusion holds across the parameter space:
        // Medium (two racks) never beats Small (one rack).
        let spec = ControllerSpec::opencontrail_3x();
        let small = HwModel::try_new(&spec, &Topology::small(&spec), p).unwrap().availability();
        let medium = HwModel::try_new(&spec, &Topology::medium(&spec), p).unwrap().availability();
        prop_assert!(medium <= small + 1e-12, "small={} medium={}", small, medium);
    }

    #[test]
    fn hw_monotone_in_each_parameter(p in arb_hw_params(), bump in 0.0f64..0.005) {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::medium(&spec);
        let base = HwModel::try_new(&spec, &topo, p).unwrap().availability();
        for which in 0..4 {
            let mut q = p;
            match which {
                0 => q.a_c = (q.a_c + bump).min(1.0),
                1 => q.a_v = (q.a_v + bump).min(1.0),
                2 => q.a_h = (q.a_h + bump).min(1.0),
                _ => q.a_r = (q.a_r + bump).min(1.0),
            }
            let better = HwModel::try_new(&spec, &topo, q).unwrap().availability();
            prop_assert!(better >= base - 1e-12, "param {} not monotone", which);
        }
    }

    #[test]
    fn sw_availability_in_unit_interval(p in arb_sw_params()) {
        let spec = ControllerSpec::opencontrail_3x();
        for topo in [Topology::small(&spec), Topology::medium(&spec), Topology::large(&spec)] {
            for scenario in [Scenario::SupervisorNotRequired, Scenario::SupervisorRequired] {
                let m = SwModel::try_new(&spec, &topo, p, scenario).unwrap();
                for a in [m.cp_availability(), m.shared_dp_availability(), m.host_dp_availability()] {
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
                }
            }
        }
    }

    #[test]
    fn sw_supervisor_required_never_better(p in arb_sw_params()) {
        let spec = ControllerSpec::opencontrail_3x();
        for topo in [Topology::small(&spec), Topology::large(&spec)] {
            let with = SwModel::try_new(&spec, &topo, p, Scenario::SupervisorRequired).unwrap();
            let without = SwModel::try_new(&spec, &topo, p, Scenario::SupervisorNotRequired).unwrap();
            prop_assert!(with.cp_availability() <= without.cp_availability() + 1e-12);
            prop_assert!(with.host_dp_availability() <= without.host_dp_availability() + 1e-12);
        }
    }

    #[test]
    fn sw_closed_forms_match_general_evaluator(p in arb_sw_params()) {
        // The paper's Small/Large transcriptions and the conditional
        // enumerator are independent implementations; they must agree.
        let spec = ControllerSpec::opencontrail_3x();
        for scenario in [Scenario::SupervisorNotRequired, Scenario::SupervisorRequired] {
            for plane in [Plane::ControlPlane, Plane::DataPlane] {
                let small_model = SwModel::try_new(&spec, &Topology::small(&spec), p, scenario).unwrap();
                let small_general = match plane {
                    Plane::ControlPlane => small_model.cp_availability(),
                    Plane::DataPlane => small_model.shared_dp_availability(),
                };
                let small_closed = sdnav_core::paper::sw_small(&spec, p, scenario, plane);
                prop_assert!((small_general - small_closed).abs() < 1e-10,
                    "small {:?} {:?}: {} vs {}", scenario, plane, small_general, small_closed);

                let large_model = SwModel::try_new(&spec, &Topology::large(&spec), p, scenario).unwrap();
                let large_general = match plane {
                    Plane::ControlPlane => large_model.cp_availability(),
                    Plane::DataPlane => large_model.shared_dp_availability(),
                };
                let large_closed = sdnav_core::paper::sw_large(&spec, p, scenario, plane);
                prop_assert!((large_general - large_closed).abs() < 1e-10,
                    "large {:?} {:?}: {} vs {}", scenario, plane, large_general, large_closed);
            }
        }
    }

    #[test]
    fn hw_closed_forms_match_general_evaluator(p in arb_hw_params()) {
        let spec = ControllerSpec::opencontrail_3x();
        let small = HwModel::try_new(&spec, &Topology::small(&spec), p).unwrap().availability();
        prop_assert!((small - sdnav_core::paper::hw_small_eq3(p)).abs() < 1e-12);
        let medium = HwModel::try_new(&spec, &Topology::medium(&spec), p).unwrap().availability();
        prop_assert!((medium - sdnav_core::paper::hw_medium_exact(p)).abs() < 1e-12);
        let large = HwModel::try_new(&spec, &Topology::large(&spec), p).unwrap().availability();
        prop_assert!((large - sdnav_core::paper::hw_large_eq8(p)).abs() < 1e-12);
    }

    #[test]
    fn cp_availability_bounded_by_weakest_quorum(p in arb_sw_params()) {
        // CP availability can never exceed the bare Database quorum of the
        // best case (all hardware perfect).
        let spec = ControllerSpec::opencontrail_3x();
        let m = SwModel::try_new(&spec, &Topology::large(&spec), p, Scenario::SupervisorNotRequired).unwrap();
        let db_quorum = sdnav_blocks::kofn::k_of_n(2, 3, p.process.manual).powi(4);
        prop_assert!(m.cp_availability() <= db_quorum + 1e-12);
    }

    #[test]
    fn scaled_downtime_round_trips(p in arb_sw_params(), delta in -1.0f64..1.0) {
        prop_assume!(p.process.auto < 1.0 && p.process.manual < 1.0);
        let scaled = p.scale_process_downtime(delta);
        let back = scaled.scale_process_downtime(-delta);
        prop_assert!((back.process.auto - p.process.auto).abs() < 1e-12);
        prop_assert!((back.process.manual - p.process.manual).abs() < 1e-12);
    }
}
