//! Property-based tests for the RBD substrate.

use proptest::prelude::*;

use sdnav_blocks::kofn::{
    binomial, k_of_n, k_of_n_heterogeneous, k_of_n_unavailability, up_count_distribution,
};
use sdnav_blocks::{Availability, Block, System};

fn availability_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0..=1.0,
        // Heavily weight the high-availability regime the paper studies.
        0.999..=1.0,
    ]
}

/// Availability of the named leaf unit, found by tree walk.
fn leaf_availability(block: &Block, target: &str) -> f64 {
    match block {
        Block::Unit { name, availability } => {
            if name == target {
                *availability
            } else {
                f64::NAN
            }
        }
        Block::Series { children }
        | Block::Parallel { children }
        | Block::KOfN { children, .. } => children
            .iter()
            .map(|c| leaf_availability(c, target))
            .find(|v| !v.is_nan())
            .unwrap_or(f64::NAN),
    }
}

/// Random small block diagrams with unique unit names.
fn arb_block() -> impl Strategy<Value = Block> {
    let leaf_counter = std::sync::atomic::AtomicUsize::new(0);
    let leaf_counter = std::sync::Arc::new(leaf_counter);
    let counter = leaf_counter.clone();
    let leaf = availability_value().prop_map(move |a| {
        let id = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Block::unit(format!("u{id}"), a)
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Block::series),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Block::parallel),
            (prop::collection::vec(inner, 1..4), 0u32..4)
                .prop_map(|(children, k)| Block::k_of_n(k, children)),
        ]
    })
}

proptest! {
    #[test]
    fn k_of_n_in_unit_interval(m in 0u32..8, n in 0u32..8, a in availability_value()) {
        let v = k_of_n(m, n, a);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn k_of_n_monotone_in_alpha(m in 1u32..6, n in 1u32..6, a in 0.0f64..1.0, d in 0.0f64..0.5) {
        prop_assume!(m <= n);
        let b = (a + d).min(1.0);
        prop_assert!(k_of_n(m, n, a) <= k_of_n(m, n, b) + 1e-12);
    }

    #[test]
    fn k_of_n_monotone_decreasing_in_m(m in 0u32..6, n in 1u32..6, a in availability_value()) {
        prop_assume!(m < n);
        prop_assert!(k_of_n(m + 1, n, a) <= k_of_n(m, n, a) + 1e-12);
    }

    #[test]
    fn availability_plus_unavailability_is_one(m in 0u32..6, n in 0u32..6, a in availability_value()) {
        let sum = k_of_n(m, n, a) + k_of_n_unavailability(m, n, a);
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adding_a_replica_never_hurts(m in 1u32..5, n in 1u32..6, a in availability_value()) {
        prop_assume!(m <= n);
        prop_assert!(k_of_n(m, n + 1, a) >= k_of_n(m, n, a) - 1e-12);
    }

    #[test]
    fn heterogeneous_matches_identical(k in 0usize..6, n in 0usize..6, a in availability_value()) {
        let het = k_of_n_heterogeneous(k, &vec![a; n]);
        let hom = k_of_n(k as u32, n as u32, a);
        prop_assert!((het - hom).abs() < 1e-10);
    }

    #[test]
    fn up_count_distribution_is_probability(
        alphas in prop::collection::vec(availability_value(), 0..8)
    ) {
        let d = up_count_distribution(&alphas);
        prop_assert_eq!(d.len(), alphas.len() + 1);
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
    }

    #[test]
    fn block_availability_in_unit_interval(block in arb_block()) {
        let a = block.availability();
        prop_assert!((0.0..=1.0).contains(&a), "a={}", a);
    }

    #[test]
    fn block_availability_matches_state_enumeration(block in arb_block()) {
        // Exact check: sum of P(state) over all up states equals availability.
        let names = block.unit_names();
        prop_assume!(names.len() <= 10);
        let avails: Vec<f64> = names.iter().map(|n| leaf_availability(&block, n)).collect();
        let mut total = 0.0;
        for mask in 0u32..(1 << names.len()) {
            let mut p = 1.0;
            for (i, a) in avails.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    p *= a;
                } else {
                    p *= 1.0 - a;
                }
            }
            if p == 0.0 {
                continue;
            }
            let up = block.is_up(&mut |name| {
                let idx = names.iter().position(|n| n == name).unwrap();
                mask & (1 << idx) != 0
            });
            if up {
                total += p;
            }
        }
        prop_assert!((total - block.availability()).abs() < 1e-9,
            "enumerated={} direct={}", total, block.availability());
    }

    #[test]
    fn pinning_up_never_decreases_availability(block in arb_block()) {
        let base = block.availability();
        for name in block.unit_names() {
            let up = block.availability_pinned(&mut |n| (n == name).then_some(true));
            let down = block.availability_pinned(&mut |n| (n == name).then_some(false));
            prop_assert!(up >= base - 1e-12);
            prop_assert!(down <= base + 1e-12);
        }
    }

    #[test]
    fn cut_sets_are_minimal_and_fatal(block in arb_block()) {
        let names = block.unit_names();
        prop_assume!(names.len() <= 8);
        let sys = System::new(block);
        for cut in sys.minimal_cut_sets(3) {
            let comps: Vec<&str> = cut.components().collect();
            // Fatal: failing the whole cut downs the system.
            prop_assert!(!sys.is_up_with_failures(&comps));
            // Minimal: removing any one component restores the system.
            for skip in &comps {
                let partial: Vec<&str> =
                    comps.iter().copied().filter(|c| c != skip).collect();
                prop_assert!(sys.is_up_with_failures(&partial), "cut {:?} not minimal", comps);
            }
        }
    }

    #[test]
    fn simplify_preserves_semantics(block in arb_block()) {
        let clean = block.simplify();
        prop_assert!((clean.availability() - block.availability()).abs() < 1e-12,
            "availability changed: {} vs {}", clean.availability(), block.availability());
        let mut before = block.unit_names();
        let mut after = clean.unit_names();
        before.sort();
        after.sort();
        prop_assert_eq!(before, after, "unit set changed");
        // Idempotent.
        prop_assert_eq!(clean.simplify(), clean);
    }

    #[test]
    fn paths_and_cuts_are_dual(block in arb_block()) {
        let names = block.unit_names();
        prop_assume!(names.len() <= 7);
        let sys = System::new(block);
        let cuts = sys.minimal_cut_sets(7);
        let paths = sys.minimal_path_sets(7);
        // Every minimal path must intersect every minimal cut.
        for p in &paths {
            let p_set: Vec<&str> = p.components().collect();
            for c in &cuts {
                prop_assert!(c.components().any(|x| p_set.contains(&x)),
                    "path {} misses cut {}", p, c);
            }
        }
        // Paths are themselves minimal and sufficient.
        for p in &paths {
            let working: Vec<&str> = p.components().collect();
            prop_assert!(sys.is_up_with_only(&working));
            for skip in &working {
                let fewer: Vec<&str> =
                    working.iter().copied().filter(|c| c != skip).collect();
                prop_assert!(!sys.is_up_with_only(&fewer), "path {} not minimal", p);
            }
        }
    }

    #[test]
    fn availability_series_parallel_bounds(a in availability_value(), b in availability_value()) {
        let x = Availability::new(a).unwrap();
        let y = Availability::new(b).unwrap();
        let s = Availability::series([x, y]);
        let p = Availability::parallel([x, y]);
        prop_assert!(s <= x && s <= y);
        prop_assert!(p >= x && p >= y);
    }

    #[test]
    fn downtime_round_trips(a in 0.5f64..1.0) {
        let av = Availability::new(a).unwrap();
        let back = Availability::from_downtime_per_year(av.downtime_per_year());
        prop_assert!((av.value() - back.value()).abs() < 1e-10);
    }

    #[test]
    fn binomial_row_sums_to_power_of_two(n in 0u32..30) {
        let sum: f64 = (0..=n).map(|k| binomial(n, k)).sum();
        prop_assert_eq!(sum, 2f64.powi(n as i32));
    }
}
