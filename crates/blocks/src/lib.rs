//! Reliability block diagram (RBD) algebra for availability modeling.
//!
//! This crate is the mathematical substrate underneath the SDN-controller
//! availability models of Reeser, Tesseyre & Callaway (ISPASS 2019). It
//! provides:
//!
//! * [`Availability`] — a validated steady-state availability value with
//!   conversions to/from MTBF/MTTR, unavailability, "nines", and
//!   [`Downtime`] per year.
//! * [`kofn`] — the paper's Eq. (1): exact `m`-of-`n` block availability for
//!   identical blocks, generalized to heterogeneous blocks via dynamic
//!   programming.
//! * [`Block`] — composable series / parallel / k-of-n reliability block
//!   diagrams with exact evaluation under the independence assumption.
//! * [`System`] — a named-component view of a block diagram supporting
//!   what-if state queries, minimal cut set enumeration, and component
//!   [`importance`] measures (Birnbaum, criticality, RAW, RRW).
//!
//! # Quick example
//!
//! The paper's "2 of 3" database quorum in series with a rack:
//!
//! ```
//! use sdnav_blocks::{Availability, Block};
//!
//! let node = Block::unit("db-node", 0.9995);
//! let quorum = Block::k_of_n(2, vec![node.clone(), node.clone(), node]);
//! let system = Block::series(vec![quorum, Block::unit("rack", 0.99999)]);
//!
//! let a = system.availability();
//! assert!(a > 0.99998 && a < 0.99999);
//! let avail = Availability::new(a).unwrap();
//! assert_eq!(avail.whole_nines(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod availability;
mod block;
mod downtime;
pub mod importance;
pub mod kofn;
mod structure;

pub use availability::{Availability, AvailabilityError};
pub use block::Block;
pub use downtime::Downtime;
pub use structure::{CutSet, System};
