//! Named-component system view: state queries and minimal cut sets.

use std::collections::BTreeSet;
use std::fmt;

use crate::Block;

/// A set of component names whose simultaneous failure brings the system
/// down. A *minimal* cut set has no proper subset with that property.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CutSet {
    components: BTreeSet<String>,
}

impl CutSet {
    /// The component names in this cut set, sorted.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.components.iter().map(String::as_str)
    }

    /// Number of components in the cut set (its *order*).
    #[must_use]
    pub fn order(&self) -> usize {
        self.components.len()
    }

    /// Whether this cut set is a subset of `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &CutSet) -> bool {
        self.components.is_subset(&other.components)
    }
}

impl fmt::Display for CutSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// A reliability block diagram together with its component identity list,
/// supporting what-if evaluation and minimal cut set enumeration.
///
/// ```
/// use sdnav_blocks::{Block, System};
///
/// let diagram = Block::series(vec![
///     Block::k_of_n(2, Block::unit("db", 0.999).replicate(3)),
///     Block::unit("rack", 0.99999),
/// ]);
/// let system = System::new(diagram);
///
/// // The rack is a single point of failure:
/// let cuts = system.minimal_cut_sets(1);
/// assert_eq!(cuts.len(), 1);
/// assert_eq!(cuts[0].to_string(), "{rack}");
///
/// // Any two DB nodes form an order-2 cut:
/// let cuts = system.minimal_cut_sets(2);
/// assert_eq!(cuts.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct System {
    block: Block,
    components: Vec<String>,
}

impl System {
    /// Wraps a block diagram.
    ///
    /// # Panics
    ///
    /// Panics if two leaf units share a name; cut sets and importance
    /// measures need distinct identities. Use [`Block::replicate`] to stamp
    /// out distinguishable copies.
    #[must_use]
    pub fn new(block: Block) -> Self {
        let components = block.unit_names();
        let mut seen = BTreeSet::new();
        for name in &components {
            assert!(
                seen.insert(name.clone()),
                "duplicate component name {name:?} in block diagram"
            );
        }
        System { block, components }
    }

    /// The underlying block diagram.
    #[must_use]
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// All component names, in depth-first order.
    #[must_use]
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// System availability under independence.
    #[must_use]
    pub fn availability(&self) -> f64 {
        self.block.availability()
    }

    /// Is the system up when exactly the named components have failed?
    ///
    /// Unknown names are ignored (treated as healthy).
    #[must_use]
    pub fn is_up_with_failures(&self, failed: &[&str]) -> bool {
        let failed: BTreeSet<&str> = failed.iter().copied().collect();
        self.block.is_up(&mut |name| !failed.contains(name))
    }

    /// Enumerates all minimal cut sets up to `max_order` components.
    ///
    /// Exhaustive subset search pruned by minimality: a candidate containing
    /// an already-found cut set is skipped. Complexity is
    /// O(C(n, max_order) · cost(eval)); intended for the paper-scale systems
    /// (tens of components, orders ≤ 3).
    ///
    /// If the system is down even with every component healthy (e.g. an
    /// unsatisfiable `2`-of-`1` quorum), cut sets are ill-defined and an
    /// empty list is returned.
    #[must_use]
    pub fn minimal_cut_sets(&self, max_order: usize) -> Vec<CutSet> {
        if !self.is_up_with_failures(&[]) {
            return Vec::new();
        }
        let n = self.components.len();
        let mut found: Vec<CutSet> = Vec::new();
        let mut indices: Vec<usize> = Vec::new();
        for order in 1..=max_order.min(n) {
            indices.clear();
            indices.extend(0..order);
            loop {
                let candidate: BTreeSet<String> = indices
                    .iter()
                    .map(|&i| self.components[i].clone())
                    .collect();
                let superset_of_known = found.iter().any(|cs| cs.components.is_subset(&candidate));
                if !superset_of_known {
                    let failed: Vec<&str> = candidate.iter().map(String::as_str).collect();
                    if !self.is_up_with_failures(&failed) {
                        found.push(CutSet {
                            components: candidate,
                        });
                    }
                }
                // Advance the combination (lexicographic).
                let mut i = order;
                loop {
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                    if indices[i] != i + n - order {
                        indices[i] += 1;
                        for j in (i + 1)..order {
                            indices[j] = indices[j - 1] + 1;
                        }
                        break;
                    }
                    if i == 0 {
                        indices.clear();
                        break;
                    }
                }
                if indices.is_empty() {
                    break;
                }
            }
        }
        found.sort();
        found
    }

    /// Is the system up when *only* the named components are working (all
    /// others failed)?
    ///
    /// Unknown names are ignored.
    #[must_use]
    pub fn is_up_with_only(&self, working: &[&str]) -> bool {
        let working: BTreeSet<&str> = working.iter().copied().collect();
        self.block.is_up(&mut |name| working.contains(name))
    }

    /// Enumerates all minimal *path sets* up to `max_order` components: a
    /// path set is a set of components whose functioning alone keeps the
    /// system up; a minimal one has no functioning proper subset.
    ///
    /// Path sets are the logical dual of cut sets: every minimal path
    /// intersects every minimal cut. For the paper's structures they spell
    /// out "what must survive" — e.g. a 2-of-3 Database quorum in series
    /// with a rack has paths `{rack, db-i, db-j}`.
    ///
    /// Returns an empty list when even the full component set cannot keep
    /// the system up. If the system is up with *no* components working (a
    /// vacuous structure such as a `0`-of-`n` group), the single minimal
    /// path is the empty set.
    #[must_use]
    pub fn minimal_path_sets(&self, max_order: usize) -> Vec<CutSet> {
        if self.is_up_with_only(&[]) {
            return vec![CutSet {
                components: BTreeSet::new(),
            }];
        }
        let all: Vec<&str> = self.components.iter().map(String::as_str).collect();
        if !self.is_up_with_only(&all) {
            return Vec::new();
        }
        let n = self.components.len();
        let mut found: Vec<CutSet> = Vec::new();
        for order in 1..=max_order.min(n) {
            let mut indices: Vec<usize> = (0..order).collect();
            loop {
                let candidate: BTreeSet<String> = indices
                    .iter()
                    .map(|&i| self.components[i].clone())
                    .collect();
                let superset_of_known = found.iter().any(|ps| ps.components.is_subset(&candidate));
                if !superset_of_known {
                    let working: Vec<&str> = candidate.iter().map(String::as_str).collect();
                    if self.is_up_with_only(&working) {
                        found.push(CutSet {
                            components: candidate,
                        });
                    }
                }
                // Advance combination (lexicographic), same walk as cut sets.
                let mut i = order;
                let mut advanced = false;
                while i > 0 {
                    i -= 1;
                    if indices[i] != i + n - order {
                        indices[i] += 1;
                        for j in (i + 1)..order {
                            indices[j] = indices[j - 1] + 1;
                        }
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    break;
                }
            }
        }
        found.sort();
        found
    }

    /// Rare-event approximation of system unavailability from minimal cut
    /// sets: `U ≈ Σ_cuts Π_i u_i`, using each component's own unavailability.
    ///
    /// A first-order inclusion–exclusion bound, accurate when component
    /// unavailabilities are small — the regime of all the paper's studies.
    #[must_use]
    pub fn cut_set_unavailability(&self, cuts: &[CutSet]) -> f64 {
        cuts.iter()
            .map(|cs| {
                cs.components
                    .iter()
                    .map(|name| 1.0 - self.component_availability(name))
                    .product::<f64>()
            })
            .sum()
    }

    fn component_availability(&self, target: &str) -> f64 {
        fn find(block: &Block, target: &str) -> Option<f64> {
            match block {
                Block::Unit { name, availability } => (name == target).then_some(*availability),
                Block::Series { children }
                | Block::Parallel { children }
                | Block::KOfN { children, .. } => children.iter().find_map(|c| find(c, target)),
            }
        }
        find(&self.block, target).unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quorum_system() -> System {
        System::new(Block::series(vec![
            Block::k_of_n(2, Block::unit("db", 0.999).replicate(3)),
            Block::unit("rack", 0.99999),
        ]))
    }

    #[test]
    fn single_points_of_failure() {
        let cuts = quorum_system().minimal_cut_sets(1);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].order(), 1);
        assert_eq!(cuts[0].components().collect::<Vec<_>>(), vec!["rack"]);
    }

    #[test]
    fn order_two_cuts_are_db_pairs() {
        let cuts = quorum_system().minimal_cut_sets(2);
        assert_eq!(cuts.len(), 4); // {rack} + 3 DB pairs
        let pairs: Vec<_> = cuts.iter().filter(|c| c.order() == 2).collect();
        assert_eq!(pairs.len(), 3);
        for p in pairs {
            let comps: Vec<_> = p.components().collect();
            assert!(comps.iter().all(|c| c.starts_with("db-")), "{comps:?}");
        }
    }

    #[test]
    fn minimality_pruning() {
        // {rack, db-1} contains {rack} so it must not appear.
        let cuts = quorum_system().minimal_cut_sets(3);
        for c in &cuts {
            if c.order() > 1 {
                assert!(!c.components().any(|x| x == "rack"), "{c}");
            }
        }
    }

    #[test]
    fn is_up_with_failures() {
        let sys = quorum_system();
        assert!(sys.is_up_with_failures(&[]));
        assert!(sys.is_up_with_failures(&["db-1"]));
        assert!(!sys.is_up_with_failures(&["db-1", "db-2"]));
        assert!(!sys.is_up_with_failures(&["rack"]));
        // Unknown names are healthy no-ops.
        assert!(sys.is_up_with_failures(&["nonexistent"]));
    }

    #[test]
    fn cut_set_approximation_close_to_exact() {
        let sys = quorum_system();
        let cuts = sys.minimal_cut_sets(2);
        let approx = sys.cut_set_unavailability(&cuts);
        let exact = 1.0 - sys.availability();
        let rel = (approx - exact).abs() / exact;
        assert!(rel < 1e-2, "approx={approx} exact={exact}");
    }

    #[test]
    #[should_panic(expected = "duplicate component name")]
    fn rejects_duplicate_names() {
        let _ = System::new(Block::series(vec![
            Block::unit("x", 0.9),
            Block::unit("x", 0.9),
        ]));
    }

    #[test]
    fn series_only_system_has_all_singletons() {
        let sys = System::new(Block::series(vec![
            Block::unit("a", 0.9),
            Block::unit("b", 0.9),
            Block::unit("c", 0.9),
        ]));
        let cuts = sys.minimal_cut_sets(2);
        assert_eq!(cuts.len(), 3);
        assert!(cuts.iter().all(|c| c.order() == 1));
    }

    #[test]
    fn parallel_system_has_one_full_cut() {
        let sys = System::new(Block::parallel(vec![
            Block::unit("a", 0.9),
            Block::unit("b", 0.9),
        ]));
        assert!(sys.minimal_cut_sets(1).is_empty());
        let cuts = sys.minimal_cut_sets(2);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].order(), 2);
    }

    #[test]
    fn path_sets_of_quorum_system() {
        // 2-of-3 DB + rack: minimal paths are {rack, db-i, db-j}.
        let paths = quorum_system().minimal_path_sets(3);
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert_eq!(p.order(), 3);
            assert!(p.components().any(|c| c == "rack"));
            assert_eq!(p.components().filter(|c| c.starts_with("db-")).count(), 2);
        }
    }

    #[test]
    fn every_path_intersects_every_cut() {
        // The classic duality, on a nontrivial structure.
        let sys = System::new(Block::series(vec![
            Block::k_of_n(2, Block::unit("q", 0.9).replicate(3)),
            Block::parallel(vec![Block::unit("a", 0.9), Block::unit("b", 0.9)]),
        ]));
        let cuts = sys.minimal_cut_sets(5);
        let paths = sys.minimal_path_sets(5);
        assert!(!cuts.is_empty() && !paths.is_empty());
        for p in &paths {
            for c in &cuts {
                let p_set: Vec<&str> = p.components().collect();
                assert!(
                    c.components().any(|x| p_set.contains(&x)),
                    "path {p} misses cut {c}"
                );
            }
        }
    }

    #[test]
    fn path_sets_of_dead_system_are_empty() {
        let sys = System::new(Block::k_of_n(2, vec![Block::unit("only", 0.9)]));
        assert!(sys.minimal_path_sets(3).is_empty());
    }

    #[test]
    fn is_up_with_only() {
        let sys = quorum_system();
        assert!(sys.is_up_with_only(&["rack", "db-1", "db-2"]));
        assert!(!sys.is_up_with_only(&["rack", "db-1"]));
        assert!(!sys.is_up_with_only(&["db-1", "db-2", "db-3"])); // rack missing
    }

    #[test]
    fn cut_set_display_and_subset() {
        let sys = quorum_system();
        let cuts = sys.minimal_cut_sets(2);
        let rack = cuts.iter().find(|c| c.order() == 1).unwrap();
        assert_eq!(rack.to_string(), "{rack}");
        let pair = cuts.iter().find(|c| c.order() == 2).unwrap();
        assert!(!pair.is_subset_of(rack));
        assert!(rack.is_subset_of(rack));
    }
}
