//! Downtime quantities and human-readable formatting.

use std::fmt;
use std::ops::{Add, Sub};

/// An amount of downtime, stored internally in minutes.
///
/// The paper reports results as "minutes/year" (m/y); this type makes those
/// conversions explicit and keeps units out of raw `f64`s.
///
/// ```
/// use sdnav_blocks::{Availability, Downtime};
///
/// let dt = Availability::new(0.99998).unwrap().downtime_per_year();
/// assert!((dt.minutes() - 10.52).abs() < 0.01);
/// assert_eq!(format!("{dt:.1}"), "10.5 m/y");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Downtime {
    minutes: f64,
}

impl Downtime {
    /// No downtime at all.
    pub const ZERO: Downtime = Downtime { minutes: 0.0 };

    /// Downtime from a number of minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        Downtime {
            minutes: minutes.max(0.0),
        }
    }

    /// Downtime from a number of seconds.
    #[must_use]
    pub fn from_seconds(seconds: f64) -> Self {
        Downtime::from_minutes(seconds / 60.0)
    }

    /// Downtime from a number of hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Downtime::from_minutes(hours * 60.0)
    }

    /// The downtime in minutes.
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.minutes
    }

    /// The downtime in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.minutes * 60.0
    }

    /// The downtime in hours.
    #[must_use]
    pub fn hours(self) -> f64 {
        self.minutes / 60.0
    }

    /// The downtime in days.
    #[must_use]
    pub fn days(self) -> f64 {
        self.minutes / (24.0 * 60.0)
    }
}

impl Add for Downtime {
    type Output = Downtime;

    fn add(self, rhs: Downtime) -> Downtime {
        Downtime::from_minutes(self.minutes + rhs.minutes)
    }
}

impl Sub for Downtime {
    type Output = Downtime;

    /// Saturating subtraction: downtime never goes negative.
    fn sub(self, rhs: Downtime) -> Downtime {
        Downtime::from_minutes(self.minutes - rhs.minutes)
    }
}

impl fmt::Display for Downtime {
    /// Formats as minutes per year, the paper's unit, e.g. `5.9 m/y`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(2);
        write!(f, "{:.*} m/y", prec, self.minutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let dt = Downtime::from_hours(2.0);
        assert_eq!(dt.minutes(), 120.0);
        assert_eq!(dt.seconds(), 7200.0);
        assert_eq!(dt.hours(), 2.0);
        assert!((Downtime::from_minutes(1440.0).days() - 1.0).abs() < 1e-12);
        assert_eq!(Downtime::from_seconds(90.0).minutes(), 1.5);
    }

    #[test]
    fn negative_input_clamps_to_zero() {
        assert_eq!(Downtime::from_minutes(-5.0), Downtime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Downtime::from_minutes(10.0);
        let b = Downtime::from_minutes(4.0);
        assert_eq!((a + b).minutes(), 14.0);
        assert_eq!((a - b).minutes(), 6.0);
        // Saturating: never negative.
        assert_eq!((b - a).minutes(), 0.0);
    }

    #[test]
    fn display_matches_paper_unit() {
        let dt = Downtime::from_minutes(5.93);
        assert_eq!(format!("{dt:.1}"), "5.9 m/y");
        assert_eq!(format!("{dt}"), "5.93 m/y");
    }

    #[test]
    fn ordering() {
        assert!(Downtime::from_minutes(1.0) < Downtime::from_minutes(2.0));
    }
}
