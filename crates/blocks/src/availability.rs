//! Validated steady-state availability values.

use std::error::Error;
use std::fmt;
use std::ops::Mul;

use sdnav_json::{FromJson, Json, JsonError, ToJson};

use crate::Downtime;

/// Minutes in the mean (Gregorian) year used by the paper's
/// "minutes/year of downtime" figures: `365.25 * 24 * 60 = 525 960`.
pub(crate) const MINUTES_PER_YEAR: f64 = 525_960.0;

/// A steady-state availability: the long-run fraction of time a component or
/// system is up. Guaranteed to lie in `[0, 1]`.
///
/// `Availability` is an ordered, copyable value type. Multiplication composes
/// availabilities in *series* (both must be up), which is exact when the
/// components fail independently:
///
/// ```
/// use sdnav_blocks::Availability;
///
/// let role = Availability::new(0.9995).unwrap();
/// let vm = Availability::new(0.99995).unwrap();
/// let combined = role * vm; // {role + VM} series block
/// assert!((combined.value() - 0.9995 * 0.99995).abs() < 1e-15);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Availability(f64);

impl ToJson for Availability {
    fn to_json(&self) -> Json {
        Json::Num(self.0)
    }
}

impl FromJson for Availability {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Availability::new(value.as_f64()?).map_err(|e| JsonError::decode(e.to_string()))
    }
}

impl Availability {
    /// A component that is always up.
    pub const ONE: Availability = Availability(1.0);

    /// A component that is always down.
    pub const ZERO: Availability = Availability(0.0);

    /// Creates an availability, validating that `value` lies in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError`] if `value` is NaN or outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, AvailabilityError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            Err(AvailabilityError { value })
        } else {
            Ok(Availability(value))
        }
    }

    /// Creates an availability, clamping `value` into `[0, 1]`.
    ///
    /// NaN clamps to `0.0` (pessimistic). Useful at the end of floating-point
    /// computations that may overshoot by a few ulps.
    #[must_use]
    pub fn new_clamped(value: f64) -> Self {
        if value.is_nan() {
            Availability(0.0)
        } else {
            Availability(value.clamp(0.0, 1.0))
        }
    }

    /// Availability from an unavailability `u` (the complement `1 - u`).
    ///
    /// For tiny unavailabilities this preserves precision better than
    /// computing `1 - u` at the call site and round-tripping.
    pub fn from_unavailability(u: f64) -> Result<Self, AvailabilityError> {
        if u.is_nan() || !(0.0..=1.0).contains(&u) {
            return Err(AvailabilityError { value: u });
        }
        Ok(Availability(1.0 - u))
    }

    /// Steady-state availability of a repairable component from its mean time
    /// between failures and mean time to restore: `MTBF / (MTBF + MTTR)`.
    ///
    /// Units cancel, so any consistent time unit works.
    ///
    /// ```
    /// use sdnav_blocks::Availability;
    /// // Paper §VI.A: F = 5000 h, R = 0.1 h gives A = 0.99998.
    /// let a = Availability::from_mtbf_mttr(5000.0, 0.1).unwrap();
    /// assert!((a.value() - 0.99998).abs() < 1e-7);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError`] if either argument is negative, NaN, or
    /// both are zero.
    pub fn from_mtbf_mttr(mtbf: f64, mttr: f64) -> Result<Self, AvailabilityError> {
        if !mtbf.is_finite() || !mttr.is_finite() || mtbf < 0.0 || mttr < 0.0 {
            return Err(AvailabilityError { value: f64::NAN });
        }
        let total = mtbf + mttr;
        if total == 0.0 {
            return Err(AvailabilityError { value: f64::NAN });
        }
        Ok(Availability(mtbf / total))
    }

    /// The raw availability value in `[0, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The unavailability `1 - A`.
    #[must_use]
    pub fn unavailability(self) -> f64 {
        1.0 - self.0
    }

    /// Expected downtime accumulated per year at this availability.
    ///
    /// ```
    /// use sdnav_blocks::Availability;
    /// let a = Availability::new(0.99999).unwrap();
    /// // Five nines is the classic "about five minutes per year".
    /// assert!((a.downtime_per_year().minutes() - 5.2596).abs() < 1e-3);
    /// ```
    #[must_use]
    pub fn downtime_per_year(self) -> Downtime {
        Downtime::from_minutes(self.unavailability() * MINUTES_PER_YEAR)
    }

    /// The availability corresponding to a target downtime per year.
    #[must_use]
    pub fn from_downtime_per_year(downtime: Downtime) -> Self {
        Availability::new_clamped(1.0 - downtime.minutes() / MINUTES_PER_YEAR)
    }

    /// The number of "nines": `-log10(1 - A)`, as a real number.
    ///
    /// Returns `f64::INFINITY` for a perfect availability of 1.
    #[must_use]
    pub fn nines(self) -> f64 {
        let u = self.unavailability();
        if u <= 0.0 {
            f64::INFINITY
        } else {
            -u.log10()
        }
    }

    /// The number of complete leading nines in the decimal expansion
    /// (e.g. `0.99995` has 4 whole nines).
    #[must_use]
    pub fn whole_nines(self) -> u32 {
        let n = self.nines();
        if n.is_infinite() {
            u32::MAX
        } else {
            n.floor().max(0.0) as u32
        }
    }

    /// Series composition of an iterator of availabilities (product).
    ///
    /// Empty input yields [`Availability::ONE`] (an empty series is
    /// vacuously up).
    #[must_use]
    pub fn series<I: IntoIterator<Item = Availability>>(parts: I) -> Self {
        Availability(parts.into_iter().map(|a| a.0).product())
    }

    /// Parallel (1-of-n) composition of an iterator of availabilities.
    ///
    /// Empty input yields [`Availability::ZERO`] (an empty parallel group
    /// has nothing to be up).
    #[must_use]
    pub fn parallel<I: IntoIterator<Item = Availability>>(parts: I) -> Self {
        let mut any = false;
        let down: f64 = parts
            .into_iter()
            .map(|a| {
                any = true;
                1.0 - a.0
            })
            .product();
        if any {
            Availability(1.0 - down)
        } else {
            Availability::ZERO
        }
    }

    /// This availability raised to the `n`-th power (series of `n` identical
    /// independent components).
    #[must_use]
    pub fn powi(self, n: i32) -> Self {
        Availability::new_clamped(self.0.powi(n))
    }
}

impl Default for Availability {
    /// The default is [`Availability::ONE`]: a component that never fails.
    fn default() -> Self {
        Availability::ONE
    }
}

impl Mul for Availability {
    type Output = Availability;

    fn mul(self, rhs: Availability) -> Availability {
        Availability(self.0 * rhs.0)
    }
}

impl Mul<f64> for Availability {
    type Output = Availability;

    fn mul(self, rhs: f64) -> Availability {
        Availability::new_clamped(self.0 * rhs)
    }
}

impl TryFrom<f64> for Availability {
    type Error = AvailabilityError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Availability::new(value)
    }
}

impl From<Availability> for f64 {
    fn from(a: Availability) -> f64 {
        a.0
    }
}

impl fmt::Debug for Availability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Availability({})", self.0)
    }
}

impl fmt::Display for Availability {
    /// Displays with enough precision to distinguish high availabilities
    /// (9 significant decimals), e.g. `0.999989000`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}", prec, self.0)
        } else {
            write!(f, "{:.9}", self.0)
        }
    }
}

/// Error returned when a value cannot be interpreted as an availability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityError {
    value: f64,
}

impl AvailabilityError {
    /// The offending value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for AvailabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "availability must lie in [0, 1], got {value}",
            value = self.value
        )
    }
}

impl Error for AvailabilityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_bounds() {
        assert_eq!(Availability::new(0.0).unwrap(), Availability::ZERO);
        assert_eq!(Availability::new(1.0).unwrap(), Availability::ONE);
        assert!(Availability::new(0.5).is_ok());
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Availability::new(-0.1).is_err());
        assert!(Availability::new(1.1).is_err());
        assert!(Availability::new(f64::NAN).is_err());
        assert!(Availability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn error_reports_value() {
        let err = Availability::new(1.5).unwrap_err();
        assert_eq!(err.value(), 1.5);
        assert!(err.to_string().contains("1.5"));
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Availability::new_clamped(1.0 + 1e-12).value(), 1.0);
        assert_eq!(Availability::new_clamped(-1e-12).value(), 0.0);
        assert_eq!(Availability::new_clamped(f64::NAN).value(), 0.0);
    }

    #[test]
    fn mtbf_mttr_matches_paper_section_6a() {
        // A = F/(F+R) with F = 5000 h, R = 0.1 h → 0.99998.
        let a = Availability::from_mtbf_mttr(5000.0, 0.1).unwrap();
        assert!((a.value() - 0.99998).abs() < 1e-6);
        // A_S with R_S = 1 h → 0.9998.
        let a_s = Availability::from_mtbf_mttr(5000.0, 1.0).unwrap();
        assert!((a_s.value() - 0.9998).abs() < 1e-6);
    }

    #[test]
    fn mtbf_mttr_rejects_bad_input() {
        assert!(Availability::from_mtbf_mttr(-1.0, 1.0).is_err());
        assert!(Availability::from_mtbf_mttr(1.0, -1.0).is_err());
        assert!(Availability::from_mtbf_mttr(0.0, 0.0).is_err());
        assert!(Availability::from_mtbf_mttr(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn downtime_round_trip() {
        let a = Availability::new(0.9995).unwrap();
        let dt = a.downtime_per_year();
        let back = Availability::from_downtime_per_year(dt);
        assert!((a.value() - back.value()).abs() < 1e-12);
    }

    #[test]
    fn five_nines_is_about_five_minutes() {
        let a = Availability::new(0.99999).unwrap();
        let m = a.downtime_per_year().minutes();
        assert!((m - 5.2596).abs() < 1e-3, "got {m}");
    }

    #[test]
    fn nines_counting() {
        assert_eq!(Availability::new(0.9995).unwrap().whole_nines(), 3);
        assert_eq!(Availability::new(0.99995).unwrap().whole_nines(), 4);
        assert_eq!(Availability::ONE.whole_nines(), u32::MAX);
        assert!(Availability::ONE.nines().is_infinite());
        assert_eq!(Availability::ZERO.nines(), 0.0);
    }

    #[test]
    fn series_and_parallel() {
        let a = Availability::new(0.9).unwrap();
        let b = Availability::new(0.8).unwrap();
        assert!((Availability::series([a, b]).value() - 0.72).abs() < 1e-12);
        assert!((Availability::parallel([a, b]).value() - 0.98).abs() < 1e-12);
        assert_eq!(Availability::series(std::iter::empty()), Availability::ONE);
        assert_eq!(
            Availability::parallel(std::iter::empty()),
            Availability::ZERO
        );
    }

    #[test]
    fn multiply_is_series() {
        let a = Availability::new(0.9).unwrap();
        let b = Availability::new(0.8).unwrap();
        assert!(((a * b).value() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn powi_matches_repeated_series() {
        let a = Availability::new(0.99).unwrap();
        let three = Availability::series([a, a, a]);
        assert!((a.powi(3).value() - three.value()).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        let lo = Availability::new(0.9).unwrap();
        let hi = Availability::new(0.99).unwrap();
        assert!(lo < hi);
    }

    #[test]
    fn display_formats() {
        let a = Availability::new(0.999989).unwrap();
        assert_eq!(a.to_string(), "0.999989000");
        assert_eq!(format!("{a:.4}"), "1.0000"); // rounds up at 4 digits
        let b = Availability::new(0.99991).unwrap();
        assert_eq!(format!("{b:.4}"), "0.9999");
    }

    #[test]
    fn json_round_trip() {
        let a = Availability::new(0.9995).unwrap();
        let json = sdnav_json::to_string(&a);
        assert_eq!(json, "0.9995");
        let back: Availability = sdnav_json::from_str(&json).unwrap();
        assert_eq!(a, back);
        assert!(sdnav_json::from_str::<Availability>("1.5").is_err());
    }
}
