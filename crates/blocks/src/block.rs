//! Composable reliability block diagrams.

use std::fmt;

use sdnav_json::{FromJson, Json, JsonError, ToJson};

use crate::kofn::k_of_n_heterogeneous;

/// A node in a reliability block diagram.
///
/// A block is *up* according to its structure:
///
/// * [`Block::Unit`] — a leaf component, up with its own availability;
/// * [`Block::Series`] — up iff *every* child is up;
/// * [`Block::Parallel`] — up iff *at least one* child is up;
/// * [`Block::KOfN`] — up iff at least `k` children are up.
///
/// Evaluation assumes children fail independently, the same assumption the
/// paper's algebra makes. Shared-infrastructure correlation (a rack hosting
/// several nodes) is handled one level up by conditional decomposition (see
/// `sdnav-core`), not inside the diagram.
///
/// ```
/// use sdnav_blocks::Block;
///
/// // The paper's Database quorum: 2-of-3 nodes, in series with a rack.
/// let db = Block::k_of_n(2, Block::unit("db", 0.9995).replicate(3));
/// let system = Block::series(vec![db, Block::unit("rack", 0.99999)]);
/// assert!(system.availability() > 0.99998);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// A leaf component with a fixed availability.
    Unit {
        /// Human-readable component name (used in cut sets and importance).
        name: String,
        /// Steady-state availability in `[0, 1]`.
        availability: f64,
    },
    /// All children required.
    Series {
        /// The child blocks, all of which must be up.
        children: Vec<Block>,
    },
    /// At least one child required.
    Parallel {
        /// The child blocks, at least one of which must be up.
        children: Vec<Block>,
    },
    /// At least `k` children required.
    KOfN {
        /// Minimum number of children that must be up.
        k: u32,
        /// The child blocks.
        children: Vec<Block>,
    },
}

impl Block {
    /// Creates a leaf component.
    ///
    /// # Panics
    ///
    /// Panics if `availability` is outside `[0, 1]`.
    #[must_use]
    pub fn unit(name: impl Into<String>, availability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&availability),
            "availability must lie in [0, 1], got {availability}"
        );
        Block::Unit {
            name: name.into(),
            availability,
        }
    }

    /// Creates a series group (all children required).
    #[must_use]
    pub fn series(children: Vec<Block>) -> Self {
        Block::Series { children }
    }

    /// Creates a parallel group (any one child suffices).
    #[must_use]
    pub fn parallel(children: Vec<Block>) -> Self {
        Block::Parallel { children }
    }

    /// Creates a `k`-of-`n` group over `children` (`n = children.len()`).
    #[must_use]
    pub fn k_of_n(k: u32, children: Vec<Block>) -> Self {
        Block::KOfN { k, children }
    }

    /// Clones this block `n` times, appending `-1`, `-2`, … to unit names so
    /// replicas stay distinguishable in cut sets.
    ///
    /// ```
    /// use sdnav_blocks::Block;
    /// let nodes = Block::unit("node", 0.99).replicate(3);
    /// assert_eq!(nodes.len(), 3);
    /// assert_eq!(nodes[0].unit_names(), vec!["node-1"]);
    /// ```
    #[must_use]
    pub fn replicate(&self, n: usize) -> Vec<Block> {
        (1..=n)
            .map(|i| {
                let mut copy = self.clone();
                copy.suffix_names(&format!("-{i}"));
                copy
            })
            .collect()
    }

    fn suffix_names(&mut self, suffix: &str) {
        match self {
            Block::Unit { name, .. } => name.push_str(suffix),
            Block::Series { children }
            | Block::Parallel { children }
            | Block::KOfN { children, .. } => {
                for child in children {
                    child.suffix_names(suffix);
                }
            }
        }
    }

    /// Exact availability of this block under component independence.
    ///
    /// Empty groups follow the k-of-n convention: an empty series (or
    /// `0`-of-`0`) is up; an empty parallel is down.
    #[must_use]
    pub fn availability(&self) -> f64 {
        match self {
            Block::Unit { availability, .. } => *availability,
            Block::Series { children } => children.iter().map(Block::availability).product(),
            Block::Parallel { children } => {
                if children.is_empty() {
                    0.0
                } else {
                    1.0 - children
                        .iter()
                        .map(|c| 1.0 - c.availability())
                        .product::<f64>()
                }
            }
            Block::KOfN { k, children } => {
                let avails: Vec<f64> = children.iter().map(Block::availability).collect();
                k_of_n_heterogeneous(*k as usize, &avails)
            }
        }
    }

    /// Unavailability of this block (`1 - availability`).
    #[must_use]
    pub fn unavailability(&self) -> f64 {
        1.0 - self.availability()
    }

    /// Names of every leaf unit, in depth-first order.
    #[must_use]
    pub fn unit_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        self.collect_unit_names(&mut names);
        names
    }

    fn collect_unit_names(&self, out: &mut Vec<String>) {
        match self {
            Block::Unit { name, .. } => out.push(name.clone()),
            Block::Series { children }
            | Block::Parallel { children }
            | Block::KOfN { children, .. } => {
                for child in children {
                    child.collect_unit_names(out);
                }
            }
        }
    }

    /// Number of leaf units in the diagram.
    #[must_use]
    pub fn unit_count(&self) -> usize {
        match self {
            Block::Unit { .. } => 1,
            Block::Series { children }
            | Block::Parallel { children }
            | Block::KOfN { children, .. } => children.iter().map(Block::unit_count).sum(),
        }
    }

    /// Evaluates the boolean structure function: is the block up given the
    /// per-unit up/down states returned by `state`?
    ///
    /// `state` is called with each unit's name; `true` means up. Units the
    /// caller does not recognize should default to `true` (healthy).
    pub fn is_up<F: FnMut(&str) -> bool>(&self, state: &mut F) -> bool {
        match self {
            Block::Unit { name, .. } => state(name),
            Block::Series { children } => children.iter().all(|c| c.is_up(state)),
            Block::Parallel { children } => {
                !children.is_empty() && children.iter().any(|c| c.is_up(state))
            }
            Block::KOfN { k, children } => {
                let up = children.iter().filter(|c| c.is_up(state)).count();
                up >= *k as usize
            }
        }
    }

    /// Availability with some units pinned up or down.
    ///
    /// `pin` maps a unit name to `Some(true)` (force up), `Some(false)`
    /// (force down), or `None` (use the unit's own availability). This is
    /// the primitive behind Birnbaum importance and what-if analysis.
    pub fn availability_pinned<F: FnMut(&str) -> Option<bool>>(&self, pin: &mut F) -> f64 {
        match self {
            Block::Unit { name, availability } => match pin(name) {
                Some(true) => 1.0,
                Some(false) => 0.0,
                None => *availability,
            },
            Block::Series { children } => children
                .iter()
                .map(|c| c.availability_pinned(pin))
                .product(),
            Block::Parallel { children } => {
                if children.is_empty() {
                    0.0
                } else {
                    1.0 - children
                        .iter()
                        .map(|c| 1.0 - c.availability_pinned(pin))
                        .product::<f64>()
                }
            }
            Block::KOfN { k, children } => {
                let avails: Vec<f64> = children
                    .iter()
                    .map(|c| c.availability_pinned(pin))
                    .collect();
                k_of_n_heterogeneous(*k as usize, &avails)
            }
        }
    }

    /// Structurally simplifies the diagram without changing its
    /// availability or its set of leaf units:
    ///
    /// * nested series within series (and parallel within parallel) are
    ///   flattened;
    /// * single-child groups are unwrapped;
    /// * `n`-of-`n` groups become series, `1`-of-`n` groups become
    ///   parallel, and `0`-of-`n` groups (always up) become a parallel
    ///   including a vacuously-up empty series (children are kept so unit
    ///   identities survive).
    ///
    /// ```
    /// use sdnav_blocks::Block;
    ///
    /// let messy = Block::series(vec![
    ///     Block::series(vec![Block::unit("a", 0.9), Block::unit("b", 0.9)]),
    ///     Block::k_of_n(2, vec![Block::unit("c", 0.9), Block::unit("d", 0.9)]),
    /// ]);
    /// let clean = messy.simplify();
    /// assert_eq!(clean.unit_names(), vec!["a", "b", "c", "d"]);
    /// assert!((clean.availability() - messy.availability()).abs() < 1e-15);
    /// assert!(matches!(clean, Block::Series { ref children } if children.len() == 4));
    /// ```
    #[must_use]
    pub fn simplify(&self) -> Block {
        match self {
            Block::Unit { .. } => self.clone(),
            Block::Series { children } => {
                let mut flat = Vec::new();
                for child in children {
                    match child.simplify() {
                        Block::Series { children } => flat.extend(children),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("one element")
                } else {
                    Block::Series { children: flat }
                }
            }
            Block::Parallel { children } => {
                let mut flat = Vec::new();
                for child in children {
                    match child.simplify() {
                        Block::Parallel { children } => flat.extend(children),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("one element")
                } else {
                    Block::Parallel { children: flat }
                }
            }
            Block::KOfN { k, children } => {
                let simplified: Vec<Block> = children.iter().map(Block::simplify).collect();
                let n = simplified.len();
                if *k == 0 {
                    // A 0-of-n block is always up; keep the children (to
                    // preserve unit identities) in parallel with an empty
                    // series, which is vacuously up.
                    let mut children = simplified;
                    children.push(Block::series(vec![]));
                    return Block::Parallel { children }.simplify();
                }
                if *k as usize == n {
                    Block::Series {
                        children: simplified,
                    }
                    .simplify()
                } else if *k == 1 {
                    Block::Parallel {
                        children: simplified,
                    }
                    .simplify()
                } else {
                    Block::KOfN {
                        k: *k,
                        children: simplified,
                    }
                }
            }
        }
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Block::Unit { name, availability } => {
                writeln!(f, "{pad}[{name} A={availability}]")
            }
            Block::Series { children } => {
                writeln!(f, "{pad}series")?;
                children.iter().try_for_each(|c| c.render(f, indent + 1))
            }
            Block::Parallel { children } => {
                writeln!(f, "{pad}parallel")?;
                children.iter().try_for_each(|c| c.render(f, indent + 1))
            }
            Block::KOfN { k, children } => {
                writeln!(f, "{pad}{k}-of-{n}", n = children.len())?;
                children.iter().try_for_each(|c| c.render(f, indent + 1))
            }
        }
    }
}

impl fmt::Display for Block {
    /// Renders the diagram as an indented ASCII tree.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

impl ToJson for Block {
    fn to_json(&self) -> Json {
        match self {
            Block::Unit { name, availability } => Json::obj(vec![
                ("kind", Json::str("unit")),
                ("name", Json::str(name.clone())),
                ("availability", Json::Num(*availability)),
            ]),
            Block::Series { children } => Json::obj(vec![
                ("kind", Json::str("series")),
                ("children", children.to_json()),
            ]),
            Block::Parallel { children } => Json::obj(vec![
                ("kind", Json::str("parallel")),
                ("children", children.to_json()),
            ]),
            Block::KOfN { k, children } => Json::obj(vec![
                ("kind", Json::str("k_of_n")),
                ("k", k.to_json()),
                ("children", children.to_json()),
            ]),
        }
    }
}

impl FromJson for Block {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = value.field("kind")?.as_str().map_err(|e| e.ctx("kind"))?;
        match kind {
            "unit" => Ok(Block::Unit {
                name: String::from_json(value.field("name")?).map_err(|e| e.ctx("name"))?,
                availability: value
                    .field("availability")?
                    .as_f64()
                    .map_err(|e| e.ctx("availability"))?,
            }),
            "series" => Ok(Block::Series {
                children: Vec::from_json(value.field("children")?)
                    .map_err(|e| e.ctx("children"))?,
            }),
            "parallel" => Ok(Block::Parallel {
                children: Vec::from_json(value.field("children")?)
                    .map_err(|e| e.ctx("children"))?,
            }),
            "k_of_n" => Ok(Block::KOfN {
                k: u32::from_json(value.field("k")?).map_err(|e| e.ctx("k"))?,
                children: Vec::from_json(value.field("children")?)
                    .map_err(|e| e.ctx("children"))?,
            }),
            other => Err(JsonError::decode(format!(
                "unknown block kind `{other}` (expected unit, series, parallel, or k_of_n)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn unit_availability_is_identity() {
        assert_eq!(Block::unit("x", 0.75).availability(), 0.75);
    }

    #[test]
    #[should_panic(expected = "availability must lie in [0, 1]")]
    fn unit_rejects_bad_availability() {
        let _ = Block::unit("x", 1.5);
    }

    #[test]
    fn series_multiplies() {
        let b = Block::series(vec![Block::unit("a", 0.9), Block::unit("b", 0.8)]);
        assert!((b.availability() - 0.72).abs() < EPS);
    }

    #[test]
    fn parallel_complements() {
        let b = Block::parallel(vec![Block::unit("a", 0.9), Block::unit("b", 0.8)]);
        assert!((b.availability() - 0.98).abs() < EPS);
    }

    #[test]
    fn empty_groups() {
        assert_eq!(Block::series(vec![]).availability(), 1.0);
        assert_eq!(Block::parallel(vec![]).availability(), 0.0);
        assert_eq!(Block::k_of_n(0, vec![]).availability(), 1.0);
        assert_eq!(Block::k_of_n(1, vec![]).availability(), 0.0);
    }

    #[test]
    fn kofn_matches_quorum_formula() {
        let b = Block::k_of_n(2, Block::unit("db", 0.9995).replicate(3));
        let a: f64 = 0.9995;
        let expected = a * a * (3.0 - 2.0 * a);
        assert!((b.availability() - expected).abs() < EPS);
    }

    #[test]
    fn nested_structure() {
        // (1-of-2 of (a,b)) in series with c.
        let b = Block::series(vec![
            Block::parallel(vec![Block::unit("a", 0.9), Block::unit("b", 0.9)]),
            Block::unit("c", 0.99),
        ]);
        assert!((b.availability() - 0.99 * (1.0 - 0.01)).abs() < EPS);
    }

    #[test]
    fn replicate_renames_units() {
        let reps = Block::unit("node", 0.9).replicate(3);
        let names: Vec<_> = reps.iter().flat_map(Block::unit_names).collect();
        assert_eq!(names, vec!["node-1", "node-2", "node-3"]);
    }

    #[test]
    fn replicate_renames_nested_units() {
        let inner = Block::series(vec![Block::unit("a", 0.9), Block::unit("b", 0.9)]);
        let reps = inner.replicate(2);
        assert_eq!(reps[1].unit_names(), vec!["a-2", "b-2"]);
    }

    #[test]
    fn unit_count_and_names() {
        let b = Block::series(vec![
            Block::unit("x", 1.0),
            Block::parallel(vec![Block::unit("y", 1.0), Block::unit("z", 1.0)]),
        ]);
        assert_eq!(b.unit_count(), 3);
        assert_eq!(b.unit_names(), vec!["x", "y", "z"]);
    }

    #[test]
    fn is_up_structure_function() {
        let b = Block::k_of_n(2, Block::unit("n", 1.0).replicate(3));
        let all_up = b.is_up(&mut |_| true);
        assert!(all_up);
        let one_down = b.is_up(&mut |name| name != "n-2");
        assert!(one_down);
        let two_down = b.is_up(&mut |name| name == "n-1");
        assert!(!two_down);
    }

    #[test]
    fn pinned_availability() {
        let b = Block::series(vec![Block::unit("a", 0.9), Block::unit("b", 0.8)]);
        let up = b.availability_pinned(&mut |n| (n == "a").then_some(true));
        assert!((up - 0.8).abs() < EPS);
        let down = b.availability_pinned(&mut |n| (n == "a").then_some(false));
        assert_eq!(down, 0.0);
        let neutral = b.availability_pinned(&mut |_| None);
        assert!((neutral - b.availability()).abs() < EPS);
    }

    #[test]
    fn simplify_flattens_nested_series() {
        let messy = Block::series(vec![
            Block::series(vec![Block::unit("a", 0.9)]),
            Block::series(vec![Block::unit("b", 0.8), Block::unit("c", 0.7)]),
        ]);
        let clean = messy.simplify();
        assert!(matches!(clean, Block::Series { ref children } if children.len() == 3));
        assert!((clean.availability() - messy.availability()).abs() < EPS);
    }

    #[test]
    fn simplify_unwraps_singletons() {
        let wrapped = Block::parallel(vec![Block::series(vec![Block::unit("x", 0.5)])]);
        assert_eq!(wrapped.simplify(), Block::unit("x", 0.5));
    }

    #[test]
    fn simplify_converts_degenerate_kofn() {
        let series_like = Block::k_of_n(2, vec![Block::unit("a", 0.9), Block::unit("b", 0.9)]);
        assert!(matches!(series_like.simplify(), Block::Series { .. }));
        let parallel_like = Block::k_of_n(1, vec![Block::unit("a", 0.9), Block::unit("b", 0.9)]);
        assert!(matches!(parallel_like.simplify(), Block::Parallel { .. }));
        // A real quorum is untouched.
        let quorum = Block::k_of_n(2, Block::unit("n", 0.9).replicate(3));
        assert!(matches!(quorum.simplify(), Block::KOfN { k: 2, .. }));
    }

    #[test]
    fn simplify_preserves_availability_and_units() {
        let block = Block::series(vec![
            Block::k_of_n(3, Block::unit("s", 0.99).replicate(3)),
            Block::parallel(vec![
                Block::parallel(vec![Block::unit("p", 0.9), Block::unit("q", 0.9)]),
                Block::unit("r", 0.5),
            ]),
            Block::k_of_n(0, vec![Block::unit("opt", 0.1)]),
        ]);
        let clean = block.simplify();
        assert!((clean.availability() - block.availability()).abs() < EPS);
        let mut before = block.unit_names();
        let mut after = clean.unit_names();
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn display_tree() {
        let b = Block::k_of_n(2, Block::unit("db", 0.9995).replicate(3));
        let s = b.to_string();
        assert!(s.contains("2-of-3"));
        assert!(s.contains("db-1"));
    }

    #[test]
    fn json_round_trip() {
        let b = Block::series(vec![
            Block::unit("a", 0.9),
            Block::k_of_n(2, Block::unit("n", 0.99).replicate(3)),
        ]);
        let json = sdnav_json::to_string(&b);
        assert!(json.contains(r#""kind":"series""#));
        assert!(json.contains(r#""kind":"k_of_n""#));
        let back: Block = sdnav_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn json_rejects_unknown_kind() {
        let err = sdnav_json::from_str::<Block>(r#"{"kind":"mesh"}"#).unwrap_err();
        assert!(err.to_string().contains("unknown block kind"));
    }
}
