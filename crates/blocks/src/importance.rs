//! Component importance measures.
//!
//! Importance measures rank components by how much they matter to system
//! availability — the quantitative version of the paper's "dominant failure
//! mode" discussion (§VI.G). All measures are computed exactly from the
//! block diagram by pinning one component up or down and re-evaluating.

use crate::{Block, System};

/// Importance measures for one component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentImportance {
    /// Component (leaf unit) name.
    pub name: String,
    /// The component's own availability.
    pub availability: f64,
    /// Birnbaum importance: `A(system | i up) − A(system | i down)` — the
    /// probability the component is critical.
    pub birnbaum: f64,
    /// Criticality importance: Birnbaum scaled by the component's
    /// unavailability relative to system unavailability,
    /// `I_B · u_i / U_sys`. The fraction of system downtime attributable to
    /// the component being the critical failure.
    pub criticality: f64,
    /// Risk achievement worth: `U(system | i down) / U(system)` — how much
    /// worse things get if the component is certain to be down.
    pub risk_achievement_worth: f64,
    /// Risk reduction worth: `U(system) / U(system | i up)` — how much
    /// better things get if the component never fails.
    pub risk_reduction_worth: f64,
}

/// Computes importance measures for every component in the system, sorted by
/// descending criticality.
///
/// ```
/// use sdnav_blocks::{Block, System, importance};
///
/// // A weak single point of failure dominates a strong redundant pair.
/// let sys = System::new(Block::series(vec![
///     Block::unit("spof", 0.999),
///     Block::parallel(vec![Block::unit("a", 0.99), Block::unit("b", 0.99)]),
/// ]));
/// let ranked = importance::rank(&sys);
/// assert_eq!(ranked[0].name, "spof");
/// assert!(ranked[0].criticality > 0.9);
/// ```
#[must_use]
pub fn rank(system: &System) -> Vec<ComponentImportance> {
    let base_availability = system.availability();
    let base_unavailability = 1.0 - base_availability;
    let mut out: Vec<ComponentImportance> = system
        .components()
        .iter()
        .map(|name| component(system.block(), name, base_unavailability))
        .collect();
    out.sort_by(|x, y| {
        y.criticality
            .partial_cmp(&x.criticality)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.name.cmp(&y.name))
    });
    out
}

fn component(block: &Block, name: &str, base_unavailability: f64) -> ComponentImportance {
    let a_up = block.availability_pinned(&mut |n| (n == name).then_some(true));
    let a_down = block.availability_pinned(&mut |n| (n == name).then_some(false));
    let own = own_availability(block, name);
    let birnbaum = (a_up - a_down).max(0.0);
    let u_sys = base_unavailability;
    let criticality = if u_sys > 0.0 {
        birnbaum * (1.0 - own) / u_sys
    } else {
        0.0
    };
    let raw = if u_sys > 0.0 {
        (1.0 - a_down) / u_sys
    } else {
        f64::INFINITY
    };
    let u_given_up = 1.0 - a_up;
    let rrw = if u_given_up > 0.0 {
        u_sys / u_given_up
    } else {
        f64::INFINITY
    };
    ComponentImportance {
        name: name.to_owned(),
        availability: own,
        birnbaum,
        criticality,
        risk_achievement_worth: raw,
        risk_reduction_worth: rrw,
    }
}

fn own_availability(block: &Block, target: &str) -> f64 {
    match block {
        Block::Unit { name, availability } => {
            if name == target {
                *availability
            } else {
                f64::NAN
            }
        }
        Block::Series { children }
        | Block::Parallel { children }
        | Block::KOfN { children, .. } => children
            .iter()
            .map(|c| own_availability(c, target))
            .find(|v| !v.is_nan())
            .unwrap_or(f64::NAN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn series_birnbaum_is_product_of_others() {
        let sys = System::new(Block::series(vec![
            Block::unit("a", 0.9),
            Block::unit("b", 0.8),
        ]));
        let ranked = rank(&sys);
        let a = ranked.iter().find(|c| c.name == "a").unwrap();
        // I_B(a) = A(b) = 0.8.
        assert!((a.birnbaum - 0.8).abs() < EPS);
    }

    #[test]
    fn parallel_birnbaum_is_partner_unavailability() {
        let sys = System::new(Block::parallel(vec![
            Block::unit("a", 0.9),
            Block::unit("b", 0.8),
        ]));
        let ranked = rank(&sys);
        let a = ranked.iter().find(|c| c.name == "a").unwrap();
        // I_B(a) = 1 − A(b) = 0.2.
        assert!((a.birnbaum - 0.2).abs() < EPS);
    }

    #[test]
    fn criticalities_sum_to_one_for_series() {
        // For a pure series system the criticality importances partition
        // downtime, summing to slightly above 1 only via joint failures.
        let sys = System::new(Block::series(vec![
            Block::unit("a", 0.999),
            Block::unit("b", 0.9995),
            Block::unit("c", 0.9999),
        ]));
        let total: f64 = rank(&sys).iter().map(|c| c.criticality).sum();
        assert!((total - 1.0).abs() < 2e-3, "total={total}");
    }

    #[test]
    fn spof_dominates() {
        let sys = System::new(Block::series(vec![
            Block::unit("spof", 0.999),
            Block::k_of_n(2, Block::unit("n", 0.999).replicate(3)),
        ]));
        let ranked = rank(&sys);
        assert_eq!(ranked[0].name, "spof");
        assert!(ranked[0].risk_achievement_worth > ranked[1].risk_achievement_worth);
    }

    #[test]
    fn raw_of_irrelevant_component_is_one() {
        // A component in a 1-of-3 group with perfect partners has RAW ≈ 1.
        let sys = System::new(Block::series(vec![
            Block::k_of_n(1, Block::unit("n", 1.0).replicate(3)),
            Block::unit("z", 0.99),
        ]));
        let ranked = rank(&sys);
        let n1 = ranked.iter().find(|c| c.name == "n-1").unwrap();
        assert!((n1.risk_achievement_worth - 1.0).abs() < EPS);
        assert_eq!(n1.birnbaum, 0.0);
    }

    #[test]
    fn rrw_infinite_for_sole_spof() {
        let sys = System::new(Block::unit("only", 0.99));
        let ranked = rank(&sys);
        assert!(ranked[0].risk_reduction_worth.is_infinite());
        assert!((ranked[0].birnbaum - 1.0).abs() < EPS);
    }

    #[test]
    fn perfect_system_has_zero_criticality() {
        let sys = System::new(Block::series(vec![
            Block::unit("a", 1.0),
            Block::unit("b", 1.0),
        ]));
        for c in rank(&sys) {
            assert_eq!(c.criticality, 0.0);
        }
    }

    #[test]
    fn reports_own_availability() {
        let sys = System::new(Block::series(vec![
            Block::unit("a", 0.97),
            Block::unit("b", 0.9),
        ]));
        let ranked = rank(&sys);
        let a = ranked.iter().find(|c| c.name == "a").unwrap();
        assert_eq!(a.availability, 0.97);
    }
}
