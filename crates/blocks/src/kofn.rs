//! `k`-of-`n` availability: the paper's Eq. (1) and generalizations.
//!
//! Eq. (1) of the paper gives the availability of an `m`-of-`n` block of
//! *identical* independent elements with per-element availability `α`:
//!
//! ```text
//! A_{m/n}(α) = Σ_{i=0}^{n-m} C(n, i) α^{n-i} (1-α)^i     for m ≤ n
//!            = 0                                          for m > n
//! ```
//!
//! [`k_of_n`] implements that formula exactly. [`k_of_n_heterogeneous`]
//! generalizes it to elements with distinct availabilities via a standard
//! O(n²) dynamic program over the distribution of the number of elements up.

/// Exact binomial coefficient `C(n, k)` as an `f64`.
///
/// Computed multiplicatively to stay exact for all values representable in
/// an `f64` mantissa (all `n ≤ 57`, and far beyond for small `k`).
///
/// ```
/// use sdnav_blocks::kofn::binomial;
/// assert_eq!(binomial(3, 2), 3.0);
/// assert_eq!(binomial(10, 5), 252.0);
/// assert_eq!(binomial(5, 0), 1.0);
/// assert_eq!(binomial(4, 7), 0.0);
/// ```
#[must_use]
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0_f64;
    for i in 0..k {
        acc = acc * f64::from(n - i) / f64::from(i + 1);
    }
    acc.round()
}

/// The paper's Eq. (1): availability of an `m`-of-`n` block of identical
/// independent elements, each with availability `alpha`.
///
/// At least `m` of the `n` elements must be up for the block to be up.
/// Degenerate cases follow the formula: `m = 0` yields `1.0` (the block needs
/// nothing), and `m > n` yields `0.0` (the block can never be satisfied).
///
/// ```
/// use sdnav_blocks::kofn::k_of_n;
///
/// // "2 of 3" database quorum at α = 0.9998:
/// let a = k_of_n(2, 3, 0.9998);
/// assert!((1.0 - a - 3.0 * 2e-4_f64.powi(2) + 2.0 * 2e-4_f64.powi(3)).abs() < 1e-15);
///
/// assert_eq!(k_of_n(0, 3, 0.5), 1.0); // "0 of 3" processes (supervisor, nodemgr)
/// assert_eq!(k_of_n(4, 3, 0.9), 0.0); // impossible quorum
/// ```
///
/// # Panics
///
/// Panics if `alpha` is not in `[0, 1]`.
#[must_use]
pub fn k_of_n(m: u32, n: u32, alpha: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&alpha),
        "alpha must lie in [0, 1], got {alpha}"
    );
    if m > n {
        return 0.0;
    }
    if m == 0 {
        return 1.0;
    }
    // Σ_{i=0}^{n-m} C(n,i) α^{n-i} (1-α)^i, summed from the largest term
    // (i = 0) down so the partial sums stay well conditioned.
    let q = 1.0 - alpha;
    let mut total = 0.0_f64;
    for i in 0..=(n - m) {
        total += binomial(n, i) * alpha.powi((n - i) as i32) * q.powi(i as i32);
    }
    total.clamp(0.0, 1.0)
}

/// Unavailability of an `m`-of-`n` block: `1 - A_{m/n}(α)`, computed from the
/// complementary sum for accuracy when the unavailability is tiny.
///
/// For high-availability systems `1 - k_of_n(..)` loses precision to
/// catastrophic cancellation; this sums the failure terms directly:
///
/// ```
/// use sdnav_blocks::kofn::{k_of_n, k_of_n_unavailability};
///
/// let u = k_of_n_unavailability(2, 3, 0.999999);
/// // Direct complement would round to ~3e-12 with only a few good digits.
/// assert!((u - (3.0 * 1e-12_f64 - 2.0 * 1e-18)).abs() < 1e-20);
/// ```
///
/// # Panics
///
/// Panics if `alpha` is not in `[0, 1]`.
#[must_use]
pub fn k_of_n_unavailability(m: u32, n: u32, alpha: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&alpha),
        "alpha must lie in [0, 1], got {alpha}"
    );
    if m > n {
        return 1.0;
    }
    if m == 0 {
        return 0.0;
    }
    // 1 - A = Σ_{i=n-m+1}^{n} C(n,i) α^{n-i} (1-α)^i  (too many failures).
    let q = 1.0 - alpha;
    let mut total = 0.0_f64;
    for i in (n - m + 1)..=n {
        total += binomial(n, i) * alpha.powi((n - i) as i32) * q.powi(i as i32);
    }
    total.clamp(0.0, 1.0)
}

/// Availability of a `k`-of-`n` block of *heterogeneous* independent
/// elements with availabilities `alphas` (so `n = alphas.len()`).
///
/// Uses the standard dynamic program over "number of elements up", O(n²)
/// time and O(n) space. Reduces to [`k_of_n`] when all availabilities are
/// equal.
///
/// ```
/// use sdnav_blocks::kofn::k_of_n_heterogeneous;
///
/// // 1-of-2 with distinct elements = parallel pair.
/// let a = k_of_n_heterogeneous(1, &[0.9, 0.8]);
/// assert!((a - (1.0 - 0.1 * 0.2)).abs() < 1e-12);
///
/// // 2-of-2 = series.
/// let a = k_of_n_heterogeneous(2, &[0.9, 0.8]);
/// assert!((a - 0.72).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if any availability is outside `[0, 1]`.
#[must_use]
pub fn k_of_n_heterogeneous(k: usize, alphas: &[f64]) -> f64 {
    for &a in alphas {
        assert!(
            (0.0..=1.0).contains(&a),
            "availability must lie in [0, 1], got {a}"
        );
    }
    if k > alphas.len() {
        return 0.0;
    }
    if k == 0 {
        return 1.0;
    }
    // dist[j] = P(exactly j of the elements considered so far are up).
    let mut dist = vec![0.0_f64; alphas.len() + 1];
    dist[0] = 1.0;
    for (idx, &a) in alphas.iter().enumerate() {
        for j in (0..=idx).rev() {
            let p = dist[j];
            dist[j + 1] += p * a;
            dist[j] = p * (1.0 - a);
        }
    }
    dist[k..].iter().sum::<f64>().clamp(0.0, 1.0)
}

/// Distribution of the number of independent elements that are up.
///
/// Returns a vector `d` of length `alphas.len() + 1` with
/// `d[j] = P(exactly j elements up)`. This is the building block for the
/// paper's conditional decompositions (Eqs. 2, 4, 5, 7), which weight
/// conditional availabilities by "x hosts up" / "x racks up" probabilities.
///
/// ```
/// use sdnav_blocks::kofn::up_count_distribution;
///
/// let d = up_count_distribution(&[0.9, 0.9, 0.9]);
/// assert!((d[3] - 0.729).abs() < 1e-12);
/// assert!((d[2] - 3.0 * 0.081).abs() < 1e-12);
/// assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if any availability is outside `[0, 1]`.
#[must_use]
pub fn up_count_distribution(alphas: &[f64]) -> Vec<f64> {
    for &a in alphas {
        assert!(
            (0.0..=1.0).contains(&a),
            "availability must lie in [0, 1], got {a}"
        );
    }
    let mut dist = vec![0.0_f64; alphas.len() + 1];
    dist[0] = 1.0;
    for (idx, &a) in alphas.iter().enumerate() {
        for j in (0..=idx).rev() {
            let p = dist[j];
            dist[j + 1] += p * a;
            dist[j] = p * (1.0 - a);
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(3, 0), 1.0);
        assert_eq!(binomial(3, 1), 3.0);
        assert_eq!(binomial(3, 3), 1.0);
        assert_eq!(binomial(12, 6), 924.0);
        assert_eq!(binomial(2, 3), 0.0);
    }

    #[test]
    fn binomial_is_symmetric() {
        for n in 0..20u32 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1..30u32 {
            for k in 1..n {
                assert_eq!(
                    binomial(n, k),
                    binomial(n - 1, k - 1) + binomial(n - 1, k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn one_of_one_is_alpha() {
        assert!((k_of_n(1, 1, 0.37) - 0.37).abs() < EPS);
    }

    #[test]
    fn n_of_n_is_power() {
        assert!((k_of_n(3, 3, 0.9) - 0.9f64.powi(3)).abs() < EPS);
    }

    #[test]
    fn one_of_n_is_parallel() {
        let expected = 1.0 - 0.1f64.powi(3);
        assert!((k_of_n(1, 3, 0.9) - expected).abs() < EPS);
    }

    #[test]
    fn two_of_three_closed_form() {
        // A_{2/3} = 3α² − 2α³ = α²(3 − 2α), the paper's conclusion formula.
        for &a in &[0.0, 0.3, 0.9, 0.9995, 1.0] {
            let expected = a * a * (3.0 - 2.0 * a);
            assert!((k_of_n(2, 3, a) - expected).abs() < EPS, "alpha={a}");
        }
    }

    #[test]
    fn one_of_three_closed_form() {
        // A_{1/3} = 3α − 3α² + α³... equivalently 1 − (1−α)³.
        for &a in &[0.0f64, 0.25, 0.999, 1.0] {
            let expected = 1.0 - (1.0 - a).powi(3);
            assert!((k_of_n(1, 3, a) - expected).abs() < EPS, "alpha={a}");
        }
    }

    #[test]
    fn degenerate_cases_follow_eq1() {
        assert_eq!(k_of_n(0, 3, 0.0), 1.0);
        assert_eq!(k_of_n(0, 0, 0.5), 1.0);
        assert_eq!(k_of_n(4, 3, 1.0), 0.0);
        assert_eq!(k_of_n(1, 3, 0.0), 0.0);
        assert_eq!(k_of_n(3, 3, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must lie in [0, 1]")]
    fn k_of_n_rejects_bad_alpha() {
        let _ = k_of_n(1, 2, 1.5);
    }

    // The four structural edge cases the `sdnav-audit` SA006 check reasons
    // about, pinned here for every k-of-n entry point so the lint rules and
    // the math can never drift apart.

    #[test]
    fn edge_k_zero_is_always_up() {
        for &a in &[0.0, 0.5, 1.0] {
            for n in [0u32, 1, 5] {
                assert_eq!(k_of_n(0, n, a), 1.0, "n={n} a={a}");
                assert_eq!(k_of_n_unavailability(0, n, a), 0.0, "n={n} a={a}");
            }
        }
        assert_eq!(k_of_n_heterogeneous(0, &[0.2, 0.9]), 1.0);
    }

    #[test]
    fn edge_k_equals_n_is_series() {
        for &a in &[0.0f64, 0.3, 0.999, 1.0] {
            for n in [1u32, 2, 5] {
                let expected = a.powi(n as i32);
                assert!((k_of_n(n, n, a) - expected).abs() < EPS, "n={n} a={a}");
            }
        }
        let alphas = [0.9, 0.8, 0.7];
        let expected: f64 = alphas.iter().product();
        assert!((k_of_n_heterogeneous(3, &alphas) - expected).abs() < EPS);
    }

    #[test]
    fn edge_k_exceeds_n_is_never_up() {
        for &a in &[0.0, 0.5, 1.0] {
            assert_eq!(k_of_n(4, 3, a), 0.0, "a={a}");
            assert_eq!(k_of_n(1, 0, a), 0.0, "a={a}");
            assert_eq!(k_of_n_unavailability(4, 3, a), 1.0, "a={a}");
        }
        assert_eq!(k_of_n_heterogeneous(3, &[0.9, 0.9]), 0.0);
    }

    #[test]
    fn edge_empty_set_follows_k() {
        // n = 0: a 0-of-0 block is vacuously up, anything else impossible.
        assert_eq!(k_of_n(0, 0, 0.7), 1.0);
        assert_eq!(k_of_n(1, 0, 0.7), 0.0);
        assert_eq!(k_of_n_unavailability(0, 0, 0.7), 0.0);
        assert_eq!(k_of_n_unavailability(1, 0, 0.7), 1.0);
        assert_eq!(up_count_distribution(&[]), vec![1.0]);
    }

    #[test]
    fn unavailability_complements_availability() {
        for m in 0..=4u32 {
            for n in 0..=4u32 {
                for &a in &[0.0, 0.2, 0.5, 0.99, 1.0] {
                    let sum = k_of_n(m, n, a) + k_of_n_unavailability(m, n, a);
                    assert!((sum - 1.0).abs() < EPS, "m={m} n={n} a={a} sum={sum}");
                }
            }
        }
    }

    #[test]
    fn unavailability_keeps_precision_at_high_availability() {
        let a = 1.0 - 1e-9;
        let u = k_of_n_unavailability(2, 3, a);
        // Leading term 3(1-α)² = 3e-18. The only precision loss is the
        // representation of 1-α itself (~1e-7 relative), far better than
        // the total cancellation a direct 1 - k_of_n(..) would suffer.
        let expected = 3.0 * 1e-18 - 2.0 * 1e-27;
        assert!((u - expected).abs() / expected < 1e-6);
        assert!(u > 0.0);
    }

    #[test]
    fn heterogeneous_reduces_to_identical() {
        for k in 0..=5usize {
            for &a in &[0.1, 0.7, 0.999] {
                let hom = k_of_n(k as u32, 5, a);
                let het = k_of_n_heterogeneous(k, &[a; 5]);
                assert!((hom - het).abs() < EPS, "k={k} a={a}");
            }
        }
    }

    #[test]
    fn heterogeneous_empty_set() {
        assert_eq!(k_of_n_heterogeneous(0, &[]), 1.0);
        assert_eq!(k_of_n_heterogeneous(1, &[]), 0.0);
    }

    #[test]
    fn heterogeneous_brute_force_check() {
        // Compare against 2^n enumeration for a small mixed system.
        let alphas = [0.9, 0.5, 0.75, 0.99];
        for k in 0..=4usize {
            let mut expected = 0.0;
            for mask in 0u32..16 {
                let mut p = 1.0;
                let mut up = 0;
                for (i, &a) in alphas.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        p *= a;
                        up += 1;
                    } else {
                        p *= 1.0 - a;
                    }
                }
                if up >= k {
                    expected += p;
                }
            }
            let got = k_of_n_heterogeneous(k, &alphas);
            assert!((got - expected).abs() < EPS, "k={k}");
        }
    }

    #[test]
    fn up_count_distribution_sums_to_one() {
        let d = up_count_distribution(&[0.9, 0.5, 0.8, 0.99, 0.1]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < EPS);
    }

    #[test]
    fn up_count_distribution_matches_binomial_for_identical() {
        let a: f64 = 0.97;
        let d = up_count_distribution(&[a; 4]);
        for (j, item) in d.iter().enumerate() {
            let expected = binomial(4, j as u32) * a.powi(j as i32) * (1.0 - a).powi(4 - j as i32);
            assert!((item - expected).abs() < EPS, "j={j}");
        }
    }
}
