//! End-to-end tests of the `sdnav` binary.

use std::process::Command;

fn sdnav_raw(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sdnav"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn sdnav(args: &[&str]) -> (bool, String, String) {
    let out = sdnav_raw(args);
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Exit code of a run (the CLI contract: 0 success, 1 failure, 2 usage).
fn sdnav_code(args: &[&str]) -> i32 {
    sdnav_raw(args).status.code().expect("exit code")
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = sdnav(&["help"]);
    assert!(ok);
    for cmd in ["tables", "fig3", "fmea", "simulate", "sensitivity"] {
        assert!(stdout.contains(cmd), "help is missing {cmd}");
    }
}

#[test]
fn no_subcommand_shows_help() {
    let (ok, stdout, _) = sdnav(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, stderr) = sdnav(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn tables_render_paper_tables() {
    let (ok, stdout, _) = sdnav(&["tables"]);
    assert!(ok);
    assert!(stdout.contains("Table I"));
    assert!(stdout.contains("zookeeper"));
    assert!(stdout.contains("2 of 3"));
    assert!(stdout.contains("Table III"));
}

#[test]
fn hw_reports_three_topologies() {
    let (ok, stdout, _) = sdnav(&["hw"]);
    assert!(ok);
    for name in ["Small", "Medium", "Large"] {
        assert!(stdout.contains(name));
    }
    // The Fig. 3 headline value.
    assert!(stdout.contains("0.999989"));
}

#[test]
fn hw_rejects_bad_a_c() {
    let (ok, _, stderr) = sdnav(&["hw", "--a-c", "1.5"]);
    assert!(!ok || stderr.contains("a_c"), "should reject a_c=1.5");
}

#[test]
fn sw_scenario_flag() {
    let (ok, stdout, _) = sdnav(&["sw", "--scenario", "required"]);
    assert!(ok);
    assert!(stdout.contains("SupervisorRequired"));
    let (ok, _, stderr) = sdnav(&["sw", "--scenario", "sometimes"]);
    assert!(!ok);
    assert!(stderr.contains("scenario"));
}

#[test]
fn fig3_csv_is_parseable() {
    let (ok, stdout, _) = sdnav(&["fig3", "--points", "5", "--csv"]);
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6); // header + 5 rows
    assert!(lines[0].starts_with("A_C,"));
    for line in &lines[1..] {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 4);
        for f in fields {
            let _: f64 = f.parse().expect("numeric CSV cell");
        }
    }
}

#[test]
fn fmea_sw_only_filters_hardware() {
    let (ok, stdout, _) = sdnav(&[
        "fmea",
        "--layout",
        "large",
        "--sw-only",
        "--scenario",
        "required",
    ]);
    assert!(ok);
    assert!(stdout.contains("Database"));
    assert!(!stdout.contains("rack-"), "hardware leaked into --sw-only");
}

#[test]
fn importance_ranks_vrouter_supervisor() {
    let (ok, stdout, _) = sdnav(&["importance", "--layout", "large", "--scenario", "required"]);
    assert!(ok);
    assert!(stdout.contains("compute-host/supervisor"));
}

#[test]
fn nodes_flag_scales_cluster() {
    let (ok, stdout, _) = sdnav(&[
        "sw",
        "--layout",
        "large",
        "--nodes",
        "5",
        "--scenario",
        "required",
    ]);
    assert!(ok);
    // 5-node Large CP downtime is far below the 3-node 1.4 m/y.
    assert!(stdout.contains("Large"));
    let (ok, _, stderr) = sdnav(&["sw", "--nodes", "4"]);
    assert!(!ok);
    assert!(stderr.contains("odd"));
}

#[test]
fn spec_round_trips_through_file() {
    let dir = std::env::temp_dir().join("sdnav-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spec.json");
    let path_str = path.to_str().unwrap();

    let (ok, _, _) = sdnav(&["spec", "--out", path_str]);
    assert!(ok);
    let (ok, stdout, _) = sdnav(&["hw", "--spec", path_str]);
    assert!(ok);
    assert!(stdout.contains("0.999989"));

    // A corrupt spec is rejected cleanly.
    std::fs::write(&path, "{not json").unwrap();
    let (ok, _, stderr) = sdnav(&["hw", "--spec", path_str]);
    assert!(!ok);
    assert!(stderr.contains("cannot parse"));
}

#[test]
fn plan_frontier_and_target() {
    let (ok, stdout, _) = sdnav(&["plan", "--target", "2.0"]);
    assert!(ok);
    assert!(stdout.contains("Pareto frontier"));
    // The rack-separated Small dominates both Medium AND the paper's Large.
    assert!(stdout.contains("Small-3R"));
    assert!(
        !stdout.contains("Medium"),
        "Medium must not be Pareto optimal"
    );
    assert!(!stdout.contains("Large"), "Large is dominated by Small-3R");
    assert!(stdout.contains("cheapest meeting"));
}

#[test]
fn harden_answers_and_refuses() {
    let (ok, stdout, _) = sdnav(&[
        "harden",
        "--target",
        "1.0",
        "--layout",
        "large",
        "--scenario",
        "required",
    ]);
    assert!(ok);
    assert!(stdout.contains("required auto-restart process availability"));
    // The Small rack floor makes 1 m/y unreachable.
    let (ok, stdout, _) = sdnav(&["harden", "--target", "1.0", "--layout", "small"]);
    assert!(ok);
    assert!(stdout.contains("out of reach"));
    // Missing target is an error.
    let (ok, _, stderr) = sdnav(&["harden"]);
    assert!(!ok);
    assert!(stderr.contains("--target"));
}

#[test]
fn bundled_onos_spec_loads() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/onos-like.json"
    );
    let (ok, stdout, stderr) = sdnav(&["sw", "--spec", path, "--scenario", "required"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Small"));
    let (ok, stdout, _) = sdnav(&["tables", "--spec", path]);
    assert!(ok);
    assert!(stdout.contains("atomix"));
    assert!(stdout.contains("2 of 3"));
}

#[test]
fn usage_errors_exit_2_failures_exit_1() {
    // Malformed invocations → 2.
    assert_eq!(sdnav_code(&["frobnicate"]), 2);
    assert_eq!(sdnav_code(&["sweep", "--figures", "fig9"]), 2);
    assert_eq!(sdnav_code(&["fig3", "--points", "abc"]), 2);
    assert_eq!(sdnav_code(&["simulate", "--scenario", "sometimes"]), 2);
    assert_eq!(sdnav_code(&["sweep", "--format", "yaml"]), 2);
    // Well-formed requests that fail → 1.
    assert_eq!(sdnav_code(&["lint", "--spec", "/no/such/file.json"]), 1);
    assert_eq!(sdnav_code(&["fig4", "--points", "0"]), 1);
    // Success → 0.
    assert_eq!(sdnav_code(&["help"]), 0);
}

#[test]
fn sweep_results_are_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        sdnav_raw(&[
            "sweep",
            "--points",
            "3",
            "--replications",
            "2",
            "--horizon",
            "2000",
            "--accelerate",
            "500",
            "--threads",
            threads,
            "--format",
            "json",
        ])
    };
    let one = run("1");
    assert!(
        one.status.success(),
        "{}",
        String::from_utf8_lossy(&one.stderr)
    );
    let four = run("4");
    assert!(four.status.success());
    assert_eq!(
        one.stdout, four.stdout,
        "sweep results must not depend on --threads"
    );
    // Run-varying metrics go to stderr, never into the result payload.
    let metrics = String::from_utf8_lossy(&four.stderr);
    assert!(metrics.contains("sdnav-sweep-metrics/v1"), "{metrics}");
    let results = String::from_utf8_lossy(&one.stdout);
    assert!(results.contains("sdnav-sweep-results/v1"));
    assert!(!results.contains("execute_ms"));
}

#[test]
fn sweep_human_output_renders_requested_figures() {
    let (ok, stdout, stderr) = sdnav(&["sweep", "--figures", "fig3,fig5", "--points", "3"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Fig. 3"));
    assert!(!stdout.contains("Fig. 4"));
    assert!(stdout.contains("Fig. 5"));
    assert!(stderr.contains("sweep metrics"));
    assert!(stderr.contains("cache"));
}

#[test]
fn lint_topology_flags_broken_and_accepts_valid() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/sa012_unassigned_role.topo.json"
    );
    let out = sdnav_raw(&["lint", "--topology", fixture]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("SA012"));

    // A faithful Small topology audits clean through the same path.
    let spec = sdnav_core::ControllerSpec::opencontrail_3x();
    let path = std::env::temp_dir().join("sdnav_cli_test_small.topo.json");
    let topo = sdnav_core::Topology::small(&spec);
    std::fs::write(&path, sdnav_json::to_string(&topo)).unwrap();
    let out = sdnav_raw(&["lint", "--topology", path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

fn fixture(name: &str) -> String {
    format!("{}/../../tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Copies a fixture into a scratch dir so `--fix` can rewrite it.
fn scratch_copy(name: &str, tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sdnav-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let dest = dir.join(format!("{tag}_{name}"));
    std::fs::copy(fixture(name), &dest).unwrap();
    dest
}

#[test]
fn lint_reports_sa014_with_fix_hint_in_json() {
    let (ok, stdout, _) = sdnav(&[
        "lint",
        "--spec",
        &fixture("sa014_fit_magnitude_slip.json"),
        "--format",
        "json",
    ]);
    assert!(ok, "SA014 is warn-level; exit 0 without --deny-warnings");
    assert!(stdout.contains("\"SA014\""), "{stdout}");
    assert!(stdout.contains("lint --fix"), "hint must mention the fixer");
    // The gate mode rejects it.
    assert_eq!(
        sdnav_code(&[
            "lint",
            "--deny-warnings",
            "--spec",
            &fixture("sa014_fit_magnitude_slip.json"),
        ]),
        1
    );
}

#[test]
fn lint_fix_rewrites_and_relints_clean() {
    let path = scratch_copy("sa014_fit_magnitude_slip.json", "apply");
    let path = path.to_str().unwrap();
    let (ok, stdout, stderr) = sdnav(&["lint", "--fix", "--spec", path]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("fix[SA014]"), "{stdout}");
    assert!(stderr.contains("rewrote"), "{stderr}");
    // The rewritten spec carries the unit annotation and re-lints clean
    // even under the strictest gate.
    let text = std::fs::read_to_string(path).unwrap();
    assert!(text.contains("\"unit\": \"hours\""), "{text}");
    let (ok, stdout, _) = sdnav(&["lint", "--deny-warnings", "--spec", path]);
    assert!(ok, "{stdout}");
    assert!(!stdout.contains("SA014"));
    // Fixing a fixed file is a no-op.
    let before = std::fs::read(path).unwrap();
    let (ok, stdout, _) = sdnav(&["lint", "--fix", "--spec", path]);
    assert!(ok);
    assert!(stdout.contains("nothing auto-fixable"), "{stdout}");
    assert_eq!(before, std::fs::read(path).unwrap());
}

#[test]
fn lint_fix_dry_run_leaves_file_byte_identical_and_gates() {
    let path = scratch_copy("sa014_fit_magnitude_slip.json", "dry");
    let path = path.to_str().unwrap();
    let before = std::fs::read(path).unwrap();
    let out = sdnav_raw(&["lint", "--fix", "--dry-run", "--spec", path]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Pending fixes make --fix --dry-run exit nonzero, so CI can use it
    // as a "would anything change?" gate.
    assert_eq!(out.status.code(), Some(1), "{stdout}{stderr}");
    assert!(
        stderr.contains("auto-fixable finding(s) pending"),
        "{stderr}"
    );
    assert!(stdout.contains("fix[SA014]"), "plan must be printed");
    assert_eq!(
        before,
        std::fs::read(path).unwrap(),
        "--dry-run must not write"
    );
}

#[test]
fn lint_fix_dry_run_clean_spec_exits_zero() {
    let path = scratch_copy("clean_fit_annotated.json", "drygate");
    let path = path.to_str().unwrap();
    let (ok, _, stderr) = sdnav(&["lint", "--fix", "--dry-run", "--spec", path]);
    assert!(ok, "nothing to fix must exit 0: {stderr}");
}

#[test]
fn lint_ctmc_runs_structural_passes() {
    let (ok, stdout, _) = sdnav(&["lint", "--ctmc", &fixture("sa025_transient_trap.ctmc.json")]);
    assert!(ok, "warnings alone must not fail lint");
    assert!(stdout.contains("SA025"), "{stdout}");
    assert_eq!(
        sdnav_code(&[
            "lint",
            "--ctmc",
            &fixture("sa025_transient_trap.ctmc.json"),
            "--deny-warnings",
        ]),
        1
    );
    let (ok, _, _) = sdnav(&["lint", "--ctmc", &fixture("clean_repairable.ctmc.json")]);
    assert!(ok);
}

#[test]
fn lint_grid_flags_duplicate_cells() {
    let (ok, stdout, _) = sdnav(&[
        "lint",
        "--grid",
        &fixture("sa030_duplicate_cells.grid.json"),
    ]);
    assert!(!ok, "SA030 is an error");
    assert!(stdout.contains("SA030"), "{stdout}");
    let (ok, _, stderr) = sdnav(&["lint", "--grid", &fixture("clean_smoke.grid.json")]);
    assert!(ok, "{stderr}");
}

#[test]
fn sweep_dry_run_emits_plan_without_running() {
    let (ok, stdout, stderr) = sdnav(&[
        "sweep",
        "--dry-run",
        "--figures",
        "fig4,fig5",
        "--points",
        "5",
        "--replications",
        "3",
    ]);
    assert!(ok, "{stderr}");
    let plan = sdnav_json::Json::parse(&stdout).expect("plan is JSON");
    assert_eq!(
        plan.get("schema").and_then(|s| s.as_str().ok()),
        Some("sdnav-sweep-plan/v1")
    );
    // fig4 and fig5 share all four cache keys per x point, so the static
    // model predicts exactly half the lookups hit.
    let cache = plan.get("predicted_cache").expect("predicted_cache");
    let hit_rate = cache.get("hit_rate").unwrap().as_f64().unwrap();
    assert!((hit_rate - 0.5).abs() < 1e-12, "hit_rate = {hit_rate}");
    assert!(
        stderr.is_empty(),
        "clean grid must audit silently: {stderr}"
    );
}

#[test]
fn lint_sarif_output_is_valid() {
    let (ok, stdout, _) = sdnav(&[
        "lint",
        "--spec",
        &fixture("sa014_fit_magnitude_slip.json"),
        "--format",
        "sarif",
    ]);
    assert!(ok);
    let sarif = sdnav_json::Json::parse(&stdout).expect("SARIF output parses as JSON");
    sdnav_audit::validate_sarif(&sarif).expect("SARIF output validates");
    assert!(stdout.contains("\"ruleId\": \"SA014\""), "{stdout}");
    assert!(
        stdout.contains("sa014_fit_magnitude_slip.json"),
        "artifact uri must point at the linted file"
    );
    // A clean model still emits a valid (empty-results) log.
    let (ok, stdout, _) = sdnav(&["lint", "--format", "sarif"]);
    assert!(ok);
    let sarif = sdnav_json::Json::parse(&stdout).unwrap();
    sdnav_audit::validate_sarif(&sarif).unwrap();
}

#[test]
fn lint_spec_set_flags_unit_drift() {
    let out = sdnav_raw(&[
        "lint",
        "--deny-warnings",
        "--spec-set",
        &fixture("sa018_unit_drift.set.json"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("SA018"));
}

#[test]
fn lint_block_audits_and_fixes_standalone_rbds() {
    let out = sdnav_raw(&["lint", "--block", &fixture("sa006_k_exceeds_n.block.json")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("SA006"));

    // A trivially-simplifiable k=n group is rewritten in place.
    let dir = std::env::temp_dir().join("sdnav-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("k_equals_n.block.json");
    std::fs::write(
        &path,
        r#"{"kind": "k_of_n", "k": 2, "children": [
            {"kind": "unit", "name": "a", "availability": 0.999},
            {"kind": "unit", "name": "b", "availability": 0.999}
        ]}"#,
    )
    .unwrap();
    let path = path.to_str().unwrap();
    let (ok, stdout, _) = sdnav(&["lint", "--fix", "--block", path]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("fix[SA006]"), "{stdout}");
    let text = std::fs::read_to_string(path).unwrap();
    assert!(text.contains("\"series\""), "{text}");
    let (ok, _, _) = sdnav(&["lint", "--deny-warnings", "--block", path]);
    assert!(ok);
}

#[test]
fn lint_flag_combinations_are_usage_checked() {
    // Mutually exclusive artifact selectors.
    assert_eq!(sdnav_code(&["lint", "--spec", "a", "--block", "b"]), 2);
    // --dry-run without --fix.
    assert_eq!(sdnav_code(&["lint", "--dry-run"]), 2);
    // --fix cannot target a whole sweep grid or combine with --topology.
    assert_eq!(
        sdnav_code(&[
            "lint",
            "--fix",
            "--spec-set",
            &fixture("sa018_unit_drift.set.json"),
        ]),
        2
    );
    assert_eq!(sdnav_code(&["lint", "--fix", "--topology", "t.json"]), 2);
    // Unknown formats.
    assert_eq!(sdnav_code(&["lint", "--format", "yaml"]), 2);
}

#[test]
fn lint_campaign_fixtures_round_trip() {
    // Seeded campaign defects trip their codes through `--campaign`.
    let out = sdnav_raw(&[
        "lint",
        "--campaign",
        &fixture("sa020_unknown_target.campaign.json"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("SA020"));
    // The clean campaign passes even under the strict gate.
    let (ok, stdout, _) = sdnav(&[
        "lint",
        "--deny-warnings",
        "--campaign",
        &fixture("clean_rack_fail.campaign.json"),
    ]);
    assert!(ok, "{stdout}");
    // `--fix` cannot rewrite campaigns; `--campaign` is exclusive with
    // the other artifact selectors.
    assert_eq!(
        sdnav_code(&[
            "lint",
            "--fix",
            "--campaign",
            &fixture("clean_rack_fail.campaign.json"),
        ]),
        2
    );
    assert_eq!(sdnav_code(&["lint", "--spec", "a", "--campaign", "b"]), 2);
}

#[test]
fn chaos_run_reports_attribution() {
    let (ok, stdout, stderr) = sdnav(&[
        "chaos",
        "run",
        "--campaign",
        &fixture("clean_rack_fail.campaign.json"),
        "--horizon",
        "20000",
        "--seed",
        "3",
    ]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("rack0-outage"), "{stdout}");
    assert!(stdout.contains("organic"), "{stdout}");
    // Usage contract: the action is required, unknown actions are refused,
    // and a campaign file is mandatory.
    assert_eq!(sdnav_code(&["chaos"]), 2);
    assert_eq!(sdnav_code(&["chaos", "stop"]), 2);
    assert_eq!(sdnav_code(&["chaos", "run"]), 2);
    // A structurally broken campaign is a failure, not a usage error.
    assert_eq!(
        sdnav_code(&[
            "chaos",
            "run",
            "--campaign",
            &fixture("sa023_zero_crews.campaign.json"),
        ]),
        1
    );
}

#[test]
fn chaos_json_report_is_valid_and_serializes_nan_as_null() {
    // A horizon this short sees no organic CP outage and the campaign's
    // first injection lies beyond it, so cp_outage_mean_hours is NaN —
    // which must serialize as null, never as `NaN` (invalid JSON).
    let (ok, stdout, stderr) = sdnav(&[
        "chaos",
        "run",
        "--campaign",
        &fixture("clean_rack_fail.campaign.json"),
        "--horizon",
        "100",
        "--accelerate",
        "1",
        "--format",
        "json",
    ]);
    assert!(ok, "{stdout}{stderr}");
    let report = sdnav_json::Json::parse(&stdout).expect("chaos report must be valid JSON");
    assert!(
        stdout.contains("\"cp_outage_mean_hours\": null"),
        "{stdout}"
    );
    assert_eq!(
        report.field("schema").unwrap().as_str().unwrap(),
        "sdnav-chaos-report/v1"
    );
    // Ledger totals account for 100% of the reported outage-hours.
    let ledger = report.field("ledger").unwrap();
    let total = ledger
        .field("cp_outage_hours_total")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(total, 0.0);
}

#[test]
fn sweep_campaign_json_is_valid_and_parseable() {
    let (ok, stdout, stderr) = sdnav(&[
        "sweep",
        "--figures",
        "fig3",
        "--points",
        "2",
        "--replications",
        "1",
        "--horizon",
        "2000",
        "--accelerate",
        "500",
        "--campaign",
        &fixture("clean_rack_fail.campaign.json"),
        "--crews",
        "1,2",
        "--ccf",
        "0,1",
        "--format",
        "json",
    ]);
    assert!(ok, "{stderr}");
    let results = sdnav_json::Json::parse(&stdout).expect("sweep results must be valid JSON");
    let chaos = results.field("chaos").unwrap().as_arr().unwrap();
    assert_eq!(chaos.len(), 2 * 2 * 2, "crews × ccf × topologies");
    // The axes flags are rejected without a campaign.
    assert_eq!(sdnav_code(&["sweep", "--crews", "1,2"]), 2);
    assert_eq!(sdnav_code(&["sweep", "--ccf", "0.5"]), 2);
}

/// Scratch path unique to this test binary run.
fn scratch_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sdnav-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}_{name}", std::process::id()))
}

/// The small supervised-sweep workload shared by the robustness tests.
const SMALL_SWEEP: &[&str] = &[
    "sweep",
    "--figures",
    "fig4",
    "--points",
    "2",
    "--replications",
    "1",
    "--horizon",
    "2000",
    "--accelerate",
    "500",
    "--format",
    "json",
];

#[test]
fn sweep_quarantines_injected_panic_and_exits_partial() {
    let partial = scratch_path("quarantine_partial.json");
    let quarantine = scratch_path("quarantine_report.json");
    let out = sdnav_raw(
        &[
            SMALL_SWEEP,
            &[
                "--inject-panic",
                "1",
                "--retries",
                "1",
                "--backoff-ms",
                "1",
                "--out",
                partial.to_str().unwrap(),
                "--quarantine-out",
                quarantine.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    // Partial success: quarantined cells ⇒ documented exit code 3.
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("partial:"), "{stderr}");
    assert!(stderr.contains("quarantined"), "{stderr}");

    // The rest of the grid still produced results, marked incomplete.
    let results = std::fs::read_to_string(&partial).unwrap();
    assert!(results.contains("\"incomplete\": true"), "{results}");
    assert!(results.contains("sdnav-sweep-results/v1"));

    // The quarantine report names the cell, its seed, and the panic.
    let report = std::fs::read_to_string(&quarantine).unwrap();
    assert!(
        report.contains("\"schema\": \"sdnav-quarantine/v1\""),
        "{report}"
    );
    assert!(report.contains("injected panic"), "{report}");
    assert!(report.contains("\"attempts\": 2"), "1 attempt + 1 retry");
    for p in [partial, quarantine] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn sweep_checkpoint_resume_is_byte_identical_across_threads() {
    let wal = scratch_path("resume.wal");
    std::fs::remove_file(&wal).ok();
    let golden = sdnav_raw(SMALL_SWEEP);
    assert!(golden.status.success());

    // Interrupt after one fresh cell on one thread...
    let partial = sdnav_raw(
        &[
            SMALL_SWEEP,
            &[
                "--threads",
                "1",
                "--checkpoint",
                wal.to_str().unwrap(),
                "--cancel-after-cells",
                "1",
            ],
        ]
        .concat(),
    );
    assert_eq!(partial.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&partial.stderr);
    assert!(stderr.contains("resume with --checkpoint"), "{stderr}");
    assert!(
        String::from_utf8_lossy(&partial.stdout).contains("\"incomplete\": true"),
        "partial results must carry the incomplete marker"
    );

    // ...and resume on four: byte-identical to the uninterrupted run.
    let resumed = sdnav_raw(
        &[
            SMALL_SWEEP,
            &[
                "--threads",
                "4",
                "--checkpoint",
                wal.to_str().unwrap(),
                "--resume",
            ],
        ]
        .concat(),
    );
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(resumed.stdout, golden.stdout);
    assert!(
        String::from_utf8_lossy(&resumed.stderr).contains("\"restored\""),
        "metrics must report replayed cells"
    );
    std::fs::remove_file(&wal).ok();
}

#[test]
fn sweep_supervision_flags_are_usage_checked() {
    assert_eq!(sdnav_code(&["sweep", "--resume"]), 2);
    assert_eq!(sdnav_code(&["sweep", "--retries", "-1"]), 2);
    assert_eq!(sdnav_code(&["sweep", "--inject-panic", "abc"]), 2);
}

#[cfg(unix)]
#[test]
fn sweep_sigint_drains_seals_wal_and_exits_partial() {
    let wal = scratch_path("sigint.wal");
    let out_file = scratch_path("sigint_partial.json");
    std::fs::remove_file(&wal).ok();
    // A workload long enough that SIGINT lands mid-run even on fast hosts.
    let mut child = Command::new(env!("CARGO_BIN_EXE_sdnav"))
        .args([
            "sweep",
            "--points",
            "5",
            "--replications",
            "6",
            "--horizon",
            "50000",
            "--accelerate",
            "100",
            "--threads",
            "2",
            "--format",
            "json",
            "--checkpoint",
            wal.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
        ])
        .spawn()
        .expect("binary spawns");
    std::thread::sleep(std::time::Duration::from_millis(1500));
    let interrupted = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs")
        .success();
    assert!(interrupted, "SIGINT delivery failed");
    let status = child.wait().expect("child exits");
    // Graceful shutdown: partial-success exit, sealed WAL, partial output
    // with the incomplete marker.
    assert_eq!(status.code(), Some(3), "expected partial-success exit");
    assert!(wal.metadata().map(|m| m.len() > 0).unwrap_or(false));
    let results = std::fs::read_to_string(&out_file).unwrap();
    assert!(results.contains("\"incomplete\": true"), "{results}");
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(&out_file).ok();
}

#[test]
fn chaos_digest_format_summarizes_report() {
    let (ok, stdout, stderr) = sdnav(&[
        "chaos",
        "run",
        "--campaign",
        &fixture("clean_rack_fail.campaign.json"),
        "--horizon",
        "100",
        "--accelerate",
        "1",
        "--format",
        "digest",
    ]);
    assert!(ok, "{stdout}{stderr}");
    let digest = sdnav_json::Json::parse(&stdout).expect("digest must be valid JSON");
    assert_eq!(
        digest.field("schema").unwrap().as_str().unwrap(),
        "sdnav-chaos-digest/v1"
    );
    assert_eq!(
        digest.field("source_schema").unwrap().as_str().unwrap(),
        "sdnav-chaos-report/v1"
    );
    assert_eq!(sdnav_code(&["chaos", "run", "--format", "yaml"]), 2);
}

#[test]
fn simulate_smoke() {
    let (ok, stdout, _) = sdnav(&[
        "simulate",
        "--horizon",
        "5000",
        "--replications",
        "2",
        "--accelerate",
        "100",
        "--compute-hosts",
        "2",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("CP  simulated"));
    assert!(stdout.contains("analytic"));
}

/// `sdnav serve` boots, answers over HTTP byte-identically to the
/// one-shot sweep path, and SIGTERM drains it to a clean exit 0.
#[cfg(unix)]
#[test]
fn serve_answers_http_and_sigterm_drains() {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut child = Command::new(env!("CARGO_BIN_EXE_sdnav"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");

    // The bound (ephemeral) address is announced on stderr.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .rsplit("http://")
        .next()
        .expect("banner names the address")
        .to_owned();

    // One real request/response round-trip, checked for parity against
    // the CLI sweep path on the same grid.
    let body = r#"{"points": 3, "replications": 2, "seed": 9}"#;
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect to server");
    write!(
        stream,
        "POST /v1/eval HTTP/1.1\r\nhost: sdnav\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read full response");
    let (head, http_body) = response.split_once("\r\n\r\n").expect("head/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    let (ok, sweep_stdout, sweep_stderr) = sdnav(&[
        "sweep",
        "--points",
        "3",
        "--replications",
        "2",
        "--seed",
        "9",
        "--format",
        "json",
    ]);
    assert!(ok, "{sweep_stderr}");
    assert_eq!(
        http_body, sweep_stdout,
        "serve and sweep must agree byte-for-byte"
    );

    // SIGTERM: drain and exit 0.
    let terminated = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs")
        .success();
    assert!(terminated, "SIGTERM delivery failed");
    let status = child.wait().expect("child exits");
    assert_eq!(status.code(), Some(0), "drained shutdown must exit 0");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("drain stderr");
    assert!(rest.contains("drained"), "{rest}");
}

// ---- lint --source (detlint) ----

#[test]
fn lint_source_seeded_fixture_exits_one_with_span() {
    let path = fixture("source/dl001_hashmap_iter.rs");
    let out = sdnav_raw(&["lint", "--source", &path]);
    assert_eq!(out.status.code(), Some(1), "findings must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DL001"), "{stdout}");
    assert!(
        stdout.contains("dl001_hashmap_iter.rs:8"),
        "finding must carry its file:line span:\n{stdout}"
    );
}

#[test]
fn lint_source_clean_fixture_exits_zero() {
    let path = fixture("source/clean_btreemap_emit.rs");
    let (ok, stdout, stderr) = sdnav(&["lint", "--source", &path]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("clean"), "{stdout}");
    assert!(stderr.contains("scanned 1 file"), "{stderr}");
}

#[test]
fn lint_source_workspace_is_clean() {
    // The acceptance bar, end to end through the binary: the workspace
    // itself must scan clean against the committed baseline.
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let (ok, stdout, stderr) = sdnav(&["lint", "--source", &root]);
    assert!(ok, "workspace must lint clean:\n{stdout}{stderr}");
}

#[test]
fn lint_source_emits_json_and_valid_sarif() {
    let path = fixture("source/dl009_wal_cast.rs");
    let out = sdnav_raw(&["lint", "--source", &path, "--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let doc = sdnav_json::Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    let text = doc.to_pretty();
    assert!(text.contains("DL009"), "{text}");

    let out = sdnav_raw(&["lint", "--source", &path, "--format", "sarif"]);
    assert_eq!(out.status.code(), Some(1));
    let sarif = sdnav_json::Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    sdnav_audit::validate_sarif(&sarif).expect("valid SARIF");
    let pretty = sarif.to_pretty();
    assert!(pretty.contains("\"ruleId\": \"DL009\""), "{pretty}");
    assert!(pretty.contains("startLine"), "{pretty}");
}

#[test]
fn lint_source_usage_errors_exit_two() {
    // --source is mutually exclusive with model selectors...
    assert_eq!(
        sdnav_code(&[
            "lint",
            "--source",
            "--spec",
            &fixture("sa003_quorum_too_large.json")
        ]),
        2
    );
    // ...and with the autofixer.
    assert_eq!(sdnav_code(&["lint", "--source", "--fix"]), 2);
    // Bad formats follow the shared contract.
    assert_eq!(
        sdnav_code(&[
            "lint",
            "--source",
            &fixture("source/clean_suppressed.rs"),
            "--format",
            "yaml"
        ]),
        2
    );
}

#[test]
fn lint_source_stale_allow_is_an_error() {
    let path = fixture("source/dl000_stale_allow.rs");
    let out = sdnav_raw(&["lint", "--source", &path]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DL000"), "{stdout}");
    assert!(stdout.contains("matches no finding"), "{stdout}");
}
