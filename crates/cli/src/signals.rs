//! Graceful-shutdown signal handling for long sweeps.
//!
//! `install` registers SIGINT/SIGTERM handlers that only set a process-wide
//! [`AtomicBool`] — the one async-signal-safe thing a handler may do. The
//! supervised grid executor polls the flag between cells: in-flight cells
//! drain, the checkpoint WAL is sealed, and the partial results are still
//! emitted (with the `incomplete` marker and exit code 3) instead of the
//! default die-mid-write behavior.

use std::sync::atomic::AtomicBool;

/// Set by the signal handler; polled by the supervised executor.
pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    /// POSIX `sighandler_t`. The return value (the previous handler) is
    /// pointer-sized; we never inspect it.
    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Atomics are async-signal-safe; nothing else here is allowed to
        // allocate, lock or print.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Routes SIGINT/SIGTERM into [`SHUTDOWN`] (no-op off Unix).
pub fn install() {
    imp::install();
}
