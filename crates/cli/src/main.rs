//! `sdnav` — command-line interface for distributed SDN controller
//! failure-mode and availability analysis (ISPASS 2019 reproduction).

mod args;
mod signals;

use std::process::ExitCode;

use args::Args;
use sdnav_core::{
    ControllerSpec, ErrorKind, HwModel, HwParams, Plane, Scenario, SdnavError, SwModel, SwParams,
    Topology,
};
use sdnav_fmea::{derive_table1, dominant_modes, enumerate_filtered, Deployment, ElementKind};
use sdnav_grid::plan::Figure;
use sdnav_grid::{GridResults, GridSpec, RetryPolicy, SimRow, SuperviseOptions};
use sdnav_report::{minutes_per_year, Chart, Series, Table};
use sdnav_sim::{replicate, SimConfig};

const USAGE: &str = "\
sdnav — distributed SDN controller availability analysis

USAGE: sdnav <command> [options]

COMMANDS:
  tables                      print Tables I-III (derived from the spec)
  topology [--layout L]       print deployment layouts (small|medium|large|all)
  hw [--a-c X]                HW-centric availability for all topologies
  sw [--scenario S]           SW-centric CP/DP availability (required|not-required)
  fig3 [--points N] [--csv]   regenerate Fig. 3
  fig4 [--points N] [--csv]   regenerate Fig. 4
  fig5 [--points N] [--csv]   regenerate Fig. 5
  sweep [--figures F,..] [--points N] [--replications R] [--threads T]
        [--seed S] [--horizon H] [--accelerate F] [--compute-hosts N]
        [--campaign FILE] [--crews N,..] [--ccf P,..]
        [--election-timeout-ms MS,..] [--cluster-size N,..] [--fault-mix B:C,..]
        [--checkpoint FILE] [--resume] [--retries N] [--backoff-ms MS]
        [--quarantine-out FILE] [--format json] [--out FILE] [--dry-run]
                              batch-evaluate a whole scenario grid (figures
                              and optional simulation cells) in parallel;
                              --campaign adds chaos cells sweeping the
                              campaign over crew-count × common-cause
                              probability axes (default 1,2,3,4 ×
                              0,0.25,0.5,0.75,1); run metrics go to stderr.
                              A spec `consensus` block — or any of
                              --election-timeout-ms/--cluster-size/
                              --fault-mix (defaults 150,300,600 × 3,5,7 ×
                              0:1) — adds consensus DES cells, each
                              cross-validated against the CTMC macro-state
                              model.
                              Cells run supervised: a panicking cell is
                              retried --retries times with exponential
                              backoff then quarantined (report to
                              --quarantine-out or stderr) without killing
                              the sweep. --checkpoint journals finished
                              cells to an fsync'd WAL; --resume replays it
                              and recomputes only the rest, byte-identical
                              to an uninterrupted run. SIGINT/SIGTERM drain
                              in-flight cells, seal the WAL and emit the
                              partial results with an `incomplete` marker.
                              --dry-run evaluates nothing: it prints the
                              static sdnav-sweep-plan/v1 cost prediction
                              (per-cell cost units, predicted cache hit
                              rate, skippable cells) and any SA030-SA032
                              grid findings, then exits
  serve [--addr HOST:PORT]    run the persistent evaluator service
                              (default 127.0.0.1:8423; port 0 binds an
                              ephemeral port, printed to stderr). HTTP/1.1
                              + JSON: POST /v1/eval evaluates a grid spec
                              byte-identically to `sweep --format json`,
                              PATCH /v1/spec edits one rate and
                              invalidates only dependent cached
                              sub-models, GET /v1/plan predicts sweep
                              cost, GET /v1/metrics reports cache
                              counters, GET /v1/healthz liveness.
                              SIGINT/SIGTERM drain in-flight requests,
                              then exit 0
  fmea [--order N] [--scenario S] [--layout L] [--sw-only]
                              enumerate minimal failure modes
  importance [--scenario S] [--layout L]
                              rank elements by share of failure-mode probability
  sensitivity [--layout L] [--scenario S]
                              rank parameters by share of downtime
  plan [--target M]           Pareto cost:resiliency analysis; optional
                              CP downtime target in minutes/year
  harden --target M [--layout L] [--scenario S]
                              process availability needed for a CP target
  simulate [--layout L] [--scenario S] [--horizon H] [--replications R]
           [--accelerate F] [--seed S]
                              Monte-Carlo validation run
  spec [--out FILE]           dump the OpenContrail 3.x spec as JSON
  chaos generate [--layout L] [--scenario S] [--top-k K] [--max-order N]
                 [--start H] [--spacing H] [--repair H] [--stress]
                 [--format json] [--out FILE]
                              compile the deployment's top-K CP/DP
                              dominant FMEA failure modes into an
                              injection campaign: one staggered window
                              per mode, simultaneous fails for
                              multi-element modes, rack common-cause
                              groups for rack-rooted modes; --stress
                              starves the crew pool and arms latent
                              faults; --format json emits the
                              sdnav-chaos-genspec/v1 document (campaign
                              + per-mode expectation records) consumed
                              by `chaos run --verdict`
  chaos run --campaign FILE [--layout L] [--scenario S] [--seed S]
            [--horizon H] [--accelerate F] [--compute-hosts N]
            [--format json|digest] [--out FILE]
            [--consensus-spec FILE]
            [--verdict GENSPEC [--replications R]]
                              run a declarative fault-injection campaign
                              (scheduled faults, common-cause groups,
                              maintenance windows, crew pools, latent
                              faults) and print the outage-attribution
                              ledger; --format json emits the
                              deterministic sdnav-chaos-report/v1 document
                              and --format digest the compact
                              sdnav-chaos-digest/v1 summary (per-array
                              SHA-256 + first/last rows) used for golden
                              diffing in CI; --consensus-spec runs the
                              campaign's fail injections (incl. the
                              event-time `leader` target) against the
                              consensus DES of that spec's consensus
                              block; --verdict replays a generated
                              genspec and gates it on the
                              survive-or-attribute check — CP
                              availability inside the uninjected
                              baseline's 95% CI, or every excess outage
                              100% attributed to the injected mode in
                              its window (exit 1 otherwise)
  lint [--format json|sarif] [--deny-warnings] [--topology FILE]
       [--block FILE] [--spec-set FILE] [--campaign FILE]
       [--ctmc FILE] [--grid FILE] [--fix] [--dry-run]
       [--source [PATH]]
                              statically audit the model (SA001..SA035);
                              accepts broken specs via --spec, standalone
                              RBD JSON via --block, sweep-grid spec arrays
                              via --spec-set, user topology JSON via
                              --topology, chaos campaigns via --campaign
                              (SA020..SA023 and SA027..SA029, linted
                              against the built-in deployment at
                              --layout/--scenario), CTMC generators via
                              --ctmc (SA010 + structural SA024..SA026),
                              and sweep-grid specs via --grid
                              (SA030..SA032); --fix rewrites auto-fixable
                              findings in place (--dry-run prints the edit
                              plan without writing and exits 1 if any edit
                              is pending); --source runs the detlint
                              determinism scan (DL001..DL010) over the
                              workspace source — bare --source walks up to
                              the workspace root, --source DIR scans that
                              workspace, --source FILE.rs scans one file;
                              suppressions come from inline
                              `detlint::allow(DLxxx): reason` comments and
                              the detlint.allow baseline, and stale allows
                              are themselves errors (DL000)
  help                        show this help

COMMON OPTIONS:
  --spec FILE                 analyze a custom controller spec (JSON)
  --nodes N                   scale the cluster to 2N+1 = N nodes (odd)
  --layout small|medium|large (default: small)
  --scenario required|not-required (default: not-required)

EXIT CODES: 0 success, 1 analysis/input failure, 2 usage error,
            3 partial results (sweep interrupted or cells quarantined)
";

// How a run fails maps onto the process exit code through the shared
// `sdnav_core::error` taxonomy (the same one `sdnav serve` maps onto HTTP
// statuses): bad invocations (unknown commands, malformed option values)
// exit 2; well-formed requests that fail (unreadable files, invalid
// models, lint findings) exit 1; a supervised sweep that still emitted
// (partial) results — interrupted by SIGINT/SIGTERM, or with cells
// quarantined after their retry budget — exits 3 so callers can
// distinguish "resume me" from "broken".

fn usage(message: impl Into<String>) -> SdnavError {
    SdnavError::usage(message)
}

fn failure(message: impl Into<String>) -> SdnavError {
    SdnavError::analysis(message)
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try `sdnav help`");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if e.kind() == ErrorKind::Partial {
                eprintln!("partial: {e}");
            } else {
                eprintln!("error: {e}");
            }
            if e.kind() == ErrorKind::Usage {
                eprintln!("try `sdnav help`");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &Args) -> Result<(), SdnavError> {
    // `lint` deliberately bypasses `load_spec`: its whole point is to accept
    // specs that `validate()` would reject and explain what is wrong.
    if args.subcommand() == Some("lint") {
        return lint(args);
    }
    let spec = load_spec(args)?;
    if args.action().is_some() && args.subcommand() != Some("chaos") {
        return Err(usage(format!(
            "unexpected positional argument {:?}",
            args.action().expect("checked")
        )));
    }
    match args.subcommand().unwrap_or("help") {
        "chaos" => chaos(&spec, args),
        "tables" => tables(&spec),
        "topology" => topology_cmd(&spec, args),
        "hw" => hw(&spec, args),
        "sw" => sw(&spec, args),
        "fig3" => fig3(&spec, args),
        "fig4" => sw_figure(&spec, args, Figure::Fig4),
        "fig5" => sw_figure(&spec, args, Figure::Fig5),
        "sweep" => sweep(&spec, args),
        "serve" => serve(&spec, args),
        "fmea" => fmea(&spec, args),
        "importance" => importance(&spec, args),
        "sensitivity" => sensitivity(&spec, args),
        "plan" => plan(&spec, args),
        "harden" => harden(&spec, args),
        "simulate" => simulate(&spec, args),
        "spec" => dump_spec(&spec, args),
        "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(usage(format!("unknown command {other:?}"))),
    }
}

fn load_spec(args: &Args) -> Result<ControllerSpec, SdnavError> {
    let mut spec = match args.get("spec") {
        None => ControllerSpec::opencontrail_3x(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| failure(format!("cannot read {path}: {e}")))?;
            sdnav_json::from_str(&text).map_err(|e| failure(format!("cannot parse {path}: {e}")))?
        }
    };
    spec.validate().map_err(|e| failure(e.to_string()))?;
    if let Some(nodes) = args.get("nodes") {
        let nodes: u32 = nodes
            .parse()
            .map_err(|_| usage(format!("--nodes expects an integer, got {nodes:?}")))?;
        if nodes == 0 || nodes % 2 == 0 {
            return Err(usage(format!("--nodes must be odd (2N+1), got {nodes}")));
        }
        spec = spec.scaled_cluster(nodes);
    }
    Ok(spec)
}

fn scenario(args: &Args) -> Result<Scenario, SdnavError> {
    match args.get("scenario").unwrap_or("not-required") {
        "required" => Ok(Scenario::SupervisorRequired),
        "not-required" => Ok(Scenario::SupervisorNotRequired),
        other => Err(usage(format!(
            "--scenario must be `required` or `not-required`, got {other:?}"
        ))),
    }
}

fn layout(spec: &ControllerSpec, args: &Args) -> Result<Topology, SdnavError> {
    match args.get("layout").unwrap_or("small") {
        "small" => Ok(Topology::small(spec)),
        "medium" => Ok(Topology::medium(spec)),
        "large" => Ok(Topology::large(spec)),
        other => Err(usage(format!(
            "--layout must be small, medium or large, got {other:?}"
        ))),
    }
}

fn tables(spec: &ControllerSpec) -> Result<(), SdnavError> {
    println!("Table I — process failure modes (derived behaviorally):\n");
    let mut t1 = Table::new(vec!["Role", "Process", "SDN CP", "Host DP"]);
    for row in derive_table1(spec) {
        t1.row(vec![row.role, row.process, row.cp, row.dp]);
    }
    print!("{t1}");

    println!("\nTable II — required processes by restart mode:\n");
    let mut t2 = Table::new(vec!["Role", "Auto", "Manual"]);
    for c in spec.restart_counts() {
        t2.row(vec![c.role, c.auto.to_string(), c.manual.to_string()]);
    }
    print!("{t2}");

    println!("\nTable III — quorum requirement counts:\n");
    let mut t3 = Table::new(vec!["Role", "CP M", "CP N", "DP M", "DP N"]);
    let cp = spec.quorum_counts(Plane::ControlPlane);
    let dp = spec.quorum_counts(Plane::DataPlane);
    for (c, d) in cp.iter().zip(&dp) {
        t3.row(vec![
            c.role.clone(),
            c.m.to_string(),
            c.n.to_string(),
            d.m.to_string(),
            d.n.to_string(),
        ]);
    }
    print!("{t3}");
    Ok(())
}

fn topology_cmd(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    match args.get("layout").unwrap_or("all") {
        "all" => {
            for t in [
                Topology::small(spec),
                Topology::medium(spec),
                Topology::large(spec),
            ] {
                println!("{}", t.describe());
            }
        }
        _ => println!("{}", layout(spec, args)?.describe()),
    }
    Ok(())
}

fn hw(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let a_c = args.get_f64("a-c", 0.9995).map_err(usage)?;
    if !(0.0..=1.0).contains(&a_c) {
        return Err(usage(format!(
            "--a-c must be an availability in [0, 1], got {a_c}"
        )));
    }
    let params = HwParams::paper_defaults().with_a_c(a_c);
    let mut table = Table::new(vec!["topology", "availability", "downtime"]);
    for topo in [
        Topology::small(spec),
        Topology::medium(spec),
        Topology::large(spec),
    ] {
        let a = HwModel::try_new(spec, &topo, params)
            .map_err(|e| failure(e.to_string()))?
            .availability();
        table.row(vec![
            topo.name().to_owned(),
            format!("{a:.9}"),
            minutes_per_year(a),
        ]);
    }
    print!("{table}");
    Ok(())
}

fn sw(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let scenario = scenario(args)?;
    let params = SwParams::paper_defaults();
    let mut table = Table::new(vec!["topology", "A_CP", "A_SDP", "A_DP", "CP DT", "DP DT"]);
    for topo in [
        Topology::small(spec),
        Topology::medium(spec),
        Topology::large(spec),
    ] {
        let m =
            SwModel::try_new(spec, &topo, params, scenario).map_err(|e| failure(e.to_string()))?;
        table.row(vec![
            topo.name().to_owned(),
            format!("{:.9}", m.cp_availability()),
            format!("{:.9}", m.shared_dp_availability()),
            format!("{:.9}", m.host_dp_availability()),
            minutes_per_year(m.cp_availability()),
            minutes_per_year(m.host_dp_availability()),
        ]);
    }
    println!("scenario: {scenario:?}");
    print!("{table}");
    Ok(())
}

/// Evaluates a single-figure grid — the figure subcommands are thin views
/// over the same engine `sweep` uses.
fn figure_grid(
    spec: &ControllerSpec,
    args: &Args,
    figure: Figure,
) -> Result<GridResults, SdnavError> {
    let grid = GridSpec::builder()
        .figures(&[figure])
        .points(args.get_usize("points", 21).map_err(usage)?)
        .threads(args.get_usize("threads", 0).map_err(usage)?)
        .build()
        .map_err(|e| failure(e.to_string()))?;
    Ok(sdnav_grid::evaluate(spec, &grid)
        .map_err(|e| failure(e.to_string()))?
        .results)
}

fn fig3(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let rows = figure_grid(spec, args, Figure::Fig3)?.fig3;
    let table = fig3_table(&rows);
    if args.has_flag("csv") {
        print!("{}", table.to_csv());
        return Ok(());
    }
    print!("{table}");
    let chart = Chart::new(60, 14)
        .series(Series::new(
            "Small",
            rows.iter().map(|r| (r.a_c, r.small)).collect(),
        ))
        .series(Series::new(
            "Medium",
            rows.iter().map(|r| (r.a_c, r.medium)).collect(),
        ))
        .series(Series::new(
            "Large",
            rows.iter().map(|r| (r.a_c, r.large)).collect(),
        ))
        .labels("A_C", "availability");
    print!("{chart}");
    Ok(())
}

fn fig3_table(rows: &[sdnav_core::sweep::Fig3Row]) -> Table {
    let mut table = Table::new(vec!["A_C", "Small", "Medium", "Large"]);
    for r in rows {
        table.row(vec![
            format!("{:.5}", r.a_c),
            format!("{:.9}", r.small),
            format!("{:.9}", r.medium),
            format!("{:.9}", r.large),
        ]);
    }
    table
}

fn sw_table(rows: &[sdnav_core::sweep::SwSweepRow]) -> Table {
    let mut table = Table::new(vec!["x", "A", "1S", "2S", "1L", "2L"]);
    for r in rows {
        table.row(vec![
            format!("{:+.2}", r.x),
            format!("{:.6}", r.a),
            format!("{:.9}", r.small_no_sup),
            format!("{:.9}", r.small_sup),
            format!("{:.9}", r.large_no_sup),
            format!("{:.9}", r.large_sup),
        ]);
    }
    table
}

fn sim_table(rows: &[SimRow]) -> Table {
    let mut table = Table::new(vec![
        "x",
        "topology",
        "scenario",
        "CP sim",
        "CP analytic",
        "DP sim",
        "DP analytic",
    ]);
    for r in rows {
        table.row(vec![
            format!("{:+.2}", r.x),
            r.topology.to_owned(),
            if r.supervisor_required {
                "required".to_owned()
            } else {
                "not-required".to_owned()
            },
            format!("{:.6} ±{:.6}", r.cp.mean, r.cp.std_error),
            format!("{:.6}", r.analytic_cp),
            format!("{:.6} ±{:.6}", r.dp.mean, r.dp.std_error),
            format!("{:.6}", r.analytic_dp),
        ]);
    }
    table
}

fn chaos_table(rows: &[sdnav_grid::ChaosRow]) -> Table {
    let mut table = Table::new(vec![
        "crews",
        "CCF p",
        "topology",
        "CP sim",
        "DP sim",
        "injected CP h",
        "organic CP h",
        "injections",
    ]);
    for r in rows {
        table.row(vec![
            r.crew_count.to_string(),
            format!("{:.2}", r.ccf_probability),
            r.topology.to_owned(),
            format!("{:.6} ±{:.6}", r.cp.mean, r.cp.std_error),
            format!("{:.6} ±{:.6}", r.dp.mean, r.dp.std_error),
            format!("{:.2}", r.injected_cp_hours_mean),
            format!("{:.2}", r.organic_cp_hours_mean),
            r.injected_events.to_string(),
        ]);
    }
    table
}

fn consensus_table(rows: &[sdnav_grid::ConsensusRow]) -> Table {
    let mut table = Table::new(vec![
        "timeout ms",
        "cluster",
        "mix B:C",
        "quorum",
        "DES avail",
        "CTMC avail",
        "election frac",
        "stall frac",
        "elections",
    ]);
    for r in rows {
        table.row(vec![
            format!("{:.0}", r.election_timeout_ms),
            r.cluster_size.to_string(),
            format!("{}:{}", r.byzantine, r.crash),
            r.quorum.to_string(),
            format!(
                "{:.6} ±{:.6}",
                r.availability.mean, r.availability.std_error
            ),
            format!("{:.6}", r.ctmc_availability),
            format!("{:.2e}", r.election_fraction_mean),
            format!("{:.2e}", r.stall_fraction_mean),
            r.elections.to_string(),
        ]);
    }
    table
}

fn sw_figure(spec: &ControllerSpec, args: &Args, figure: Figure) -> Result<(), SdnavError> {
    let results = figure_grid(spec, args, figure)?;
    let rows = if figure == Figure::Fig4 {
        results.fig4
    } else {
        results.fig5
    };
    let table = sw_table(&rows);
    if args.has_flag("csv") {
        print!("{}", table.to_csv());
        return Ok(());
    }
    print!("{table}");
    let chart = Chart::new(60, 14)
        .series(Series::new(
            "1S",
            rows.iter().map(|r| (r.x, r.small_no_sup)).collect(),
        ))
        .series(Series::new(
            "2S",
            rows.iter().map(|r| (r.x, r.small_sup)).collect(),
        ))
        .series(Series::new(
            "1L",
            rows.iter().map(|r| (r.x, r.large_no_sup)).collect(),
        ))
        .series(Series::new(
            "2L",
            rows.iter().map(|r| (r.x, r.large_sup)).collect(),
        ))
        .labels(
            "orders of magnitude of downtime removed",
            if figure == Figure::Fig4 {
                "A_CP"
            } else {
                "A_DP"
            },
        );
    print!("{chart}");
    Ok(())
}

fn sweep(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let figures = match args.get("figures") {
        None => vec![Figure::Fig3, Figure::Fig4, Figure::Fig5],
        Some(list) => {
            let mut figures = Vec::new();
            for name in list.split(',') {
                figures.push(Figure::parse(name.trim()).ok_or_else(|| {
                    usage(format!(
                        "--figures expects a comma list of fig3|fig4|fig5, got {name:?}"
                    ))
                })?);
            }
            figures
        }
    };
    let mut builder = GridSpec::builder()
        .figures(&figures)
        .points(args.get_usize("points", 21).map_err(usage)?)
        .replications(args.get_usize("replications", 0).map_err(usage)?)
        .threads(args.get_usize("threads", 0).map_err(usage)?)
        .seed(args.get_usize("seed", 7).map_err(usage)? as u64)
        .sim_horizon_hours(args.get_f64("horizon", 20_000.0).map_err(usage)?)
        .sim_accelerate(args.get_f64("accelerate", 200.0).map_err(usage)?)
        .sim_compute_hosts(args.get_usize("compute-hosts", 2).map_err(usage)?);
    if let Some(path) = args.get("campaign") {
        let campaign: sdnav_chaos::ChaosSpec = read_json(path)?;
        campaign
            .try_validate()
            .map_err(|e| failure(format!("{path}: {e}")))?;
        builder = builder.chaos_campaign(campaign);
        if let Some(list) = args.get("crews") {
            let mut crews = Vec::new();
            for part in list.split(',') {
                crews.push(part.trim().parse::<usize>().map_err(|_| {
                    usage(format!(
                        "--crews expects a comma list of counts, got {part:?}"
                    ))
                })?);
            }
            builder = builder.chaos_crew_counts(&crews);
        }
        if let Some(list) = args.get("ccf") {
            let mut probabilities = Vec::new();
            for part in list.split(',') {
                probabilities.push(part.trim().parse::<f64>().map_err(|_| {
                    usage(format!(
                        "--ccf expects a comma list of probabilities, got {part:?}"
                    ))
                })?);
            }
            builder = builder.chaos_ccf_probabilities(&probabilities);
        }
    } else if args.get("crews").is_some() || args.get("ccf").is_some() {
        return Err(usage("--crews and --ccf require --campaign"));
    }
    let consensus_flags = args.get("election-timeout-ms").is_some()
        || args.get("cluster-size").is_some()
        || args.get("fault-mix").is_some();
    if spec.consensus.is_some() || consensus_flags {
        // The spec's consensus block is the base; the flags enable the
        // axes on a plain spec with RAFT defaults as the base.
        let base = spec
            .consensus
            .clone()
            .unwrap_or_else(sdnav_core::ConsensusSpec::raft_defaults);
        builder = builder.consensus(base);
        if let Some(list) = args.get("election-timeout-ms") {
            let mut timeouts = Vec::new();
            for part in list.split(',') {
                timeouts.push(part.trim().parse::<f64>().map_err(|_| {
                    usage(format!(
                        "--election-timeout-ms expects a comma list of milliseconds, got {part:?}"
                    ))
                })?);
            }
            builder = builder.consensus_election_timeouts_ms(&timeouts);
        }
        if let Some(list) = args.get("cluster-size") {
            let mut sizes = Vec::new();
            for part in list.split(',') {
                sizes.push(part.trim().parse::<u32>().map_err(|_| {
                    usage(format!(
                        "--cluster-size expects a comma list of node counts, got {part:?}"
                    ))
                })?);
            }
            builder = builder.consensus_cluster_sizes(&sizes);
        }
        if let Some(list) = args.get("fault-mix") {
            let mut mixes = Vec::new();
            for part in list.split(',') {
                mixes.push(sdnav_core::FaultMix::parse(part.trim()).ok_or_else(|| {
                    usage(format!(
                        "--fault-mix expects a comma list of BYZANTINE:CRASH counts \
                         (e.g. 0:1,1:1), got {part:?}"
                    ))
                })?);
            }
            builder = builder.consensus_fault_mixes(&mixes);
        }
    }
    let grid = builder.build().map_err(|e| failure(e.to_string()))?;

    if args.has_flag("dry-run") {
        // Static cost prediction only: print the sdnav-sweep-plan/v1
        // document (stdout / --out) and any SA030-SA032 grid findings
        // (stderr), without evaluating a single cell.
        let plan = sdnav_audit::SweepPlan::predict(spec, &grid);
        let json = sdnav_json::to_string_pretty(&plan);
        match args.get("out") {
            Some(path) => {
                std::fs::write(path, format!("{json}\n"))
                    .map_err(|e| failure(format!("cannot write {path}: {e}")))?;
                eprintln!("wrote {path}");
            }
            None => println!("{json}"),
        }
        let findings = sdnav_audit::audit_grid(spec, &grid);
        if !findings.is_clean() {
            eprint!("{}", findings.render());
        }
        if findings.has_errors() {
            return Err(failure(format!(
                "grid audit found {} error(s)",
                findings.error_count()
            )));
        }
        return Ok(());
    }

    let checkpoint = args.get("checkpoint").map(std::path::PathBuf::from);
    if args.has_flag("resume") && checkpoint.is_none() {
        return Err(usage("--resume requires --checkpoint <file>"));
    }
    let retries = args.get_usize("retries", 2).map_err(usage)?;
    let retry = RetryPolicy::builder()
        .max_retries(
            u32::try_from(retries)
                .map_err(|_| usage(format!("--retries is out of range, got {retries}")))?,
        )
        .backoff_base_ms(args.get_usize("backoff-ms", 50).map_err(usage)? as u64)
        .build();
    let inject_panic = optional_usize(args, "inject-panic")?;
    let cancel_after_cells = optional_usize(args, "cancel-after-cells")?;
    signals::install();
    let opts = SuperviseOptions::builder()
        .retry(retry)
        .checkpoint(checkpoint.as_deref())
        .resume(args.has_flag("resume"))
        .shutdown(&signals::SHUTDOWN)
        .inject_panic(inject_panic)
        .cancel_after_cells(cancel_after_cells)
        .build();
    let outcome =
        sdnav_grid::evaluate_supervised(spec, &grid, &opts).map_err(|e| failure(e.to_string()))?;

    // Results (reproducible) go to stdout / --out; metrics (run-varying
    // timings) go to stderr so byte-comparing two runs' outputs works.
    match args.get("format") {
        Some("json") => {
            let json = sdnav_json::to_string_pretty(&outcome.results);
            match args.get("out") {
                Some(path) => {
                    std::fs::write(path, format!("{json}\n"))
                        .map_err(|e| failure(format!("cannot write {path}: {e}")))?;
                    eprintln!("wrote {path}");
                }
                None => println!("{json}"),
            }
            eprintln!("{}", sdnav_json::to_string_pretty(&outcome.metrics));
        }
        Some(other) => return Err(usage(format!("--format must be `json`, got {other:?}"))),
        None => {
            let r = &outcome.results;
            if !r.fig3.is_empty() {
                println!("Fig. 3 — HW-centric availability vs A_C:\n");
                print!("{}", fig3_table(&r.fig3));
            }
            if !r.fig4.is_empty() {
                println!("\nFig. 4 — SW-centric CP availability:\n");
                print!("{}", sw_table(&r.fig4));
            }
            if !r.fig5.is_empty() {
                println!("\nFig. 5 — SW-centric per-host DP availability:\n");
                print!("{}", sw_table(&r.fig5));
            }
            if !r.sim.is_empty() {
                println!("\nSimulated cells (accelerated rates):\n");
                print!("{}", sim_table(&r.sim));
            }
            if !r.chaos.is_empty() {
                println!("\nChaos campaign cells (crew count × CCF probability):\n");
                print!("{}", chaos_table(&r.chaos));
            }
            if !r.consensus.is_empty() {
                println!("\nConsensus cells (election timeout × cluster size × fault mix):\n");
                print!("{}", consensus_table(&r.consensus));
            }
            eprint!("{}", outcome.metrics.render());
        }
    }

    if !outcome.quarantine.is_empty() {
        let json = sdnav_json::to_string_pretty(&outcome.quarantine);
        match args.get("quarantine-out") {
            Some(path) => {
                std::fs::write(path, format!("{json}\n"))
                    .map_err(|e| failure(format!("cannot write {path}: {e}")))?;
                eprintln!("wrote quarantine report to {path}");
            }
            None => eprintln!("{json}"),
        }
    }
    if outcome.interrupted || !outcome.quarantine.is_empty() {
        let mut reasons = Vec::new();
        if outcome.interrupted {
            reasons.push(
                "sweep interrupted before every cell ran \
                 (resume with --checkpoint <file> --resume)"
                    .to_owned(),
            );
        }
        if !outcome.quarantine.is_empty() {
            reasons.push(format!(
                "{} cell(s) quarantined after exhausting retries",
                outcome.quarantine.len()
            ));
        }
        return Err(SdnavError::partial(reasons.join("; ")));
    }
    Ok(())
}

/// An optional `--key N` integer (absent stays `None`).
fn optional_usize(args: &Args, key: &str) -> Result<Option<usize>, SdnavError> {
    match args.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| usage(format!("--{key} expects an integer, got {v:?}"))),
    }
}

/// `sdnav serve`: run the persistent evaluator service until
/// SIGINT/SIGTERM, then drain in-flight requests and exit 0.
fn serve(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:8423");
    let config = sdnav_serve::ServeConfig::builder(spec.clone())
        .addr(addr)
        .build()?;
    let server = sdnav_serve::Server::bind(config)?;
    signals::install();
    // The bound address goes to stderr so scripts binding port 0 can
    // discover the ephemeral port without scraping response bodies.
    eprintln!("sdnav serve: listening on http://{}", server.local_addr()?);
    server.run(&signals::SHUTDOWN)?;
    eprintln!("sdnav serve: drained, shutting down");
    Ok(())
}

fn fmea(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let order = args.get_usize("order", 2).map_err(usage)?;
    let scenario = scenario(args)?;
    let topo = layout(spec, args)?;
    let sw_only = args.has_flag("sw-only");
    let dep = Deployment::new(spec, &topo, SwParams::paper_defaults(), scenario);
    let modes = enumerate_filtered(&dep, order, |e| {
        !sw_only || matches!(e.kind(), ElementKind::Process | ElementKind::Supervisor)
    });
    println!(
        "{} minimal failure modes up to order {order} ({}, {:?}):",
        modes.len(),
        topo.name(),
        scenario
    );
    println!("\nmost probable CP-impacting modes:");
    for m in dominant_modes(&modes, true, 8) {
        println!("  {m}");
    }
    println!("\nmost probable DP-impacting modes:");
    for m in dominant_modes(&modes, false, 8) {
        println!("  {m}");
    }
    Ok(())
}

fn importance(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let scenario = scenario(args)?;
    let topo = layout(spec, args)?;
    let order = args.get_usize("order", 2).map_err(usage)?;
    let dep = Deployment::new(spec, &topo, SwParams::paper_defaults(), scenario);
    let modes = enumerate_filtered(&dep, order, |e| {
        matches!(e.kind(), ElementKind::Process | ElementKind::Supervisor)
    });
    let ranking = sdnav_fmea::rank_elements(&modes);
    println!(
        "software element criticality ({}, {:?}, order ≤ {order}):\n",
        topo.name(),
        scenario
    );
    let mut table = Table::new(vec!["element", "CP share", "DP share"]);
    for c in ranking.iter().take(15) {
        table.row(vec![
            c.element.to_string(),
            format!("{:5.1}%", c.cp_share * 100.0),
            format!("{:5.1}%", c.dp_share * 100.0),
        ]);
    }
    print!("{table}");
    Ok(())
}

fn sensitivity(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let scenario = scenario(args)?;
    let topo = layout(spec, args)?;
    use sdnav_core::sensitivity::{hw as hw_sens, sw as sw_sens, SwMetric};
    println!("HW-centric parameter sensitivity ({}):\n", topo.name());
    let mut table = Table::new(vec!["parameter", "value", "dA/dA_p", "downtime share"]);
    for s in hw_sens(spec, &topo, HwParams::paper_defaults()) {
        table.row(vec![
            s.parameter,
            format!("{:.5}", s.value),
            format!("{:.4}", s.derivative),
            format!("{:5.1}%", s.downtime_share * 100.0),
        ]);
    }
    print!("{table}");
    for (label, metric) in [
        ("control plane", SwMetric::ControlPlane),
        ("host data plane", SwMetric::HostDataPlane),
    ] {
        println!("\nSW-centric sensitivity, {label} ({:?}):\n", scenario);
        let mut table = Table::new(vec!["parameter", "value", "dA/dA_p", "downtime share"]);
        for s in sw_sens(spec, &topo, SwParams::paper_defaults(), scenario, metric) {
            table.row(vec![
                s.parameter,
                format!("{:.5}", s.value),
                format!("{:.4}", s.derivative),
                format!("{:5.1}%", s.downtime_share * 100.0),
            ]);
        }
        print!("{table}");
    }
    Ok(())
}

fn plan(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    use sdnav_core::planner::{cheapest_meeting, evaluate_candidates, pareto_frontier, CostModel};
    let points = evaluate_candidates(spec, SwParams::paper_defaults(), &CostModel::ballpark());
    println!("Pareto frontier (cost vs CP downtime):\n");
    let mut table = Table::new(vec![
        "cost",
        "CP m/y",
        "topology",
        "scenario",
        "maintenance",
    ]);
    for p in pareto_frontier(&points) {
        table.row(vec![
            format!("{:.0}", p.cost),
            format!("{:.2}", p.cp_downtime_m_y),
            p.topology.clone(),
            format!("{:?}", p.scenario),
            p.tier.name().to_owned(),
        ]);
    }
    print!("{table}");
    if let Some(target) = args.get("target") {
        let target: f64 = target
            .parse()
            .map_err(|_| usage(format!("--target expects minutes/year, got {target:?}")))?;
        match cheapest_meeting(&points, target) {
            Some(p) => println!(
                "\ncheapest meeting ≤ {target} m/y: cost {:.0} — {} / {:?} / {}",
                p.cost,
                p.topology,
                p.scenario,
                p.tier.name()
            ),
            None => println!("\nno candidate meets ≤ {target} m/y"),
        }
    }
    Ok(())
}

fn harden(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let scenario = scenario(args)?;
    let topo = layout(spec, args)?;
    let target = args
        .get("target")
        .ok_or_else(|| usage("harden requires --target <minutes/year>"))?
        .parse::<f64>()
        .map_err(|_| usage("--target expects minutes/year"))?;
    let base = SwParams::paper_defaults();
    match sdnav_core::sweep::required_process_availability(spec, &topo, base, scenario, target) {
        Some(a) => {
            let dt_scale = (1.0 - a) / (1.0 - base.process.auto);
            println!(
                "to reach ≤ {target} m/y of CP downtime on {} ({scenario:?}):",
                topo.name()
            );
            println!("  required auto-restart process availability A ≥ {a:.7}");
            println!(
                "  i.e. process downtime must change by ×{dt_scale:.2} from the default A = {:.5}",
                base.process.auto
            );
        }
        None => println!(
            "target {target} m/y is out of reach on {} by process hardening alone \
             (hardware floor, or already met at 10x worse processes)",
            topo.name()
        ),
    }
    Ok(())
}

fn simulate(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let scenario = scenario(args)?;
    let topo = layout(spec, args)?;
    let accel = args.get_f64("accelerate", 100.0).map_err(usage)?;
    let config = SimConfig::builder(scenario)
        .accelerate(accel)
        .horizon_hours(args.get_f64("horizon", 200_000.0).map_err(usage)?)
        .compute_hosts(args.get_usize("compute-hosts", 3).map_err(usage)?)
        .build()
        .map_err(|e| failure(e.to_string()))?;
    let replications = args.get_usize("replications", 4).map_err(usage)?;
    if replications == 0 {
        return Err(usage("--replications must be at least 1"));
    }
    let seed = args.get_usize("seed", 1).map_err(usage)? as u64;

    let result = replicate(spec, &topo, config, seed, replications);
    let params = config.analytic_params();
    let model =
        SwModel::try_new(spec, &topo, params, scenario).map_err(|e| failure(e.to_string()))?;
    println!(
        "simulated {} replications × {:.0} h on {} ({:?}, rates ×{accel})",
        replications,
        config.horizon_hours,
        topo.name(),
        scenario
    );
    println!("  events processed : {}", result.total_events);
    println!("  CP  simulated    : {}", result.cp);
    println!("  CP  analytic     : {:.9}", model.cp_availability());
    println!("  DP  simulated    : {}", result.dp);
    println!("  DP  analytic     : {:.9}", model.host_dp_availability());
    if result.cp_outages > 0 {
        println!(
            "  CP outages       : {} (mean duration {:.2} h, one per {:.0} h)",
            result.cp_outages,
            result.cp_outage_mean_hours,
            result.total_hours / result.cp_outages as f64
        );
    } else {
        println!("  CP outages       : none observed");
    }
    Ok(())
}

/// Builds the simulation configuration shared by `chaos run` and
/// `lint --campaign` from the common options.
fn chaos_config(args: &Args) -> Result<SimConfig, SdnavError> {
    SimConfig::builder(scenario(args)?)
        .accelerate(args.get_f64("accelerate", 100.0).map_err(usage)?)
        .horizon_hours(args.get_f64("horizon", 100_000.0).map_err(usage)?)
        .compute_hosts(args.get_usize("compute-hosts", 3).map_err(usage)?)
        .build()
        .map_err(|e| failure(e.to_string()))
}

fn chaos(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    match args.action() {
        Some("run") => {}
        Some("generate") => return chaos_generate(spec, args),
        Some(other) => return Err(usage(format!("unknown chaos action {other:?}"))),
        None => {
            return Err(usage(
                "chaos requires an action: `sdnav chaos run ...` or `sdnav chaos generate ...`",
            ))
        }
    }
    if let Some(genspec_path) = args.get("verdict") {
        return chaos_verdict(spec, genspec_path, args);
    }
    let path = args
        .get("campaign")
        .ok_or_else(|| usage("chaos run requires --campaign <file>"))?;
    let campaign: sdnav_chaos::ChaosSpec = read_json(path)?;
    campaign
        .try_validate()
        .map_err(|e| failure(format!("{path}: {e}")))?;
    if let Some(consensus_path) = args.get("consensus-spec") {
        return chaos_consensus(&campaign, consensus_path, args);
    }
    let topo = layout(spec, args)?;
    let config = chaos_config(args)?;
    let sim =
        sdnav_sim::Simulation::try_new(spec, &topo, config).map_err(|e| failure(e.to_string()))?;
    let plan =
        sdnav_chaos::compile(&campaign, &sim).map_err(|e| failure(format!("{path}: {e}")))?;
    let seed = args.get_usize("seed", 1).map_err(usage)? as u64;
    let result = sim.run_injected(seed, &plan);
    let report = sdnav_chaos::report(&campaign, &result);

    match args.get("format") {
        Some(format @ ("json" | "digest")) => {
            let json = if format == "digest" {
                sdnav_chaos::digest_report(&report).to_pretty()
            } else {
                report.to_pretty()
            };
            match args.get("out") {
                Some(out) => {
                    std::fs::write(out, format!("{json}\n"))
                        .map_err(|e| failure(format!("cannot write {out}: {e}")))?;
                    eprintln!("wrote {out}");
                }
                None => println!("{json}"),
            }
        }
        Some(other) => {
            return Err(usage(format!(
                "--format must be `json` or `digest`, got {other:?}"
            )))
        }
        None => {
            let ledger = result.ledger.as_ref().expect("injected run has a ledger");
            println!(
                "campaign {:?} on {} ({:?}): {} planned event(s), {} fired, {} latent(s) revealed",
                campaign.name,
                topo.name(),
                config.scenario,
                plan.events.len(),
                ledger.injected_events,
                ledger.revealed_latents,
            );
            println!(
                "  CP availability : {:.9} ({} outage(s), {:.4} h total)",
                result.cp_availability,
                result.cp_outage_count,
                ledger.cp_outage_hours()
            );
            println!("  DP availability : {:.9}", result.dp_availability);
            println!("\noutage attribution (root cause):\n");
            let mut table = Table::new(vec!["cause", "CP outages", "CP hours", "DP host-hours"]);
            let causes = std::iter::once(sdnav_chaos::Cause::Organic)
                .chain((0..campaign.injections.len()).map(sdnav_chaos::Cause::Injection));
            for cause in causes {
                let outages: Vec<_> = ledger
                    .cp_outages
                    .iter()
                    .filter(|o| o.root_cause == cause)
                    .collect();
                table.row(vec![
                    sdnav_chaos::cause_name(&campaign, cause),
                    outages.len().to_string(),
                    format!(
                        "{:.4}",
                        outages.iter().fold(0.0, |acc, o| acc + o.duration())
                    ),
                    format!(
                        "{:.4}",
                        ledger
                            .dp_down_host_hours
                            .get(cause.slot())
                            .copied()
                            .unwrap_or(0.0)
                    ),
                ]);
            }
            print!("{table}");
        }
    }
    Ok(())
}

/// Shared flag parsing for campaign generation (`chaos generate` and the
/// serve endpoint take the same knobs).
fn generate_config(args: &Args) -> Result<sdnav_chaos::GenerateConfig, SdnavError> {
    let defaults = sdnav_chaos::GenerateConfig::default();
    Ok(sdnav_chaos::GenerateConfig {
        top_k: args.get_usize("top-k", defaults.top_k).map_err(usage)?,
        max_order: args
            .get_usize("max-order", defaults.max_order)
            .map_err(usage)?,
        start_hours: args
            .get_f64("start", defaults.start_hours)
            .map_err(usage)?,
        spacing_hours: args
            .get_f64("spacing", defaults.spacing_hours)
            .map_err(usage)?,
        repair_hours: args
            .get_f64("repair", defaults.repair_hours)
            .map_err(usage)?,
        stress: args.has_flag("stress"),
    })
}

/// `sdnav chaos generate`: compile the deployment's FMEA dominant modes
/// into an injection campaign with per-mode expectation records.
fn chaos_generate(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let topo = layout(spec, args)?;
    let deployment = Deployment::new(spec, &topo, SwParams::paper_defaults(), scenario(args)?);
    let config = generate_config(args)?;
    let generated =
        sdnav_chaos::generate(&deployment, &config).map_err(|e| failure(e.to_string()))?;

    match args.get("format") {
        Some("json") => {
            let json = sdnav_json::ToJson::to_json(&generated).to_pretty();
            match args.get("out") {
                Some(out) => {
                    std::fs::write(out, format!("{json}\n"))
                        .map_err(|e| failure(format!("cannot write {out}: {e}")))?;
                    eprintln!("wrote {out}");
                }
                None => println!("{json}"),
            }
        }
        Some(other) => return Err(usage(format!("--format must be `json`, got {other:?}"))),
        None => {
            println!(
                "campaign {:?}: {} mode(s), {} injection(s), seed {}",
                generated.campaign.name,
                generated.expectations.len(),
                generated.campaign.injections.len(),
                generated.campaign.seed,
            );
            let mut table = Table::new(vec!["mode", "impact", "p", "window (h)", "targets"]);
            for exp in &generated.expectations {
                table.row(vec![
                    exp.label.clone(),
                    match exp.impact {
                        sdnav_fmea::PlaneImpact::ControlPlaneOnly => "CP".to_owned(),
                        sdnav_fmea::PlaneImpact::DataPlaneOnly => "DP".to_owned(),
                        sdnav_fmea::PlaneImpact::Both => "CP+DP".to_owned(),
                    },
                    format!("{:.3e}", exp.probability),
                    format!(
                        "[{:.0}, {:.0})",
                        exp.window_start_hours, exp.window_end_hours
                    ),
                    exp.targets.join(" + "),
                ]);
            }
            print!("{table}");
            eprintln!("hint: --format json emits the sdnav-chaos-genspec/v1 document");
        }
    }
    Ok(())
}

/// `sdnav chaos run --verdict GENSPEC`: replay a generated campaign and
/// gate it on the survive-or-attribute check against its expectations.
fn chaos_verdict(
    spec: &ControllerSpec,
    genspec_path: &str,
    args: &Args,
) -> Result<(), SdnavError> {
    let generated: sdnav_chaos::GeneratedCampaign = read_json(genspec_path)?;
    let topo = layout(spec, args)?;
    if !topo.name().eq_ignore_ascii_case(&generated.topology) {
        return Err(failure(format!(
            "{genspec_path}: genspec was generated on the {} topology, but --layout selects {} \
             (pass --layout {})",
            generated.topology,
            topo.name(),
            generated.topology.to_lowercase()
        )));
    }
    let config = chaos_config(args)?;
    let sim =
        sdnav_sim::Simulation::try_new(spec, &topo, config).map_err(|e| failure(e.to_string()))?;
    let seed = args.get_usize("seed", 1).map_err(usage)? as u64;
    let verdict_config = sdnav_chaos::VerdictConfig {
        replications: args.get_usize("replications", 5).map_err(usage)?,
        ..sdnav_chaos::VerdictConfig::default()
    };
    let report = sdnav_chaos::verdict(&sim, &generated, seed, &verdict_config)
        .map_err(|e| failure(format!("{genspec_path}: {e}")))?;

    match args.get("format") {
        Some("json") => {
            let json = report.to_doc().to_pretty();
            match args.get("out") {
                Some(out) => {
                    std::fs::write(out, format!("{json}\n"))
                        .map_err(|e| failure(format!("cannot write {out}: {e}")))?;
                    eprintln!("wrote {out}");
                }
                None => println!("{json}"),
            }
        }
        Some(other) => return Err(usage(format!("--format must be `json`, got {other:?}"))),
        None => {
            println!(
                "verdict for {:?} on {} (seed {seed}): baseline CP {:.9} ± {:.2e}, \
                 injected {:.9} (attribution-adjusted {:.9})",
                report.campaign,
                topo.name(),
                report.baseline_mean,
                report.baseline_half_width,
                report.cp_availability,
                report.adjusted_cp_availability,
            );
            let mut table = Table::new(vec![
                "mode",
                "verdict",
                "CP outages",
                "CP hours",
                "DP host-hours",
                "FMEA confirmed",
            ]);
            for mode in &report.modes {
                table.row(vec![
                    mode.label.clone(),
                    mode.verdict.name().to_owned(),
                    mode.attributed_cp_outages.to_string(),
                    format!("{:.4}", mode.attributed_cp_hours),
                    format!("{:.4}", mode.attributed_dp_hours),
                    if mode.impact_confirmed { "yes" } else { "no" }.to_owned(),
                ]);
            }
            print!("{table}");
            for violation in &report.violations {
                eprintln!("violation: {violation}");
            }
        }
    }
    if !report.pass() {
        return Err(failure(format!(
            "survive-or-attribute verdict failed with {} violation(s)",
            report.violations.len()
        )));
    }
    Ok(())
}

/// Runs a campaign's fail injections against the consensus DES instead of
/// the deployment simulator: `leader` resolves at event time to the
/// current leaseholder, `host:IDX` maps onto controller node `IDX`.
fn chaos_consensus(
    campaign: &sdnav_chaos::ChaosSpec,
    consensus_path: &str,
    args: &Args,
) -> Result<(), SdnavError> {
    let cspec: ControllerSpec = read_json(consensus_path)?;
    let consensus = cspec.consensus.clone().ok_or_else(|| {
        failure(format!(
            "{consensus_path}: spec has no consensus block — a consensus run needs one"
        ))
    })?;
    let horizon = args.get_f64("horizon", 100_000.0).map_err(usage)?;
    let accelerate = args.get_f64("accelerate", 100.0).map_err(usage)?;
    let defaults = sdnav_consensus::ConsensusParams::paper_defaults();
    let params = sdnav_consensus::ConsensusParams {
        node_mtbf_hours: defaults.node_mtbf_hours / accelerate,
        node_mttr_hours: defaults.node_mttr_hours,
        horizon_hours: horizon,
    };

    // Map the campaign's fail injections onto consensus kill hooks,
    // expanding `at`/`every` occurrences exactly as the simulator compiler
    // does.
    let mut injections = Vec::new();
    for inj in &campaign.injections {
        let target = match &inj.kind {
            sdnav_chaos::InjectionKind::Fail { target, .. } => match target {
                sdnav_chaos::TargetRef::Leader => sdnav_consensus::InjectTarget::Leader,
                sdnav_chaos::TargetRef::Host(i) => sdnav_consensus::InjectTarget::Node(*i),
                other => {
                    return Err(failure(format!(
                        "injection {:?}: target {other} is not representable in a consensus \
                         run (use `leader` or `host:IDX` for controller node IDX)",
                        inj.label
                    )))
                }
            },
            _ => {
                return Err(failure(format!(
                    "injection {:?}: only `fail` injections apply to a consensus run",
                    inj.label
                )))
            }
        };
        let mut occurrence = 0usize;
        loop {
            let at_hours = inj.at + occurrence as f64 * inj.every.unwrap_or(0.0);
            if at_hours >= horizon {
                break;
            }
            if occurrence >= sdnav_chaos::MAX_OCCURRENCES {
                return Err(failure(format!(
                    "injection {:?} expands to more than {} occurrences",
                    inj.label,
                    sdnav_chaos::MAX_OCCURRENCES
                )));
            }
            injections.push(sdnav_consensus::Injection { at_hours, target });
            if inj.every.is_none() {
                break;
            }
            occurrence += 1;
        }
    }

    let sim = sdnav_consensus::ConsensusSim::try_new(consensus, params)
        .map_err(|e| failure(format!("{consensus_path}: {e}")))?;
    let seed = args.get_usize("seed", 1).map_err(usage)? as u64;
    let outcome = sim
        .run_injected(seed, &injections)
        .map_err(|e| failure(e.to_string()))?;

    let spec = sim.spec();
    println!(
        "campaign {:?} on a {}-node consensus cluster (quorum {}, mix {}): \
         {} planned kill(s), {} fired, {} skipped",
        campaign.name,
        spec.cluster_size,
        spec.quorum(),
        spec.fault_mix.label(),
        injections.len(),
        outcome.injected_kills,
        outcome.skipped_injections,
    );
    println!(
        "  CP availability   : {:.9} (leader up, election-latency aware)",
        outcome.availability
    );
    println!(
        "  election fraction : {:.3e} ({} election(s))",
        outcome.election_fraction, outcome.elections
    );
    println!(
        "  stall fraction    : {:.3e} ({} quorum-loss stall(s))",
        outcome.stall_fraction, outcome.stalls
    );
    Ok(())
}

/// What `lint` is auditing (and, with `--fix`, rewriting).
enum LintTarget {
    Spec(Box<ControllerSpec>),
    Block(sdnav_blocks::Block),
    Set(Vec<ControllerSpec>),
    Campaign(sdnav_chaos::ChaosSpec),
    Ctmc(sdnav_markov::Ctmc),
    Grid(Box<GridSpec>),
}

fn read_json<T: sdnav_json::FromJson>(path: &str) -> Result<T, SdnavError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| failure(format!("cannot read {path}: {e}")))?;
    sdnav_json::from_str(&text).map_err(|e| failure(format!("cannot parse {path}: {e}")))
}

/// Writes via a sibling temp file + rename so an interrupted `--fix` never
/// leaves a half-written artifact behind.
fn write_atomic(path: &str, contents: &str) -> Result<(), SdnavError> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).map_err(|e| failure(format!("cannot write {tmp}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| failure(format!("cannot replace {path}: {e}")))
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]` — the root `sdnav lint --source` (bare) scans.
fn find_workspace_root() -> Result<std::path::PathBuf, SdnavError> {
    let mut dir = std::env::current_dir()
        .map_err(|e| failure(format!("cannot resolve current directory: {e}")))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| failure(format!("cannot read {}: {e}", manifest.display())))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(failure(
                "no workspace Cargo.toml found above the current directory; pass --source DIR",
            ));
        }
    }
}

/// `lint --source`: the detlint determinism/concurrency scan over Rust
/// source, sharing the model lint's output formats and exit contract
/// (0 clean / 1 findings / 2 usage).
fn lint_source(args: &Args) -> Result<(), SdnavError> {
    if args.has_flag("fix") || args.get("topology").is_some() {
        return Err(usage(
            "--source cannot be combined with --fix or --topology",
        ));
    }
    let (report, scanned) = match args.get("source") {
        Some(path) if path.ends_with(".rs") => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| failure(format!("cannot read {path}: {e}")))?;
            (sdnav_detlint::scan_source(path, &text), 1)
        }
        Some(path) => {
            let summary = sdnav_detlint::scan_workspace(std::path::Path::new(path))
                .map_err(|e| failure(format!("cannot scan workspace {path}: {e}")))?;
            (summary.report, summary.files_scanned)
        }
        None => {
            let root = find_workspace_root()?;
            let summary = sdnav_detlint::scan_workspace(&root)
                .map_err(|e| failure(format!("cannot scan workspace {}: {e}", root.display())))?;
            (summary.report, summary.files_scanned)
        }
    };
    match args.get("format") {
        Some("json") => println!("{}", sdnav_json::to_string_pretty(&report)),
        Some("sarif") => println!("{}", sdnav_audit::to_sarif(&report, None).to_pretty()),
        Some(other) => {
            return Err(usage(format!(
                "--format must be `json` or `sarif`, got {other:?}"
            )))
        }
        None => {
            print!("{}", report.render());
            eprintln!("detlint: scanned {scanned} file(s)");
        }
    }
    if report.has_errors() {
        return Err(failure(format!(
            "detlint found {} error(s)",
            report.error_count()
        )));
    }
    Ok(())
}

fn lint(args: &Args) -> Result<(), SdnavError> {
    let source = args.has_flag("source") || args.get("source").is_some();
    let selectors = [
        args.get("spec"),
        args.get("block"),
        args.get("spec-set"),
        args.get("campaign"),
        args.get("ctmc"),
        args.get("grid"),
    ];
    if selectors.iter().flatten().count() + usize::from(source) > 1 {
        return Err(usage(
            "--spec, --block, --spec-set, --campaign, --ctmc, --grid and --source are mutually exclusive",
        ));
    }
    if source {
        return lint_source(args);
    }
    let (target, path) = if let Some(path) = args.get("block") {
        (LintTarget::Block(read_json(path)?), Some(path))
    } else if let Some(path) = args.get("spec-set") {
        (LintTarget::Set(read_json(path)?), Some(path))
    } else if let Some(path) = args.get("campaign") {
        (LintTarget::Campaign(read_json(path)?), Some(path))
    } else if let Some(path) = args.get("ctmc") {
        (LintTarget::Ctmc(read_json(path)?), Some(path))
    } else if let Some(path) = args.get("grid") {
        (LintTarget::Grid(Box::new(read_json(path)?)), Some(path))
    } else if let Some(path) = args.get("spec") {
        (LintTarget::Spec(Box::new(read_json(path)?)), Some(path))
    } else {
        (
            LintTarget::Spec(Box::new(ControllerSpec::opencontrail_3x())),
            None,
        )
    };

    let fix = args.has_flag("fix");
    let dry_run = args.has_flag("dry-run");
    if dry_run && !fix {
        return Err(usage("--dry-run only makes sense with --fix"));
    }
    if fix
        && matches!(
            target,
            LintTarget::Set(_)
                | LintTarget::Campaign(_)
                | LintTarget::Ctmc(_)
                | LintTarget::Grid(_)
        )
    {
        return Err(usage("--fix supports a single --spec or --block"));
    }
    if fix && args.get("topology").is_some() {
        return Err(usage("--fix cannot be combined with --topology"));
    }

    let audit = |target: &LintTarget| -> Result<sdnav_audit::AuditReport, SdnavError> {
        match target {
            LintTarget::Spec(spec) => {
                let mut report = sdnav_audit::audit_model(spec);
                if let Some(topo_path) = args.get("topology") {
                    let topo: Topology = read_json(topo_path)?;
                    report.merge(sdnav_audit::audit_topology(spec, &topo));
                }
                Ok(report)
            }
            LintTarget::Block(block) => Ok(sdnav_audit::audit_block(block, "rbd")),
            LintTarget::Set(specs) => Ok(sdnav_audit::audit_spec_set(specs)),
            LintTarget::Campaign(campaign) => {
                // Campaigns are linted against the deployment they will run
                // on: the built-in spec at --layout/--scenario, with the
                // same config options `chaos run` takes.
                let spec = ControllerSpec::opencontrail_3x();
                let topo = layout(&spec, args)?;
                let config = chaos_config(args)?;
                let sim = sdnav_sim::Simulation::try_new(&spec, &topo, config)
                    .map_err(|e| failure(e.to_string()))?;
                Ok(sdnav_audit::audit_campaign(campaign, &sim))
            }
            LintTarget::Ctmc(ctmc) => {
                let mut report = sdnav_audit::audit_ctmc(ctmc, "ctmc");
                report.merge(sdnav_audit::audit_ctmc_structure(ctmc, "ctmc"));
                Ok(report)
            }
            LintTarget::Grid(grid) => Ok(sdnav_audit::audit_grid(
                &ControllerSpec::opencontrail_3x(),
                grid,
            )),
        }
    };

    let mut report = audit(&target)?;
    let mut pending_fixes = 0usize;
    if fix {
        let (fixed, plan) = match &target {
            LintTarget::Spec(spec) => {
                let (spec, plan) = sdnav_audit::fix_spec(spec);
                (LintTarget::Spec(Box::new(spec)), plan)
            }
            LintTarget::Block(block) => {
                let (block, plan) = sdnav_audit::fix_block(block);
                (LintTarget::Block(block), plan)
            }
            LintTarget::Set(_)
            | LintTarget::Campaign(_)
            | LintTarget::Ctmc(_)
            | LintTarget::Grid(_) => unreachable!("rejected above"),
        };
        print!("{}", plan.render());
        if dry_run {
            pending_fixes = plan.edits.len();
        }
        if !dry_run && !plan.is_empty() {
            let path = path.ok_or_else(|| {
                usage("--fix needs a file to rewrite; pass --spec FILE or --block FILE")
            })?;
            let json = match &fixed {
                LintTarget::Spec(spec) => sdnav_json::to_string_pretty(spec.as_ref()),
                LintTarget::Block(block) => sdnav_json::to_string_pretty(block),
                LintTarget::Set(_)
                | LintTarget::Campaign(_)
                | LintTarget::Ctmc(_)
                | LintTarget::Grid(_) => unreachable!("rejected above"),
            };
            write_atomic(path, &format!("{json}\n"))?;
            eprintln!("fix: rewrote {path}");
            // Exit-code semantics follow the artifact now on disk.
            report = audit(&fixed)?;
        }
    }

    match args.get("format") {
        Some("json") => println!("{}", sdnav_json::to_string_pretty(&report)),
        Some("sarif") => println!("{}", sdnav_audit::to_sarif(&report, path).to_pretty()),
        Some(other) => {
            return Err(usage(format!(
                "--format must be `json` or `sarif`, got {other:?}"
            )))
        }
        None => print!("{}", report.render()),
    }
    if pending_fixes > 0 {
        // `--fix --dry-run` is a gate: a nonzero exit means re-running
        // without --dry-run would rewrite the file.
        return Err(failure(format!(
            "{pending_fixes} auto-fixable finding(s) pending (--fix --dry-run)"
        )));
    }
    if report.has_errors() {
        return Err(failure(format!(
            "lint found {} error(s)",
            report.error_count()
        )));
    }
    if args.has_flag("deny-warnings") && report.warning_count() > 0 {
        return Err(failure(format!(
            "lint found {} warning(s) (--deny-warnings)",
            report.warning_count()
        )));
    }
    Ok(())
}

fn dump_spec(spec: &ControllerSpec, args: &Args) -> Result<(), SdnavError> {
    let json = sdnav_json::to_string_pretty(spec);
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| failure(format!("cannot write {path}: {e}")))?;
            println!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}
