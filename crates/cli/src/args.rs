//! Minimal command-line argument parsing (no external dependency).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, an optional action (second
/// positional, e.g. `chaos run`), plus `--key value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    subcommand: Option<String>,
    action: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an argument list (excluding the program name).
    ///
    /// The first non-`--` token is the subcommand and the second, when
    /// present, its action (`sdnav chaos run ...`). A `--key` followed by
    /// a non-`--` token is an option; a `--key` followed by another
    /// `--key` (or nothing) is a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name '--'".to_owned());
                }
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        out.options.insert(key.to_owned(), value);
                    }
                    _ => out.flags.push(key.to_owned()),
                }
            } else if out.subcommand.is_none() {
                out.subcommand = Some(arg);
            } else if out.action.is_none() {
                out.action = Some(arg);
            } else {
                return Err(format!("unexpected positional argument {arg:?}"));
            }
        }
        Ok(out)
    }

    /// The subcommand, if any.
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// The action (second positional), if any.
    pub fn action(&self) -> Option<&str> {
        self.action.as_deref()
    }

    /// String option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Parsed numeric option with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }

    /// Parsed integer option with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v:?}")),
        }
    }

    /// Boolean flag presence.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(args.iter().map(|s| (*s).to_owned())).unwrap()
    }

    #[test]
    fn parses_subcommand_options_and_flags() {
        let a = parse(&["fig3", "--points", "11", "--csv"]);
        assert_eq!(a.subcommand(), Some("fig3"));
        assert_eq!(a.get("points"), Some("11"));
        assert!(a.has_flag("csv"));
        assert!(!a.has_flag("json"));
    }

    #[test]
    fn numeric_accessors() {
        let a = parse(&["x", "--horizon", "2.5"]);
        assert_eq!(a.get_f64("horizon", 1.0).unwrap(), 2.5);
        assert_eq!(a.get_f64("missing", 7.0).unwrap(), 7.0);
        assert_eq!(a.get_usize("missing", 3).unwrap(), 3);
    }

    #[test]
    fn rejects_bad_number() {
        let a = parse(&["x", "--n", "abc"]);
        assert!(a.get_f64("n", 0.0).is_err());
        assert!(a.get_usize("n", 0).is_err());
    }

    #[test]
    fn second_positional_is_the_action() {
        let a = parse(&["chaos", "run", "--campaign", "c.json"]);
        assert_eq!(a.subcommand(), Some("chaos"));
        assert_eq!(a.action(), Some("run"));
        assert_eq!(a.get("campaign"), Some("c.json"));
    }

    #[test]
    fn rejects_extra_positional() {
        let r = Args::parse(["a".to_owned(), "b".to_owned(), "c".to_owned()]);
        assert!(r.is_err());
    }

    #[test]
    fn no_subcommand_is_ok() {
        let a = parse(&[]);
        assert_eq!(a.subcommand(), None);
    }
}
