//! The DL001–DL010 determinism and concurrency checks over a token stream.
//!
//! Every check is a token-sequence pattern plus a little scope context
//! (brace depth, the enclosing `fn`/`impl`/`mod` names, whether we are
//! inside a `use` statement). There is deliberately no type inference and
//! no `syn`: the patterns are tuned so that on *this* workspace every raw
//! finding is either a true hazard or a justified, documented suppression —
//! the fixture corpus under `tests/fixtures/source/` pins both directions.
//!
//! Test code is exempt: items under `#[cfg(test)]` or `#[test]` are skipped
//! wholesale, because nondeterminism that can only reach a test assertion
//! (temp-file names from thread ids, wall-clock timeouts) is not a result
//! hazard.

use std::collections::BTreeSet;

use crate::lexer::{lex, Token, TokenKind};

/// One raw (pre-suppression) source finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Diagnostic code (`DL001` … `DL010`).
    pub code: &'static str,
    /// 1-based line of the offending token.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

/// Iteration methods whose visit order leaks a hash map's nondeterministic
/// layout.
const ORDER_LEAKING_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// `std::env` readers that make a run depend on ambient process state.
const ENV_READERS: &[&str] = &[
    "var",
    "var_os",
    "vars",
    "vars_os",
    "args",
    "args_os",
    "set_var",
    "remove_var",
];

const INT_CAST_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Function-name fragments marking a thread-order-sensitive merge site
/// (DL003 context).
const MERGE_CONTEXT: &[&str] = &["merge", "combine", "reduce", "aggregat"];

/// Function-name or file-name fragments marking fingerprint / WAL framing
/// code (DL009 context).
const FRAMING_CONTEXT: &[&str] = &["fingerprint", "frame", "wal", "checkpoint", "checksum"];

/// Runs every check over one file. `rel_path` is the workspace-relative
/// path (used for the per-crate scoping of DL007/DL008 and the file-name
/// contexts of DL003/DL009); findings are raw — suppression is layered on
/// by the caller.
#[must_use]
pub fn check_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    Checker::new(rel_path, &lexed.tokens).run()
}

struct Scope {
    depth: u32,
    name: String,
}

struct Checker<'a> {
    rel_path: &'a str,
    file_stem: String,
    tokens: &'a [Token],
    depth: u32,
    scopes: Vec<Scope>,
    pending_scope: Option<String>,
    in_use_stmt: bool,
    /// Identifiers known (by declaration or construction) to be
    /// `HashMap`/`HashSet` values.
    map_idents: BTreeSet<String>,
    findings: Vec<Finding>,
}

impl<'a> Checker<'a> {
    fn new(rel_path: &'a str, tokens: &'a [Token]) -> Self {
        let file_stem = rel_path
            .rsplit('/')
            .next()
            .unwrap_or(rel_path)
            .trim_end_matches(".rs")
            .to_owned();
        Checker {
            rel_path,
            file_stem,
            tokens,
            depth: 0,
            scopes: Vec::new(),
            pending_scope: None,
            in_use_stmt: false,
            map_idents: BTreeSet::new(),
            findings: Vec::new(),
        }
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        self.tokens.get(i).and_then(|t| t.kind.ident())
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.tokens.get(i).is_some_and(|t| t.kind.is_punct(c))
    }

    /// `::` at position `i` (two adjacent colon puncts).
    fn path_sep_at(&self, i: usize) -> bool {
        self.punct_at(i, ':') && self.punct_at(i + 1, ':')
    }

    fn push(&mut self, code: &'static str, line: u32, message: String, hint: &str) {
        // One finding per (code, line): compound expressions often trip a
        // pattern twice.
        if self
            .findings
            .iter()
            .any(|f| f.code == code && f.line == line)
        {
            return;
        }
        self.findings.push(Finding {
            code,
            line,
            message,
            hint: hint.to_owned(),
        });
    }

    /// Innermost enclosing scope name matching `fragments`
    /// (case-insensitive), if any.
    fn scope_matches(&self, fragments: &[&str]) -> bool {
        self.scopes.iter().any(|s| {
            let lower = s.name.to_lowercase();
            fragments.iter().any(|f| lower.contains(f))
        })
    }

    fn file_matches(&self, fragments: &[&str]) -> bool {
        let lower = self.file_stem.to_lowercase();
        fragments.iter().any(|f| lower.contains(f))
    }

    /// Float evidence (a float literal or a bare `f64`/`f32` token) in the
    /// token window `[i - back, i + fwd]`.
    fn float_evidence_near(&self, i: usize, back: usize, fwd: usize) -> bool {
        let lo = i.saturating_sub(back);
        let hi = (i + fwd).min(self.tokens.len());
        self.tokens[lo..hi].iter().any(|t| match &t.kind {
            TokenKind::Float => true,
            TokenKind::Ident(s) => s == "f64" || s == "f32",
            _ => false,
        })
    }

    fn run(mut self) -> Vec<Finding> {
        let mut i = 0usize;
        while i < self.tokens.len() {
            let tok = &self.tokens[i];
            match &tok.kind {
                TokenKind::Punct('#') => {
                    i = self.handle_attribute(i);
                    continue;
                }
                TokenKind::Punct('{') => {
                    self.depth += 1;
                    if let Some(name) = self.pending_scope.take() {
                        self.scopes.push(Scope {
                            depth: self.depth,
                            name,
                        });
                    }
                }
                TokenKind::Punct('}') => {
                    self.depth = self.depth.saturating_sub(1);
                    while self.scopes.last().is_some_and(|s| s.depth > self.depth) {
                        self.scopes.pop();
                    }
                }
                TokenKind::Punct(';') => {
                    self.in_use_stmt = false;
                    self.pending_scope = None;
                }
                TokenKind::Ident(name) => match name.as_str() {
                    "use" => self.in_use_stmt = true,
                    "fn" => {
                        if let Some(fn_name) = self.ident_at(i + 1) {
                            self.pending_scope = Some(fn_name.to_owned());
                        }
                        self.check_dl010(i);
                    }
                    "impl" => self.capture_impl_name(i),
                    "mod" => {
                        if let Some(mod_name) = self.ident_at(i + 1) {
                            self.pending_scope = Some(mod_name.to_owned());
                        }
                    }
                    "for" => self.check_for_loop(i),
                    "as" if !self.in_use_stmt => self.check_dl009(i),
                    "HashMap" | "HashSet" if !self.in_use_stmt => self.register_constructed(i),
                    "Instant" | "SystemTime" if !self.in_use_stmt => self.check_dl002(i),
                    "RandomState" | "DefaultHasher" | "BuildHasherDefault" if !self.in_use_stmt => {
                        self.check_dl004(i)
                    }
                    "thread" if !self.in_use_stmt => self.check_dl005(i),
                    "catch_unwind" if !self.in_use_stmt => self.check_dl006(i),
                    "env" if !self.in_use_stmt => self.check_dl007(i),
                    "sum" | "fold" if !self.in_use_stmt => self.check_dl003(i),
                    _ => {
                        if !self.in_use_stmt {
                            self.register_annotated(i);
                            self.check_map_method(i);
                        }
                    }
                },
                TokenKind::Str(content) => self.check_dl008(i, content),
                TokenKind::Punct('+') if self.punct_at(i + 1, '=') => self.check_dl003(i),
                _ => {}
            }
            i += 1;
        }
        self.findings.sort();
        self.findings
    }

    /// Skips an attribute at `#`; when it gates test code
    /// (`#[cfg(test)]`, `#[test]`), skips the whole annotated item too.
    fn handle_attribute(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        let inner = self.punct_at(j, '!');
        if inner {
            j += 1;
        }
        if !self.punct_at(j, '[') {
            return i + 1;
        }
        // Collect attribute idents across the balanced bracket.
        let mut bracket_depth = 0i32;
        let mut idents: Vec<&str> = Vec::new();
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokenKind::Punct('[') => bracket_depth += 1,
                TokenKind::Punct(']') => {
                    bracket_depth -= 1;
                    if bracket_depth == 0 {
                        j += 1;
                        break;
                    }
                }
                TokenKind::Ident(s) => idents.push(s),
                _ => {}
            }
            j += 1;
        }
        let gates_test = !inner
            && idents.contains(&"test")
            && !idents.contains(&"not")
            && (idents[0] == "test" || idents[0] == "cfg");
        if !gates_test {
            return j;
        }
        // Skip the annotated item: any further attributes, then either a
        // `;`-terminated item or a braced one (skip the balanced block).
        while self.punct_at(j, '#') {
            j = self.skip_balanced_brackets(j + 1);
        }
        let mut brace_depth = 0i32;
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokenKind::Punct('{') => brace_depth += 1,
                TokenKind::Punct('}') => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        return j + 1;
                    }
                }
                TokenKind::Punct(';') if brace_depth == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        j
    }

    fn skip_balanced_brackets(&self, mut j: usize) -> usize {
        if !self.punct_at(j, '[') {
            return j;
        }
        let mut depth = 0i32;
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// `impl [<..>] Trait for Type {` / `impl [<..>] Type {` — captures the
    /// implemented type's last path segment as the scope name.
    fn capture_impl_name(&mut self, i: usize) {
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut last_ident: Option<&str> = None;
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle -= 1,
                TokenKind::Punct('{') if angle <= 0 => break,
                TokenKind::Ident(s) if angle <= 0 => {
                    if s == "for" {
                        last_ident = None;
                    } else if s != "where" {
                        last_ident = Some(s);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(name) = last_ident {
            self.pending_scope = Some(name.to_owned());
        }
    }

    /// `name : [&] [mut] [path ::] HashMap|HashSet` — registers `name`.
    fn register_annotated(&mut self, i: usize) {
        let Some(name) = self.ident_at(i) else { return };
        if !self.punct_at(i + 1, ':') || self.path_sep_at(i + 1) {
            return;
        }
        // Walk the type: references, path segments, separators.
        let mut j = i + 2;
        let mut hops = 0;
        while hops < 10 {
            match self.tokens.get(j).map(|t| &t.kind) {
                Some(TokenKind::Punct('&' | ':')) => j += 1,
                Some(TokenKind::Lifetime) => j += 1,
                Some(TokenKind::Ident(s)) => {
                    if s == "HashMap" || s == "HashSet" {
                        self.map_idents.insert(name.to_owned());
                        return;
                    }
                    if s == "mut" || self.path_sep_at(j + 1) {
                        j += 1;
                    } else {
                        return;
                    }
                }
                _ => return,
            }
            hops += 1;
        }
    }

    /// `name = [path ::] HashMap|HashSet :: new|with_capacity|default|from`
    /// — registers `name` by walking back from the constructor.
    fn register_constructed(&mut self, i: usize) {
        if !self.path_sep_at(i + 1)
            || !matches!(
                self.ident_at(i + 3),
                Some("new" | "with_capacity" | "default" | "from")
            )
        {
            return;
        }
        // Walk back over any leading path (`std :: collections ::`).
        let mut j = i;
        while j >= 3 && self.path_sep_at(j - 2) && self.tokens[j - 3].kind.ident().is_some() {
            j -= 3;
        }
        if j >= 2 && self.punct_at(j - 1, '=') && !self.punct_at(j - 2, '=') {
            if let Some(name) = self.ident_at(j - 2) {
                self.map_idents.insert(name.to_owned());
            }
        }
    }

    /// DL001 via `map.iter()`-style calls on a registered identifier.
    fn check_map_method(&mut self, i: usize) {
        let Some(name) = self.ident_at(i) else { return };
        if !self.map_idents.contains(name) || !self.punct_at(i + 1, '.') {
            return;
        }
        let Some(method) = self.ident_at(i + 2) else {
            return;
        };
        if ORDER_LEAKING_METHODS.contains(&method) {
            let line = self.tokens[i].line;
            self.push(
                "DL001",
                line,
                format!("iteration over hash-ordered `{name}` (`.{method}()`) — visit order is nondeterministic and can leak into emitted results"),
                "switch the container to BTreeMap/BTreeSet, or collect and sort before emitting",
            );
        }
    }

    /// DL001 via `for pat in [&[mut]] map {`.
    fn check_for_loop(&mut self, i: usize) {
        // Find `in` within the next dozen tokens (patterns may be tuples).
        let mut j = i + 1;
        let limit = (i + 14).min(self.tokens.len());
        while j < limit && !self.tokens[j].kind.is_ident("in") {
            j += 1;
        }
        if j >= limit {
            return;
        }
        let mut k = j + 1;
        while self.punct_at(k, '&') || self.ident_at(k) == Some("mut") {
            k += 1;
        }
        let Some(name) = self.ident_at(k) else { return };
        if self.map_idents.contains(name) && self.punct_at(k + 1, '{') {
            let line = self.tokens[k].line;
            self.push(
                "DL001",
                line,
                format!("iteration over hash-ordered `{name}` — visit order is nondeterministic and can leak into emitted results"),
                "switch the container to BTreeMap/BTreeSet, or collect and sort before emitting",
            );
        }
    }

    /// DL002: `Instant::now()` / `SystemTime::now()`.
    fn check_dl002(&mut self, i: usize) {
        if !self.path_sep_at(i + 1) || self.ident_at(i + 3) != Some("now") {
            return;
        }
        let source = self.ident_at(i).unwrap_or("clock");
        let line = self.tokens[i].line;
        self.push(
            "DL002",
            line,
            format!("`{source}::now()` — wall-clock readings differ between byte-identical runs"),
            "route timings to the run-varying metrics channel (stderr), never into result payloads; \
             suppress with a reason if this site provably feeds metrics only",
        );
    }

    /// DL003: float accumulation (`+=`, `.sum()`, `fold(0.0, ..)`) inside a
    /// merge-context function, outside the blessed Welford patterns.
    fn check_dl003(&mut self, i: usize) {
        let in_merge_context = self.scope_matches(MERGE_CONTEXT) || self.file_matches(&["pool"]);
        if !in_merge_context || self.scope_matches(&["welford"]) {
            return;
        }
        if !self.float_evidence_near(i, 8, 16) {
            return;
        }
        // `sum`/`fold` must be method calls; `+=` is handled by the caller
        // matching the punct pair.
        if let Some(name) = self.ident_at(i) {
            let is_method = self.punct_at(i.wrapping_sub(1), '.');
            if !is_method {
                return;
            }
            let line = self.tokens[i].line;
            self.push(
                "DL003",
                line,
                format!("floating-point `.{name}()` accumulation in a merge site — f64 addition is not associative, so thread arrival order changes the sum"),
                "merge through the Welford accumulator (order-insensitive to the bit level as used here) \
                 or accumulate in plan order on a single thread",
            );
        } else {
            let line = self.tokens[i].line;
            self.push(
                "DL003",
                line,
                "floating-point `+=` accumulation in a merge site — f64 addition is not associative, so thread arrival order changes the sum".to_owned(),
                "merge through the Welford accumulator (order-insensitive to the bit level as used here) \
                 or accumulate in plan order on a single thread",
            );
        }
    }

    /// DL004: `RandomState` / `DefaultHasher` / `BuildHasherDefault`.
    fn check_dl004(&mut self, i: usize) {
        let name = self.ident_at(i).unwrap_or("hasher");
        let line = self.tokens[i].line;
        self.push(
            "DL004",
            line,
            format!("`{name}` — per-process-seeded or release-dependent hashing makes keyed lookups and layouts irreproducible"),
            "hash with the workspace's FNV-1a (`sdnav_core::state::fnv1a`) or another fixed-seed hasher",
        );
    }

    /// DL005: `thread::current()` (thread identity reaching values).
    fn check_dl005(&mut self, i: usize) {
        if !self.path_sep_at(i + 1) || self.ident_at(i + 3) != Some("current") {
            return;
        }
        let line = self.tokens[i].line;
        self.push(
            "DL005",
            line,
            "`thread::current()` — thread identity varies run to run and across `--threads`, and must never reach a payload".to_owned(),
            "derive names/seeds from the work item's identity (index, key), not from the executing thread",
        );
    }

    /// DL006: `catch_unwind` whose payload is discarded.
    fn check_dl006(&mut self, i: usize) {
        let window = &self.tokens[i..(i + 80).min(self.tokens.len())];
        let discards = window.windows(3).any(|w| {
            // `Err(_)` — wildcard payload.
            (w[0].kind.is_ident("Err") && w[1].kind.is_punct('(') && w[2].kind.is_punct('_'))
                // `.ok()` / `.err()` / `.is_err()` — result collapsed.
                || (w[0].kind.is_punct('.')
                    && matches!(w[1].kind.ident(), Some("ok" | "err" | "is_err" | "is_ok"))
                    && w[2].kind.is_punct('('))
        });
        if discards {
            let line = self.tokens[i].line;
            self.push(
                "DL006",
                line,
                "`catch_unwind` discards the panic payload — the failure cause never reaches a quarantine report".to_owned(),
                "bind the payload (`Err(payload)`) and route it into the structured quarantine path",
            );
        }
    }

    /// DL007: ambient `std::env` reads outside `crates/cli`.
    fn check_dl007(&mut self, i: usize) {
        if self.rel_path.starts_with("crates/cli/") {
            return;
        }
        if !self.path_sep_at(i + 1) {
            return;
        }
        let Some(reader) = self.ident_at(i + 3) else {
            return;
        };
        if !ENV_READERS.contains(&reader) {
            return;
        }
        let line = self.tokens[i].line;
        self.push(
            "DL007",
            line,
            format!("`env::{reader}` outside crates/cli — ambient process state reaches library behavior"),
            "thread the value through explicit configuration (builder/option) from the CLI layer",
        );
    }

    /// DL008: versioned schema string literal outside `sdnav_json::schema`.
    fn check_dl008(&mut self, i: usize, content: &str) {
        if self.rel_path.starts_with("crates/json/") || !is_schema_literal(content) {
            return;
        }
        let line = self.tokens[i].line;
        self.push(
            "DL008",
            line,
            format!("schema version literal {content:?} bypasses the `sdnav_json::schema` registry"),
            "use the named constant from `sdnav_json::schema` so producers and consumers version together",
        );
    }

    /// DL009: lossy `as` casts where fingerprint/WAL framing code must be
    /// bit-exact.
    fn check_dl009(&mut self, i: usize) {
        if !self.file_matches(FRAMING_CONTEXT) && !self.scope_matches(FRAMING_CONTEXT) {
            return;
        }
        let Some(target) = self.ident_at(i + 1) else {
            return;
        };
        let float_target = target == "f64" || target == "f32";
        let lossy_int = INT_CAST_TARGETS.contains(&target) && self.float_evidence_near(i, 16, 0);
        if !(float_target || lossy_int) {
            return;
        }
        let line = self.tokens[i].line;
        self.push(
            "DL009",
            line,
            format!("`as {target}` cast in fingerprint/WAL framing code — saturating/rounding casts are not bit-exact"),
            "frame floats with `f64::to_bits`/`from_bits` so replay and fingerprints are IEEE-754 exact",
        );
    }

    /// DL010: public function returning a hash-ordered container.
    fn check_dl010(&mut self, i: usize) {
        // Only a bare `pub` (not `pub(crate)`) is public API.
        if i == 0 || self.ident_at(i - 1) != Some("pub") || self.punct_at(i, '(') {
            return;
        }
        if i >= 2 && self.punct_at(i - 1, ')') {
            return;
        }
        // Scan the signature for `-> ... HashMap|HashSet` before the body.
        let mut j = i + 1;
        let mut seen_arrow = false;
        let limit = (i + 120).min(self.tokens.len());
        while j < limit {
            match &self.tokens[j].kind {
                TokenKind::Punct('{') | TokenKind::Punct(';') => return,
                TokenKind::Punct('-') if self.punct_at(j + 1, '>') => seen_arrow = true,
                TokenKind::Ident(s) if seen_arrow && (s == "HashMap" || s == "HashSet") => {
                    let line = self.tokens[i].line;
                    let fn_name = self.ident_at(i + 1).unwrap_or("function").to_owned();
                    self.push(
                        "DL010",
                        line,
                        format!("public `fn {fn_name}` returns a hash-ordered container — callers can iterate it straight into emitted output"),
                        "return a BTreeMap/BTreeSet or a sorted Vec so emit order cannot depend on hasher state",
                    );
                    return;
                }
                TokenKind::Ident(s) if s == "where" => return,
                _ => {}
            }
            j += 1;
        }
    }
}

/// Whether a string literal is exactly a versioned schema discriminator
/// (`sdnav-<kind>/v<N>`).
#[must_use]
pub fn is_schema_literal(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("sdnav-") else {
        return false;
    };
    let Some((kind, version)) = rest.split_once("/v") else {
        return false;
    };
    !kind.is_empty()
        && kind
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        && !version.is_empty()
        && version.chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(rel_path: &str, src: &str) -> Vec<(&'static str, u32)> {
        check_source(rel_path, src)
            .into_iter()
            .map(|f| (f.code, f.line))
            .collect()
    }

    #[test]
    fn dl001_flags_hashmap_iteration() {
        let src = "use std::collections::HashMap;\n\
                   pub fn emit(counts: &HashMap<String, u64>) -> String {\n\
                       let mut out = String::new();\n\
                       for (k, v) in counts.iter() {\n\
                           out.push_str(&format!(\"{k}={v}\"));\n\
                       }\n\
                       out\n\
                   }\n";
        assert_eq!(codes("crates/x/src/lib.rs", src), vec![("DL001", 4)]);
    }

    #[test]
    fn dl001_flags_direct_for_loop_and_constructed_maps() {
        let src = "fn f() {\n\
                       let mut seen = std::collections::HashSet::new();\n\
                       seen.insert(1);\n\
                       for v in &seen {\n\
                           println!(\"{v}\");\n\
                       }\n\
                   }\n";
        assert_eq!(codes("a.rs", src), vec![("DL001", 4)]);
    }

    #[test]
    fn dl001_ignores_btreemap_and_lookups() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
                   fn f(m: &HashMap<u32, u32>, b: &BTreeMap<u32, u32>) -> u32 {\n\
                       for (_, v) in b.iter() { let _ = v; }\n\
                       *m.get(&1).unwrap()\n\
                   }\n";
        assert!(codes("a.rs", src).is_empty());
    }

    #[test]
    fn dl002_flags_instant_and_systemtime() {
        let src = "fn f() -> f64 {\n\
                       let t = std::time::Instant::now();\n\
                       t.elapsed().as_secs_f64()\n\
                   }\n";
        assert_eq!(codes("a.rs", src), vec![("DL002", 2)]);
    }

    #[test]
    fn dl003_flags_merge_accumulation_but_blesses_welford() {
        let merge = "fn merge_partials(parts: &[f64]) -> f64 {\n\
                         let mut total = 0.0;\n\
                         for p in parts { total += *p; }\n\
                         total\n\
                     }\n";
        assert_eq!(codes("a.rs", merge), vec![("DL003", 3)]);

        let welford = "impl Welford {\n\
                           fn merge(&mut self, other: &Welford) {\n\
                               self.m2 += other.m2;\n\
                           }\n\
                       }\n";
        assert!(codes("a.rs", welford).is_empty());

        let unordered = "fn merge_counts(counts: &[u64]) -> u64 {\n\
                             let mut total = 0;\n\
                             for c in counts { total += *c; }\n\
                             total\n\
                         }\n";
        assert!(codes("a.rs", unordered).is_empty(), "integer += is exact");
    }

    #[test]
    fn dl004_flags_random_state() {
        let src = "fn f() {\n\
                       let s = std::collections::hash_map::RandomState::new();\n\
                       let _ = s;\n\
                   }\n";
        assert_eq!(codes("a.rs", src), vec![("DL004", 2)]);
    }

    #[test]
    fn dl005_flags_thread_current() {
        let src = "fn tag() -> String { format!(\"{:?}\", std::thread::current().id()) }\n";
        assert_eq!(codes("a.rs", src), vec![("DL005", 1)]);
    }

    #[test]
    fn dl006_flags_dropped_payload_only() {
        let dropped = "fn f() -> bool { std::panic::catch_unwind(|| {}).is_err() }\n";
        assert_eq!(codes("a.rs", dropped), vec![("DL006", 1)]);

        let routed = "fn f() {\n\
                          match std::panic::catch_unwind(|| {}) {\n\
                              Ok(()) => {}\n\
                              Err(payload) => quarantine(payload),\n\
                          }\n\
                      }\n";
        assert!(codes("a.rs", routed).is_empty());
    }

    #[test]
    fn dl007_flags_env_reads_outside_cli() {
        let src = "fn f() -> Option<String> { std::env::var(\"X\").ok() }\n";
        assert_eq!(codes("crates/grid/src/lib.rs", src), vec![("DL007", 1)]);
        assert!(codes("crates/cli/src/main.rs", src).is_empty());
        // temp_dir is a path lookup, not ambient configuration.
        let tmp = "fn f() -> std::path::PathBuf { std::env::temp_dir() }\n";
        assert!(codes("crates/grid/src/lib.rs", tmp).is_empty());
    }

    #[test]
    fn dl008_flags_schema_literals_outside_json_crate() {
        let src = "fn f() -> &'static str { \"sdnav-results/v2\" }\n";
        assert_eq!(codes("crates/grid/src/lib.rs", src), vec![("DL008", 1)]);
        assert!(codes("crates/json/src/schema.rs", src).is_empty());
        // Prose mentioning a schema inside a longer string is not a match.
        let prose = "const HELP: &str = \"emits the sdnav-results/v2 document\";\n";
        assert!(codes("crates/grid/src/lib.rs", prose).is_empty());
    }

    #[test]
    fn dl009_flags_lossy_casts_in_framing_context_only() {
        let src = "pub fn frame_mean(mean: f64) -> u64 { mean as u64 }\n";
        assert_eq!(
            codes("crates/grid/src/checkpoint.rs", src),
            vec![("DL009", 1)]
        );
        // Same cast in a non-framing file and function: out of scope.
        assert!(codes(
            "crates/grid/src/lib.rs",
            "pub fn x(mean: f64) -> u64 { mean as u64 }\n"
        )
        .is_empty());
        // Integer widening in framing code is lossless and allowed.
        let widen = "fn frame(samples: usize) -> u64 { samples as u64 }\n";
        assert!(codes("crates/grid/src/checkpoint.rs", widen).is_empty());
    }

    #[test]
    fn dl010_flags_public_hashmap_returns_only() {
        let src = "use std::collections::HashMap;\n\
                   pub fn histogram() -> HashMap<u64, u64> { HashMap::new() }\n";
        let found = codes("a.rs", src);
        assert!(found.contains(&("DL010", 2)), "{found:?}");

        let crate_private =
            "pub(crate) fn h() -> std::collections::HashMap<u64, u64> { todo!() }\n";
        assert!(codes("a.rs", crate_private).is_empty());

        let arg_only =
            "pub fn count(m: &std::collections::HashMap<u64, u64>) -> usize { m.len() }\n";
        assert!(codes("a.rs", arg_only).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn real() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() {\n\
                           let _ = std::time::Instant::now();\n\
                           let _ = format!(\"{:?}\", std::thread::current().id());\n\
                       }\n\
                   }\n";
        assert!(codes("a.rs", src).is_empty());
        // cfg(not(test)) code is NOT exempt.
        let not_test = "#[cfg(not(test))]\n\
                        fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(codes("a.rs", not_test), vec![("DL002", 2)]);
    }

    #[test]
    fn schema_literal_matcher() {
        assert!(is_schema_literal("sdnav-sweep-results/v1"));
        assert!(is_schema_literal("sdnav-chaos-digest/v12"));
        assert!(!is_schema_literal("sdnav-sweep-results"));
        assert!(!is_schema_literal("sdnav-/v1"));
        assert!(!is_schema_literal("the sdnav-sweep-results/v1 document"));
        assert!(!is_schema_literal("other-results/v1"));
    }
}
