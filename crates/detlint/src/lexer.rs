//! A hand-rolled, std-only token-level lexer for Rust source.
//!
//! The scanner does not need a full parse — every DL check works on token
//! sequences plus a little brace-depth bookkeeping — so this lexer does the
//! minimum a *sound* token stream requires: comments are stripped (but
//! `detlint::allow` comments are captured for the suppression pass), string
//! and char literals become opaque [`Token::Str`]/[`Token::Char`] tokens
//! whose contents are never mistaken for code, lifetimes are told apart
//! from char literals, and raw strings honor their `#` fences. Everything
//! else becomes an identifier, a numeric literal (float and integer kept
//! distinct — DL003/DL009 care), or a one-character punctuation token.

/// One lexed token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

/// What a token is.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `iter`, ...).
    Ident(String),
    /// String literal (regular, raw, or byte); payload is the unescaped-ish
    /// raw content between the quotes, kept for DL008's schema matching.
    Str(String),
    /// Char or byte-char literal; contents are irrelevant to every check.
    Char,
    /// Lifetime (`'a`, `'static`). Distinct from [`TokenKind::Char`].
    Lifetime,
    /// Integer literal (`8`, `0xCB`, `1_000u64`).
    Int,
    /// Float literal (`0.0`, `1e6`, `2.5f64`).
    Float,
    /// Single punctuation character (`{`, `}`, `:`, `+`, `=`, ...).
    Punct(char),
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }
}

/// A captured comment (the only ones the scanner keeps are potential
/// suppressions and fixture expectation markers).
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// Full comment text without the `//` / `/*` fences, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexer's output: the code token stream plus captured comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments containing `detlint::` markers, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and detlint-relevant comments.
///
/// The lexer never fails: malformed source (an unterminated string, a lone
/// backslash) degrades to "rest of file is one literal", which at worst
/// hides findings in code that does not compile anyway.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                let text = source[start..end].trim();
                if text.contains("detlint::") {
                    out.comments.push(Comment {
                        text: text.to_owned(),
                        line,
                    });
                }
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut end = start;
                while end < bytes.len() && depth > 0 {
                    if bytes[end] == b'\n' {
                        line += 1;
                        end += 1;
                    } else if bytes[end] == b'/' && bytes.get(end + 1) == Some(&b'*') {
                        depth += 1;
                        end += 2;
                    } else if bytes[end] == b'*' && bytes.get(end + 1) == Some(&b'/') {
                        depth -= 1;
                        end += 2;
                    } else {
                        end += 1;
                    }
                }
                let text = source[start..end.min(bytes.len()).saturating_sub(2).max(start)].trim();
                if text.contains("detlint::") {
                    out.comments.push(Comment {
                        text: text.to_owned(),
                        line: start_line,
                    });
                }
                i = end;
            }
            '"' => {
                let (content, next, newlines) = read_string(source, i + 1);
                out.tokens.push(Token {
                    kind: TokenKind::Str(content),
                    line,
                });
                line += newlines;
                i = next;
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                let (kind, next, newlines) = read_prefixed_string(source, i);
                out.tokens.push(Token { kind, line });
                line += newlines;
                i = next;
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a lifetime is `'` + ident with no closing quote
                // right after one scalar.
                if is_lifetime(bytes, i) {
                    let mut end = i + 1;
                    while end < bytes.len() && is_ident_continue(bytes[end]) {
                        end += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                    i = end;
                } else {
                    let mut end = i + 1;
                    if end < bytes.len() && bytes[end] == b'\\' {
                        end += 2; // skip the escape lead-in
                        while end < bytes.len() && bytes[end] != b'\'' {
                            end += 1;
                        }
                    } else {
                        // One (possibly multi-byte) scalar then the quote.
                        end += source[end..].chars().next().map_or(0, char::len_utf8);
                    }
                    while end < bytes.len() && bytes[end] != b'\'' {
                        end += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        line,
                    });
                    i = (end + 1).min(bytes.len());
                }
            }
            c if c.is_ascii_digit() => {
                let (kind, next) = read_number(bytes, i);
                out.tokens.push(Token { kind, line });
                i = next;
            }
            c if is_ident_start(c as u8) => {
                let mut end = i + 1;
                while end < bytes.len() && is_ident_continue(bytes[end]) {
                    end += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(source[i..end].to_owned()),
                    line,
                });
                i = end;
            }
            c => {
                if c.is_ascii() {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct(c),
                        line,
                    });
                }
                i += source[i..].chars().next().map_or(1, char::len_utf8);
            }
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    // `'ident` not followed by a closing quote after exactly one scalar.
    if bytes.get(i + 1).copied().is_none_or(|b| !is_ident_start(b)) {
        return false;
    }
    // `'a'` is a char; `'ab` or `'a ` is a lifetime.
    bytes.get(i + 2) != Some(&b'\'')
}

fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"' | b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"' | b'\'') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"' | b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Reads a regular `"..."` body starting just after the opening quote.
/// Returns (content, index past the closing quote, newline count).
fn read_string(source: &str, start: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut i = start;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return (source[start..i].to_owned(), i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (source[start..].to_owned(), bytes.len(), newlines)
}

/// Reads `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, or `b'x'` starting at
/// the prefix. Returns (token kind, index past the literal, newline count).
fn read_prefixed_string(source: &str, start: usize) -> (TokenKind, usize, u32) {
    let bytes = source.as_bytes();
    let mut i = start;
    let byte = bytes[i] == b'b';
    if byte {
        i += 1;
    }
    if byte && bytes.get(i) == Some(&b'\'') {
        // Byte-char literal b'x'.
        let mut end = i + 1;
        if bytes.get(end) == Some(&b'\\') {
            end += 2;
        } else {
            end += 1;
        }
        while end < bytes.len() && bytes[end] != b'\'' {
            end += 1;
        }
        return (TokenKind::Char, (end + 1).min(bytes.len()), 0);
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1; // past the opening quote
    let content_start = i;
    let fence: String = std::iter::once('"')
        .chain("#".repeat(hashes).chars())
        .collect();
    let mut newlines = 0u32;
    if raw {
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                newlines += 1;
                i += 1;
            } else if bytes[i..].starts_with(fence.as_bytes()) {
                // Byte-wise fence match: `i` may sit mid-scalar inside
                // non-ASCII raw-string content, where a str slice would panic.
                return (
                    TokenKind::Str(String::from_utf8_lossy(&bytes[content_start..i]).into_owned()),
                    i + fence.len(),
                    newlines,
                );
            } else {
                i += 1;
            }
        }
        (
            TokenKind::Str(source[content_start..].to_owned()),
            bytes.len(),
            newlines,
        )
    } else {
        let (content, next, newlines) = read_string(source, content_start);
        (TokenKind::Str(content), next, newlines)
    }
}

fn read_number(bytes: &[u8], start: usize) -> (TokenKind, usize) {
    let mut i = start;
    let mut float = false;
    if bytes[i] == b'0' && matches!(bytes.get(i + 1), Some(b'x' | b'o' | b'b')) {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return (TokenKind::Int, i);
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    // Fractional part: a dot followed by a digit (so `0..n` ranges and
    // `1.max(x)` method calls stay integers).
    if bytes.get(i) == Some(&b'.') && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        float = true;
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    }
    // Exponent.
    if matches!(bytes.get(i), Some(b'e' | b'E'))
        && bytes
            .get(i + 1)
            .is_some_and(|b| b.is_ascii_digit() || *b == b'+' || *b == b'-')
    {
        float = true;
        i += 1;
        if matches!(bytes.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    // Type suffix (`1.0f64`, `8u64`).
    if bytes.get(i).copied().is_some_and(is_ident_start) {
        let suffix_start = i;
        while i < bytes.len() && is_ident_continue(bytes[i]) {
            i += 1;
        }
        if bytes[suffix_start..i].starts_with(b"f32") || bytes[suffix_start..i].starts_with(b"f64")
        {
            float = true;
        }
    }
    (
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        i,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_punct_and_lines() {
        let lexed = lex("fn main() {\n    let x = y;\n}\n");
        assert!(lexed.tokens[0].kind.is_ident("fn"));
        assert_eq!(lexed.tokens[0].line, 1);
        let let_tok = lexed
            .tokens
            .iter()
            .find(|t| t.kind.is_ident("let"))
            .unwrap();
        assert_eq!(let_tok.line, 2);
        let close = lexed.tokens.last().unwrap();
        assert!(close.kind.is_punct('}'));
        assert_eq!(close.line, 3);
    }

    #[test]
    fn comments_are_stripped_but_detlint_markers_kept() {
        let lexed = lex("// plain comment with HashMap\n\
             // detlint::allow(DL001): benign set\n\
             /* block with detlint::allow(DL002): reason */\n\
             let x = 1;\n");
        assert!(!lexed.tokens.iter().any(|t| t.kind.is_ident("HashMap")));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("DL001"));
        assert_eq!(lexed.comments[1].line, 3);
    }

    #[test]
    fn strings_are_opaque_with_content_kept() {
        let toks = kinds(r#"let s = "HashMap iter sdnav-x/v1";"#);
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(toks
            .iter()
            .any(|t| matches!(t, TokenKind::Str(s) if s.contains("sdnav-x/v1"))));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let a = r#"raw "inner" HashMap"#; let b = b"bytes";"##);
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, TokenKind::Str(_)))
                .count(),
            2
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, TokenKind::Lifetime))
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|t| matches!(t, TokenKind::Char)).count(),
            2
        );
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let toks = kinds("let a = 0.0; let b = 8; let c = 1e6; let d = 1_000u64; let e = 2.5f32;");
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, TokenKind::Float))
                .count(),
            3
        );
        assert_eq!(
            toks.iter().filter(|t| matches!(t, TokenKind::Int)).count(),
            2
        );
    }

    #[test]
    fn range_dots_are_not_floats() {
        let toks = kinds("for i in 0..10 { let x = 1.max(2); }");
        assert!(!toks.iter().any(|t| matches!(t, TokenKind::Float)));
    }

    #[test]
    fn multiline_string_advances_lines() {
        let lexed = lex("let s = \"a\nb\nc\";\nlet t = 1;");
        let t = lexed.tokens.iter().find(|t| t.kind.is_ident("t")).unwrap();
        assert_eq!(t.line, 4);
    }

    #[test]
    fn hex_literals_stay_int() {
        let toks = kinds("const K: u64 = 0xCBF2_9CE4;");
        assert!(toks.iter().any(|t| matches!(t, TokenKind::Int)));
        assert!(!toks.iter().any(|t| matches!(t, TokenKind::Float)));
    }

    #[test]
    fn unterminated_string_consumes_rest() {
        let lexed = lex("let s = \"never closed\nfn hidden() {}");
        assert!(!lexed.tokens.iter().any(|t| t.kind.is_ident("hidden")));
    }
}
