//! # sdnav-detlint
//!
//! Token-level determinism and concurrency static analysis over the sdnav
//! workspace source, producing the `DL001`–`DL010` diagnostic family (plus
//! `DL000` for suppression hygiene) through the same [`sdnav_audit`]
//! machinery the SA model audits use.
//!
//! The scanner is std-only and parser-free: a hand-rolled lexer
//! ([`lexer`]) strips comments and makes strings opaque, and the checks
//! ([`checks`]) are token-sequence patterns with just enough scope context
//! (brace depth, enclosing `fn`/`impl` names) to stay precise on this
//! codebase. The workspace is walked via the root `Cargo.toml` member
//! list — every member's `src/` tree plus the root package's `src/`.
//!
//! Two suppression channels exist, both requiring a reason:
//!
//! * **Inline** — a comment of the form `detlint::allow(DL002): feeds
//!   stderr metrics only` (written with `//`) covering its own line, or,
//!   for a comment on a line of its own, the next line that carries code.
//! * **Baseline** — the committed `detlint.allow` file at the workspace
//!   root, one entry per line: `DL002 crates/bench/ reason …` where the
//!   second field is a path prefix.
//!
//! Suppression hygiene is itself linted: an inline allow that matches no
//! finding, an allow without a reason, or a stale baseline entry each
//! produce a `DL000` error, so the allowlist can only shrink honestly.

pub mod checks;
pub mod lexer;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use sdnav_audit::{AuditReport, Diagnostic};

use checks::Finding;

/// The determinism diagnostic family: `(code, title)`. `DL000` is the
/// meta-code for suppression hygiene.
pub const DL_RULES: &[(&str, &str)] = &[
    (
        "DL000",
        "suppression hygiene: unused or reason-less detlint allow",
    ),
    (
        "DL001",
        "HashMap/HashSet iteration order can leak into results",
    ),
    (
        "DL002",
        "wall-clock reading (Instant/SystemTime) near result values",
    ),
    (
        "DL003",
        "thread-order-sensitive floating-point accumulation",
    ),
    ("DL004", "randomly seeded hashing in keyed state"),
    ("DL005", "thread identity leaking into values"),
    ("DL006", "catch_unwind discarding the panic payload"),
    ("DL007", "ambient std::env read outside crates/cli"),
    (
        "DL008",
        "schema version literal bypassing sdnav_json::schema",
    ),
    ("DL009", "lossy as-cast in fingerprint/WAL framing code"),
    ("DL010", "public API returning a hash-ordered container"),
];

/// Interns a diagnostic code so it can live in a `Diagnostic` (which holds
/// `&'static str` codes).
#[must_use]
pub fn static_code(code: &str) -> Option<&'static str> {
    DL_RULES.iter().map(|(c, _)| *c).find(|c| *c == code)
}

/// One parsed inline allow comment.
#[derive(Debug, Clone)]
struct InlineAllow {
    code: String,
    /// Line of the comment itself.
    comment_line: u32,
    /// Line of code the allow covers.
    covered_line: u32,
    has_reason: bool,
}

const ALLOW_MARKER: &str = "detlint::allow(";

/// Parses an allow comment. The marker must open the comment (doc comments
/// *describing* the syntax mid-sentence are not suppressions).
fn parse_allow(text: &str) -> Option<(String, bool)> {
    let rest = text.trim_start().strip_prefix(ALLOW_MARKER)?;
    let close = rest.find(')')?;
    let code = rest[..close].trim().to_owned();
    let after = rest[close + 1..].trim_start();
    let has_reason = after
        .strip_prefix(':')
        .is_some_and(|r| !r.trim().is_empty());
    Some((code, has_reason))
}

/// Scans one file: lexes, runs every DL check, applies inline allows, and
/// reports `DL000` for allows that are unused or missing a reason.
/// `rel_path` is the workspace-relative path recorded in diagnostics
/// (findings get `rel_path:line`).
#[must_use]
pub fn scan_source(rel_path: &str, source: &str) -> AuditReport {
    let lexed = lexer::lex(source);
    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let covered = |comment_line: u32| -> u32 {
        if token_lines.contains(&comment_line) {
            comment_line
        } else {
            token_lines
                .range(comment_line + 1..)
                .next()
                .copied()
                .unwrap_or(comment_line)
        }
    };
    let mut allows: Vec<InlineAllow> = lexed
        .comments
        .iter()
        .filter_map(|c| {
            let (code, has_reason) = parse_allow(&c.text)?;
            Some(InlineAllow {
                code,
                comment_line: c.line,
                covered_line: covered(c.line),
                has_reason,
            })
        })
        .collect();

    let findings = checks::check_source(rel_path, source);
    let mut report = AuditReport::new();
    let mut used = vec![false; allows.len()];
    for f in findings {
        let suppressed = allows.iter().enumerate().any(|(i, a)| {
            let hit = a.has_reason && a.code == f.code && a.covered_line == f.line;
            if hit {
                used[i] = true;
            }
            hit
        });
        if !suppressed {
            report.push(finding_to_diagnostic(rel_path, &f));
        }
    }
    for (i, a) in allows.drain(..).enumerate() {
        if !a.has_reason {
            report.push(Diagnostic::error(
                "DL000",
                format!("{rel_path}:{}", a.comment_line),
                format!("inline allow for {} carries no reason", a.code),
                "write `detlint::allow(DLxxx): why this site is safe` — reason-less allows do not suppress",
            ));
        } else if !used[i] {
            report.push(Diagnostic::error(
                "DL000",
                format!("{rel_path}:{}", a.comment_line),
                format!("inline allow for {} matches no finding on line {}", a.code, a.covered_line),
                "delete the stale allow (or fix its placement: it covers its own line or the next code line)",
            ));
        }
    }
    report
}

fn finding_to_diagnostic(rel_path: &str, f: &Finding) -> Diagnostic {
    let code = static_code(f.code).unwrap_or("DL000");
    Diagnostic::error(
        code,
        format!("{rel_path}:{}", f.line),
        f.message.clone(),
        f.hint.clone(),
    )
}

/// One entry of the committed `detlint.allow` baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Diagnostic code the entry suppresses.
    pub code: String,
    /// Workspace-relative path prefix the entry covers.
    pub path_prefix: String,
    /// Why the findings under the prefix are acceptable.
    pub reason: String,
    /// 1-based line in `detlint.allow`.
    pub line: u32,
}

/// The parsed `detlint.allow` baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
    /// Lines that did not parse, as `(line, text)`.
    pub malformed: Vec<(u32, String)>,
}

impl Baseline {
    /// Parses the `detlint.allow` format: one entry per line,
    /// `DLxxx <path-prefix> <reason…>`; `#` comments and blank lines are
    /// skipped. Lines with fewer than three fields land in `malformed`.
    #[must_use]
    pub fn parse(text: &str) -> Baseline {
        let mut baseline = Baseline::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx as u32 + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut fields = trimmed.splitn(3, char::is_whitespace);
            let code = fields.next().unwrap_or_default();
            let path = fields.next().unwrap_or_default();
            let reason = fields.next().unwrap_or_default().trim();
            if static_code(code).is_none() || path.is_empty() || reason.is_empty() {
                baseline.malformed.push((line, trimmed.to_owned()));
                continue;
            }
            baseline.entries.push(BaselineEntry {
                code: code.to_owned(),
                path_prefix: path.to_owned(),
                reason: reason.to_owned(),
                line,
            });
        }
        baseline
    }
}

/// Outcome of a workspace scan.
#[derive(Debug)]
pub struct ScanSummary {
    /// Unsuppressed findings plus suppression-hygiene (`DL000`) errors.
    pub report: AuditReport,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings removed by the `detlint.allow` baseline.
    pub suppressed_baseline: usize,
    /// Number of baseline entries that matched at least one finding.
    pub baseline_entries_used: usize,
    /// Total baseline entries parsed.
    pub baseline_entries: usize,
}

/// Scans a whole workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml` and, optionally, `detlint.allow`).
///
/// Walks every member's `src/` tree plus the root package's `src/`,
/// applies inline allows per file and the baseline across files, and
/// reports `DL000` for stale or malformed baseline entries.
pub fn scan_workspace(root: &Path) -> io::Result<ScanSummary> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut src_dirs: Vec<PathBuf> = Vec::new();
    for member in workspace_members(&manifest) {
        for dir in expand_member(root, &member)? {
            let src = dir.join("src");
            if src.is_dir() {
                src_dirs.push(src);
            }
        }
    }
    if manifest.contains("[package]") {
        let src = root.join("src");
        if src.is_dir() {
            src_dirs.push(src);
        }
    }
    src_dirs.sort();
    src_dirs.dedup();

    let mut files: Vec<PathBuf> = Vec::new();
    for dir in &src_dirs {
        collect_rs_files(dir, &mut files)?;
    }
    files.sort();

    let baseline_path = root.join("detlint.allow");
    let baseline = if baseline_path.is_file() {
        Baseline::parse(&fs::read_to_string(&baseline_path)?)
    } else {
        Baseline::default()
    };

    let mut collected: Vec<Diagnostic> = Vec::new();
    let mut suppressed_baseline = 0usize;
    let mut entry_used = vec![false; baseline.entries.len()];
    let files_scanned = files.len();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(file)?;
        let file_report = scan_source(&rel, &source);
        for d in file_report.diagnostics().iter().cloned() {
            let matched = d.code != "DL000"
                && baseline.entries.iter().enumerate().any(|(i, e)| {
                    let hit = e.code == d.code && rel.starts_with(&e.path_prefix);
                    if hit {
                        entry_used[i] = true;
                    }
                    hit
                });
            if matched {
                suppressed_baseline += 1;
            } else {
                collected.push(d);
            }
        }
    }

    for (line, text) in &baseline.malformed {
        collected.push(Diagnostic::error(
            "DL000",
            format!("detlint.allow:{line}"),
            format!("malformed baseline entry {text:?}"),
            "use `DLxxx <path-prefix> <reason…>` — every entry needs a known code, a path, and a reason",
        ));
    }
    for (i, e) in baseline.entries.iter().enumerate() {
        if !entry_used[i] {
            collected.push(Diagnostic::error(
                "DL000",
                format!("detlint.allow:{}", e.line),
                format!("stale baseline entry: {} under {} matches no finding", e.code, e.path_prefix),
                "delete the entry — the hazard it covered is gone, and the baseline may only shrink honestly",
            ));
        }
    }

    collected.sort_by(|a, b| {
        path_sort_key(&a.path)
            .cmp(&path_sort_key(&b.path))
            .then_with(|| a.code.cmp(b.code))
    });
    let mut report = AuditReport::new();
    for d in collected {
        report.push(d);
    }

    Ok(ScanSummary {
        report,
        files_scanned,
        suppressed_baseline,
        baseline_entries_used: entry_used.iter().filter(|u| **u).count(),
        baseline_entries: baseline.entries.len(),
    })
}

/// Splits `file.rs:42` into a `(path, line)` sort key so findings order by
/// file then numeric line, not lexicographic `:10 < :9` accidents.
fn path_sort_key(path: &str) -> (String, u32) {
    match path.rsplit_once(':') {
        Some((file, line)) => match line.parse::<u32>() {
            Ok(n) => (file.to_owned(), n),
            Err(_) => (path.to_owned(), 0),
        },
        None => (path.to_owned(), 0),
    }
}

/// Extracts the `members = [ … ]` list from a workspace manifest without a
/// TOML parser: collects quoted strings between the opening bracket and
/// the first closing bracket.
fn workspace_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let trimmed = line.trim();
        if !in_members {
            if trimmed.starts_with("members") && trimmed.contains('[') {
                in_members = true;
            } else {
                continue;
            }
        }
        let mut rest = trimmed;
        while let Some(open) = rest.find('"') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('"') else { break };
            members.push(tail[..close].to_owned());
            rest = &tail[close + 1..];
        }
        if trimmed.contains(']') {
            break;
        }
    }
    members
}

/// Expands one member path; a trailing `/*` globs immediate
/// subdirectories (the only glob form Cargo members use here).
fn expand_member(root: &Path, member: &str) -> io::Result<Vec<PathBuf>> {
    if let Some(prefix) = member.strip_suffix("/*") {
        let base = root.join(prefix);
        if !base.is_dir() {
            return Ok(Vec::new());
        }
        let mut dirs: Vec<PathBuf> = fs::read_dir(&base)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        Ok(dirs)
    } else {
        Ok(vec![root.join(member)])
    }
}

/// Recursively collects `.rs` files under `dir`, skipping anything under a
/// `target` directory.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_allow_suppresses_same_line() {
        let src = "fn f() -> f64 {\n\
                   let t = std::time::Instant::now(); // detlint::allow(DL002): metrics only\n\
                   t.elapsed().as_secs_f64()\n\
                   }\n";
        let report = scan_source("a.rs", src);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn inline_allow_covers_next_code_line() {
        let src = "fn f() {\n\
                   // detlint::allow(DL005): log tag, never serialized\n\
                   let _ = std::thread::current();\n\
                   }\n";
        let report = scan_source("a.rs", src);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn allow_without_reason_does_not_suppress_and_is_flagged() {
        let src = "fn f() {\n\
                   let _ = std::time::Instant::now(); // detlint::allow(DL002)\n\
                   }\n";
        let report = scan_source("a.rs", src);
        assert!(report.has_code("DL002"), "{}", report.render());
        assert!(report.has_code("DL000"), "{}", report.render());
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// detlint::allow(DL001): nothing here\n\
                   fn f() {}\n";
        let report = scan_source("a.rs", src);
        assert!(report.has_code("DL000"), "{}", report.render());
        assert_eq!(report.diagnostics().len(), 1);
    }

    #[test]
    fn wrong_code_allow_does_not_suppress() {
        let src = "fn f() {\n\
                   let _ = std::time::Instant::now(); // detlint::allow(DL001): wrong code\n\
                   }\n";
        let report = scan_source("a.rs", src);
        assert!(report.has_code("DL002"));
        assert!(
            report.has_code("DL000"),
            "wrong-code allow must read as unused"
        );
    }

    #[test]
    fn diagnostics_carry_file_line_spans() {
        let src = "fn f() {\n\n    let _ = std::time::Instant::now();\n}\n";
        let report = scan_source("crates/x/src/lib.rs", src);
        assert_eq!(report.diagnostics().len(), 1);
        assert_eq!(report.diagnostics()[0].path, "crates/x/src/lib.rs:3");
    }

    #[test]
    fn baseline_parse_accepts_entries_and_rejects_junk() {
        let text = "# comment\n\
                    \n\
                    DL002 crates/bench/ timings feed the bench report, not results\n\
                    DL999 crates/x/ unknown code\n\
                    DL001 crates/y/\n";
        let b = Baseline::parse(text);
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].code, "DL002");
        assert_eq!(b.entries[0].path_prefix, "crates/bench/");
        assert_eq!(b.entries[0].line, 3);
        assert_eq!(b.malformed.len(), 2, "{:?}", b.malformed);
    }

    #[test]
    fn members_parse_handles_multiline_lists() {
        let manifest = "[workspace]\nmembers = [\n    \"crates/a\",\n    \"crates/b\",\n]\n";
        assert_eq!(workspace_members(manifest), vec!["crates/a", "crates/b"]);
    }

    #[test]
    fn path_sort_key_orders_lines_numerically() {
        assert!(path_sort_key("a.rs:9") < path_sort_key("a.rs:10"));
        assert!(path_sort_key("a.rs:10") < path_sort_key("b.rs:1"));
    }
}
