//! A reusable, std-only work-stealing thread pool for batch evaluation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Execution counters reported by [`execute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads actually used (never more than the item count).
    pub workers: usize,
    /// Items a worker executed after stealing them from a sibling's queue.
    pub steals: u64,
}

/// Runs `f` over every item on `threads` workers and returns the results
/// in item order.
///
/// Items are dealt round-robin onto per-worker deques up front; each worker
/// drains its own deque from the front and, once empty, steals from the
/// back of the next non-empty sibling. Each item's result lands in the slot
/// fixed by its index, so the returned vector is **identical for any thread
/// count** — parallelism changes only the wall clock (and the steal
/// counter).
///
/// `threads == 0` is treated as 1. A worker panic propagates out of the
/// enclosing thread scope.
pub fn execute<I, T, F>(threads: usize, items: &[I], f: F) -> (Vec<T>, PoolStats)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    let steals = AtomicU64::new(0);

    if workers == 1 {
        let results = items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
        return (results, PoolStats { workers, steals: 0 });
    }

    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..items.len()).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let steals = &steals;
            let f = &f;
            scope.spawn(move || loop {
                let own = deques[w].lock().expect("deque lock").pop_front();
                let (index, stolen) = match own {
                    Some(i) => (i, false),
                    None => {
                        let mut found = None;
                        for k in 1..workers {
                            let victim = (w + k) % workers;
                            if let Some(i) = deques[victim].lock().expect("deque lock").pop_back() {
                                found = Some(i);
                                break;
                            }
                        }
                        match found {
                            Some(i) => (i, true),
                            // Every deque is empty: no new work can appear
                            // (the item set is fixed up front), so exit.
                            None => break,
                        }
                    }
                };
                if stolen {
                    steals.fetch_add(1, Ordering::Relaxed);
                }
                let value = f(index, &items[index]);
                *slots[index].lock().expect("slot lock") = Some(value);
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every item executed")
        })
        .collect();
    (
        results,
        PoolStats {
            workers,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 4, 16] {
            let (results, stats) = execute(threads, &items, |i, &item| {
                assert_eq!(i, item);
                item * 3
            });
            assert_eq!(results, (0..97).map(|i| i * 3).collect::<Vec<_>>());
            assert!(stats.workers <= 16);
        }
    }

    #[test]
    fn more_threads_than_items() {
        let items = [10, 20];
        let (results, stats) = execute(64, &items, |_, &x| x + 1);
        assert_eq!(results, vec![11, 21]);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn empty_and_single_item() {
        let (results, _) = execute(4, &[] as &[u32], |_, &x| x);
        assert!(results.is_empty());
        let (results, stats) = execute(4, &[7], |_, &x| x);
        assert_eq!(results, vec![7]);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn idle_workers_steal_queued_items() {
        // Worker 0's first item blocks until every *other* item is done.
        // With two workers, worker 0 still owns items 2, 4, … in its deque,
        // so the only way the blocked item can ever unblock is worker 1
        // stealing them — the steal counter must come back nonzero.
        let done = AtomicUsize::new(0);
        let items: Vec<usize> = (0..9).collect();
        let total = items.len();
        let (results, stats) = execute(2, &items, |i, &item| {
            if i == 0 {
                while done.load(Ordering::SeqCst) < total - 1 {
                    std::thread::yield_now();
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            item
        });
        assert_eq!(results, items);
        assert!(stats.steals > 0, "expected steals, got {:?}", stats);
    }
}
