//! Grid expansion: turning a [`crate::GridSpec`] into independent work
//! items with deterministic, identity-derived seeds.

use sdnav_core::sweep::linspace;
use sdnav_core::{FaultMix, Scenario};

/// One of the paper's swept figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Figure {
    /// Fig. 3: HW-centric availability vs role availability `A_C`.
    Fig3,
    /// Fig. 4: SW-centric control-plane availability vs process downtime.
    Fig4,
    /// Fig. 5: SW-centric per-host data-plane availability.
    Fig5,
}

impl Figure {
    /// Parses the CLI spelling (`fig3` | `fig4` | `fig5`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Figure> {
        match text {
            "fig3" => Some(Figure::Fig3),
            "fig4" => Some(Figure::Fig4),
            "fig5" => Some(Figure::Fig5),
            _ => None,
        }
    }

    /// The CLI/JSON spelling.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Figure::Fig3 => "fig3",
            Figure::Fig4 => "fig4",
            Figure::Fig5 => "fig5",
        }
    }
}

/// Reference topology a simulation item runs on (the paper's §VI options
/// simulate the Small and Large deployments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimTopology {
    /// The 1-rack, 3-host Small deployment.
    Small,
    /// The 3-rack Large deployment.
    Large,
}

impl SimTopology {
    /// Display/JSON name, matching [`sdnav_core::Topology::name`].
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SimTopology::Small => "Small",
            SimTopology::Large => "Large",
        }
    }
}

/// One independently executable unit of a grid run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkItem {
    /// One Fig. 3 x-position: HW availabilities of all three topologies.
    Fig3Point {
        /// Role availability `A_C` at this grid position.
        a_c: f64,
    },
    /// One Fig. 4 or Fig. 5 x-position: the four §VI options.
    SwPoint {
        /// Which figure's metric to extract.
        figure: Figure,
        /// Orders of magnitude of process downtime removed.
        x: f64,
    },
    /// One simulated scenario point: all replications of one
    /// `(x, topology, scenario)` cell, run sequentially inside the item so
    /// the streamed aggregation order is fixed.
    SimPoint {
        /// Orders of magnitude of process downtime removed.
        x: f64,
        /// Deployment to simulate.
        topology: SimTopology,
        /// Supervisor mode of operation.
        scenario: Scenario,
    },
    /// One chaos-campaign cell: the base campaign re-parameterized to this
    /// crew count and common-cause probability, all replications run
    /// sequentially inside the item.
    ChaosPoint {
        /// Repair crews available in this cell.
        crew_count: usize,
        /// Probability applied to every common-cause group member.
        ccf_probability: f64,
        /// Deployment to simulate.
        topology: SimTopology,
    },
    /// One consensus-dynamics cell: the base [`sdnav_core::ConsensusSpec`]
    /// re-parameterized to this election-timeout floor, cluster size, and
    /// fault mix, all DES replications run sequentially inside the item.
    ConsensusPoint {
        /// Election-timeout floor (ms); the randomized window keeps the
        /// base spec's width above it.
        election_timeout_ms: f64,
        /// Consensus participants in this cell.
        cluster_size: u32,
        /// Declared byzantine/crash fault mix.
        fault_mix: FaultMix,
    },
}

/// Expands the chaos campaign axes (crew count × common-cause probability ×
/// topology, in that nesting order) appended after [`plan_items`]'s output.
#[must_use]
pub fn plan_chaos_items(crew_counts: &[usize], ccf_probabilities: &[f64]) -> Vec<WorkItem> {
    let mut items = Vec::new();
    for &crew_count in crew_counts {
        for &ccf_probability in ccf_probabilities {
            for topology in [SimTopology::Small, SimTopology::Large] {
                items.push(WorkItem::ChaosPoint {
                    crew_count,
                    ccf_probability,
                    topology,
                });
            }
        }
    }
    items
}

/// Expands the consensus axes (election timeout × cluster size × fault
/// mix, in that nesting order), appended after the chaos cells.
#[must_use]
pub fn plan_consensus_items(
    election_timeouts_ms: &[f64],
    cluster_sizes: &[u32],
    fault_mixes: &[FaultMix],
) -> Vec<WorkItem> {
    let mut items = Vec::new();
    for &election_timeout_ms in election_timeouts_ms {
        for &cluster_size in cluster_sizes {
            for &fault_mix in fault_mixes {
                items.push(WorkItem::ConsensusPoint {
                    election_timeout_ms,
                    cluster_size,
                    fault_mix,
                });
            }
        }
    }
    items
}

/// Expands the grid axes into the canonical work-item order: Fig. 3 points,
/// then Fig. 4, then Fig. 5 (each x ascending), then the simulation cells
/// (x-major, then topology, then scenario). Aggregation relies on this
/// order, and it is what makes result files reproducible run to run.
#[must_use]
pub fn plan_items(figures: &[Figure], points: usize, replications: usize) -> Vec<WorkItem> {
    let mut items = Vec::new();
    for figure in figures {
        match figure {
            Figure::Fig3 => {
                // The paper's Fig. 3 x-range (§V.D: A_C = 0.9995 ± 0.0005).
                items.extend(
                    linspace(0.999, 1.0, points)
                        .into_iter()
                        .map(|a_c| WorkItem::Fig3Point { a_c }),
                );
            }
            Figure::Fig4 | Figure::Fig5 => {
                items.extend(
                    linspace(-1.0, 1.0, points)
                        .into_iter()
                        .map(|x| WorkItem::SwPoint { figure: *figure, x }),
                );
            }
        }
    }
    if replications > 0 {
        for x in linspace(-1.0, 1.0, points) {
            for topology in [SimTopology::Small, SimTopology::Large] {
                for scenario in [
                    Scenario::SupervisorNotRequired,
                    Scenario::SupervisorRequired,
                ] {
                    items.push(WorkItem::SimPoint {
                        x,
                        topology,
                        scenario,
                    });
                }
            }
        }
    }
    items
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-item RNG seed, derived from the base seed and the
/// item's *identity* (its grid coordinates), never its position or the
/// executing thread. The same `(x, topology, scenario)` cell therefore
/// replays identical replication streams whatever else the grid contains
/// and however many threads run it.
#[must_use]
pub fn item_seed(base: u64, item: &WorkItem) -> u64 {
    let tag = match item {
        WorkItem::Fig3Point { a_c } => splitmix64(a_c.to_bits()),
        WorkItem::SwPoint { figure, x } => splitmix64(x.to_bits() ^ (*figure as u64) << 1),
        WorkItem::SimPoint {
            x,
            topology,
            scenario,
        } => {
            let topo_bit = match topology {
                SimTopology::Small => 0u64,
                SimTopology::Large => 1,
            };
            let scen_bit = match scenario {
                Scenario::SupervisorNotRequired => 0u64,
                Scenario::SupervisorRequired => 1,
            };
            splitmix64(x.to_bits() ^ (topo_bit << 1) ^ (scen_bit << 2) ^ (1 << 3))
        }
        WorkItem::ChaosPoint {
            crew_count,
            ccf_probability,
            topology,
        } => {
            let topo_bit = match topology {
                SimTopology::Small => 0u64,
                SimTopology::Large => 1,
            };
            splitmix64(
                ccf_probability.to_bits()
                    ^ ((*crew_count as u64) << 1)
                    ^ (topo_bit << 40)
                    ^ (1 << 41),
            )
        }
        WorkItem::ConsensusPoint {
            election_timeout_ms,
            cluster_size,
            fault_mix,
        } => splitmix64(
            election_timeout_ms.to_bits()
                ^ (u64::from(*cluster_size) << 1)
                ^ (u64::from(fault_mix.byzantine) << 14)
                ^ (u64::from(fault_mix.crash) << 27)
                ^ (1 << 42),
        ),
    };
    splitmix64(base ^ tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_orders_figures_then_sim() {
        let items = plan_items(&[Figure::Fig3, Figure::Fig4, Figure::Fig5], 3, 2);
        // 3 fig3 + 3 fig4 + 3 fig5 + 3 x-points × 2 topologies × 2 scenarios.
        assert_eq!(items.len(), 9 + 12);
        assert!(matches!(items[0], WorkItem::Fig3Point { .. }));
        assert!(matches!(
            items[3],
            WorkItem::SwPoint {
                figure: Figure::Fig4,
                ..
            }
        ));
        assert!(matches!(items[9], WorkItem::SimPoint { .. }));
    }

    #[test]
    fn no_replications_means_no_sim_items() {
        let items = plan_items(&[Figure::Fig4], 5, 0);
        assert_eq!(items.len(), 5);
        assert!(items.iter().all(|i| matches!(i, WorkItem::SwPoint { .. })));
    }

    #[test]
    fn item_seeds_depend_on_identity_not_position() {
        let small = plan_items(&[Figure::Fig4], 3, 1);
        let full = plan_items(&[Figure::Fig3, Figure::Fig4, Figure::Fig5], 3, 1);
        // The same sim cell appears at different positions in the two plans
        // but must seed identically.
        let cell = |items: &[WorkItem]| {
            items
                .iter()
                .find(|i| matches!(i, WorkItem::SimPoint { .. }))
                .copied()
                .unwrap()
        };
        assert_eq!(item_seed(42, &cell(&small)), item_seed(42, &cell(&full)));
        // Different cells must not collide.
        let sims: Vec<u64> = full
            .iter()
            .filter(|i| matches!(i, WorkItem::SimPoint { .. }))
            .map(|i| item_seed(42, i))
            .collect();
        let mut dedup = sims.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sims.len(), "seed collision in {sims:?}");
    }

    #[test]
    fn figure_parse_round_trips() {
        for figure in [Figure::Fig3, Figure::Fig4, Figure::Fig5] {
            assert_eq!(Figure::parse(figure.name()), Some(figure));
        }
        assert_eq!(Figure::parse("fig6"), None);
    }
}
