//! Run observability: per-stage timings, cache counters, throughput.

use sdnav_json::{Json, ToJson};

/// Wall-clock time spent in each engine stage, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Expanding the grid spec into work items.
    pub plan_ms: f64,
    /// Executing the items on the pool.
    pub execute_ms: f64,
    /// Assembling per-item results into figure/simulation tables.
    pub aggregate_ms: f64,
}

impl StageTimings {
    /// Sum of all stages.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.plan_ms + self.execute_ms + self.aggregate_ms
    }
}

/// The metrics block emitted by one grid run.
///
/// Serialized as `sdnav-sweep-metrics/v1` (see DESIGN.md for the schema).
/// Timings and steal counts vary run to run; everything under the result
/// payload stays byte-identical across thread counts — which is why the
/// metrics travel in their own block, not inside the results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Worker threads used by the execute stage.
    pub threads: usize,
    /// Work items executed.
    pub items: usize,
    /// Per-stage wall-clock timings.
    pub stages: StageTimings,
    /// Items per second over the execute stage.
    pub items_per_sec: f64,
    /// Memoized sub-model lookups served from the cache.
    pub cache_hits: u64,
    /// Memoized sub-model lookups that had to evaluate.
    pub cache_misses: u64,
    /// Work items executed by a worker that stole them.
    pub steals: u64,
    /// Total simulation replications run.
    pub sim_replications: u64,
    /// Total simulation events processed.
    pub sim_events: u64,
    /// Panicked item attempts that were retried by the supervisor.
    pub retries: u64,
    /// Items quarantined after exhausting their retry budget.
    pub quarantined: u64,
    /// Items restored from the checkpoint WAL instead of recomputed.
    pub restored: u64,
}

impl RunMetrics {
    /// Human-readable one-block rendering (for stderr).
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "sweep metrics:\n  \
             threads          : {}\n  \
             items            : {} ({:.1} items/s)\n  \
             stage plan       : {:.2} ms\n  \
             stage execute    : {:.2} ms\n  \
             stage aggregate  : {:.2} ms\n  \
             cache            : {} hits / {} misses\n  \
             steals           : {}\n  \
             sim              : {} replications, {} events\n  \
             supervision      : {} retries, {} quarantined, {} restored\n",
            self.threads,
            self.items,
            self.items_per_sec,
            self.stages.plan_ms,
            self.stages.execute_ms,
            self.stages.aggregate_ms,
            self.cache_hits,
            self.cache_misses,
            self.steals,
            self.sim_replications,
            self.sim_events,
            self.retries,
            self.quarantined,
            self.restored,
        )
    }
}

impl ToJson for RunMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str(sdnav_json::schema::SWEEP_METRICS)),
            ("threads", Json::Num(self.threads as f64)),
            ("items", Json::Num(self.items as f64)),
            (
                "stages",
                Json::obj(vec![
                    ("plan_ms", Json::Num(self.stages.plan_ms)),
                    ("execute_ms", Json::Num(self.stages.execute_ms)),
                    ("aggregate_ms", Json::Num(self.stages.aggregate_ms)),
                    ("total_ms", Json::Num(self.stages.total_ms())),
                ]),
            ),
            ("items_per_sec", Json::Num(self.items_per_sec)),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Num(self.cache_hits as f64)),
                    ("misses", Json::Num(self.cache_misses as f64)),
                ]),
            ),
            ("steals", Json::Num(self.steals as f64)),
            (
                "sim",
                Json::obj(vec![
                    ("replications", Json::Num(self.sim_replications as f64)),
                    ("events", Json::Num(self.sim_events as f64)),
                ]),
            ),
            (
                "supervision",
                Json::obj(vec![
                    ("retries", Json::Num(self.retries as f64)),
                    ("quarantined", Json::Num(self.quarantined as f64)),
                    ("restored", Json::Num(self.restored as f64)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        RunMetrics {
            threads: 4,
            items: 63,
            stages: StageTimings {
                plan_ms: 0.5,
                execute_ms: 120.0,
                aggregate_ms: 1.5,
            },
            items_per_sec: 525.0,
            cache_hits: 84,
            cache_misses: 88,
            steals: 3,
            sim_replications: 40,
            sim_events: 123_456,
            retries: 2,
            quarantined: 1,
            restored: 5,
        }
    }

    #[test]
    fn renders_every_counter() {
        let text = sample().render();
        for needle in [
            "threads",
            "cache",
            "84 hits",
            "88 misses",
            "steals",
            "replications",
            "2 retries",
            "1 quarantined",
            "5 restored",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn json_has_schema_and_stage_block() {
        let json = sdnav_json::to_string(&sample());
        assert!(json.contains("sdnav-sweep-metrics/v1"));
        for field in [
            "plan_ms",
            "execute_ms",
            "aggregate_ms",
            "total_ms",
            "hits",
            "misses",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn stage_total_sums() {
        assert!((sample().stages.total_ms() - 122.0).abs() < 1e-12);
    }
}
