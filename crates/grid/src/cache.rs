//! The incremental evaluation graph: memoized sub-model evaluations
//! content-addressed by domain fingerprint, shared across grid points
//! *and across requests*.
//!
//! Several grid axes revisit the same underlying model evaluation: the
//! Fig. 4 and Fig. 5 sweeps both need the full SW-centric model at every
//! `(topology, scenario, x)` — Fig. 4 reads the control-plane availability,
//! Fig. 5 the per-host data-plane availability — and each evaluation
//! internally performs the expensive k-of-n/RBD conditional enumeration
//! over shared hardware. The graph stores the complete availability triple
//! per evaluation, so whichever figure reaches a point first pays for the
//! enumeration and the other gets it for free.
//!
//! What makes it a *graph* rather than a per-run cache is the first key
//! component: every entry is addressed by `(domain fingerprint, sub-model
//! key)`, where the domain fingerprint (`sdnav_core::state::ModelState`)
//! covers everything the sub-model reads — the resolved spec document and
//! the relevant parameter set's f64 bit patterns. Editing one SW rate
//! changes the SW domain fingerprint and leaves the HW one untouched, so
//! after a `PATCH` the next evaluation re-derives only the dependent
//! sub-models; every HW entry is still addressable and hits. Entries under
//! dead fingerprints are dropped by [`EvalGraph::retain_domains`], which
//! is what the service's `invalidated` counter reports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sdnav_core::state::{fnv1a, FNV_OFFSET};

/// Key of one memoizable sub-model evaluation within a domain.
///
/// Floating-point coordinates are keyed by **bit pattern**: two grid points
/// share an entry only when their parameters are bit-identical, which also
/// guarantees a cached value is exactly what a fresh evaluation would
/// produce — a cache hit can never change a result byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SubModelKey {
    /// HW-centric availabilities at one role availability `A_C`; the value
    /// triple is `[small, medium, large]`.
    Hw {
        /// `A_C.to_bits()`.
        a_c_bits: u64,
    },
    /// SW-centric model at one sweep position; the value triple is
    /// `[cp, shared_dp, host_dp]`.
    Sw {
        /// Reference topology index (0 = Small, 1 = Large).
        topology: u8,
        /// Whether the supervisor-required scenario applies.
        supervisor_required: bool,
        /// Figure x-position, `x.to_bits()`.
        x_bits: u64,
    },
}

/// One lock-striped slice of the graph: full keys → availability triples.
///
/// Ordered map on purpose: shard layout and iteration order are functions
/// of the keys alone, never of a per-process hasher seed (detlint DL001/
/// DL004 — the service's metrics and eviction paths walk these maps).
type Shard = Mutex<BTreeMap<(u64, SubModelKey), [f64; 3]>>;

/// A sharded, counting memo table for `(domain, SubModelKey)` →
/// availability triples (see the module docs).
#[derive(Debug)]
pub struct EvalGraph {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
}

impl Default for EvalGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalGraph {
    /// Number of independently locked shards (bounds contention, not
    /// capacity).
    const SHARDS: usize = 16;

    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        EvalGraph {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// Selects the shard for a key via the workspace's fixed-seed FNV-1a,
    /// so the shard assignment (and with it lock-contention behavior and
    /// per-shard layout) is identical in every process.
    fn shard(&self, key: &(u64, SubModelKey)) -> &Shard {
        let mut h = fnv1a(FNV_OFFSET, &key.0.to_le_bytes());
        match key.1 {
            SubModelKey::Hw { a_c_bits } => {
                h = fnv1a(h, b"hw");
                h = fnv1a(h, &a_c_bits.to_le_bytes());
            }
            SubModelKey::Sw {
                topology,
                supervisor_required,
                x_bits,
            } => {
                h = fnv1a(h, b"sw");
                h = fnv1a(h, &[topology, u8::from(supervisor_required)]);
                h = fnv1a(h, &x_bits.to_le_bytes());
            }
        }
        &self.shards[(h as usize) % Self::SHARDS]
    }

    /// Returns the cached triple for `key` under `domain`, computing and
    /// inserting it on a miss.
    ///
    /// `compute` runs outside the shard lock, so two threads racing on the
    /// same key may both evaluate; both then count as misses and the first
    /// insert wins. That costs a duplicated evaluation, never a wrong
    /// answer: `compute` must be (and here is) a pure function of the key,
    /// and the domain fingerprint covers every input it reads.
    pub fn get_or_compute(
        &self,
        domain: u64,
        key: SubModelKey,
        compute: impl FnOnce() -> [f64; 3],
    ) -> [f64; 3] {
        let full = (domain, key);
        if let Some(value) = self.shard(&full).lock().expect("graph shard").get(&full) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *value;
        }
        let value = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.shard(&full)
            .lock()
            .expect("graph shard")
            .entry(full)
            .or_insert(value);
        value
    }

    /// Drops every entry whose domain fingerprint is not in `live`,
    /// returning how many entries were invalidated (also accumulated in
    /// [`EvalGraph::invalidated`]).
    ///
    /// Content-addressing alone keeps stale entries *harmless* — they can
    /// never be looked up under a new fingerprint — but they would pin
    /// memory forever in a long-running service and would make "how much
    /// did that edit invalidate?" unanswerable. `PATCH /v1/spec` calls
    /// this with the post-edit fingerprints.
    pub fn retain_domains(&self, live: &[u64]) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut map = shard.lock().expect("graph shard");
            let before = map.len();
            map.retain(|(domain, _), _| live.contains(domain));
            dropped += (before - map.len()) as u64;
        }
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Lookups served from the table.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to evaluate.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by [`EvalGraph::retain_domains`] over the graph's
    /// lifetime.
    #[must_use]
    pub fn invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Live memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("graph shard").len())
            .sum()
    }

    /// Whether the graph holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOM: u64 = 0xD0;

    #[test]
    fn counts_hits_and_misses() {
        let graph = EvalGraph::new();
        let key = SubModelKey::Hw {
            a_c_bits: 0.9995f64.to_bits(),
        };
        let v1 = graph.get_or_compute(DOM, key, || [1.0, 2.0, 3.0]);
        let v2 = graph.get_or_compute(DOM, key, || panic!("must not recompute"));
        assert_eq!(v1, v2);
        assert_eq!(graph.hits(), 1);
        assert_eq!(graph.misses(), 1);
        assert_eq!(graph.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let graph = EvalGraph::new();
        for (i, x) in [0.1f64, 0.2, 0.3].iter().enumerate() {
            let key = SubModelKey::Sw {
                topology: 0,
                supervisor_required: false,
                x_bits: x.to_bits(),
            };
            let value = graph.get_or_compute(DOM, key, || [i as f64, 0.0, 0.0]);
            assert_eq!(value[0], i as f64);
        }
        assert_eq!(graph.misses(), 3);
        assert_eq!(graph.hits(), 0);
    }

    #[test]
    fn scenario_and_topology_partition_the_sw_keyspace() {
        let graph = EvalGraph::new();
        let mk = |topology, required| SubModelKey::Sw {
            topology,
            supervisor_required: required,
            x_bits: 0.0f64.to_bits(),
        };
        graph.get_or_compute(DOM, mk(0, false), || [1.0; 3]);
        graph.get_or_compute(DOM, mk(0, true), || [2.0; 3]);
        graph.get_or_compute(DOM, mk(1, false), || [3.0; 3]);
        assert_eq!(graph.misses(), 3);
        assert_eq!(graph.get_or_compute(DOM, mk(0, true), || panic!())[0], 2.0);
    }

    #[test]
    fn domains_partition_the_keyspace() {
        let graph = EvalGraph::new();
        let key = SubModelKey::Hw {
            a_c_bits: 0.5f64.to_bits(),
        };
        graph.get_or_compute(1, key, || [1.0; 3]);
        // Same sub-model key under another domain is a distinct entry.
        assert_eq!(graph.get_or_compute(2, key, || [2.0; 3])[0], 2.0);
        assert_eq!(graph.misses(), 2);
        assert_eq!(graph.get_or_compute(1, key, || panic!())[0], 1.0);
    }

    #[test]
    fn retain_domains_drops_only_dead_fingerprints() {
        let graph = EvalGraph::new();
        let key = |bits: u64| SubModelKey::Hw { a_c_bits: bits };
        graph.get_or_compute(1, key(10), || [1.0; 3]);
        graph.get_or_compute(1, key(11), || [1.0; 3]);
        graph.get_or_compute(2, key(10), || [2.0; 3]);
        assert_eq!(graph.len(), 3);

        let dropped = graph.retain_domains(&[2]);
        assert_eq!(dropped, 2);
        assert_eq!(graph.invalidated(), 2);
        assert_eq!(graph.len(), 1);

        // The surviving domain still hits; the dead one recomputes.
        assert_eq!(graph.get_or_compute(2, key(10), || panic!())[0], 2.0);
        let v = graph.get_or_compute(1, key(10), || [9.0; 3]);
        assert_eq!(v[0], 9.0);
    }

    #[test]
    fn retain_with_no_live_domains_empties_the_graph() {
        let graph = EvalGraph::new();
        graph.get_or_compute(7, SubModelKey::Hw { a_c_bits: 1 }, || [1.0; 3]);
        assert!(!graph.is_empty());
        assert_eq!(graph.retain_domains(&[]), 1);
        assert!(graph.is_empty());
    }
}
