//! Memoized sub-model evaluations shared across grid points.
//!
//! Several grid axes revisit the same underlying model evaluation: the
//! Fig. 4 and Fig. 5 sweeps both need the full SW-centric model at every
//! `(topology, scenario, x)` — Fig. 4 reads the control-plane availability,
//! Fig. 5 the per-host data-plane availability — and each evaluation
//! internally performs the expensive k-of-n/RBD conditional enumeration
//! over shared hardware. The cache stores the complete availability triple
//! per evaluation, so whichever figure reaches a point first pays for the
//! enumeration and the other gets it for free.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Key of one memoizable sub-model evaluation.
///
/// Floating-point coordinates are keyed by **bit pattern**: two grid points
/// share an entry only when their parameters are bit-identical, which also
/// guarantees a cached value is exactly what a fresh evaluation would
/// produce — a cache hit can never change a result byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubModelKey {
    /// HW-centric availabilities at one role availability `A_C`; the value
    /// triple is `[small, medium, large]`.
    Hw {
        /// `A_C.to_bits()`.
        a_c_bits: u64,
    },
    /// SW-centric model at one sweep position; the value triple is
    /// `[cp, shared_dp, host_dp]`.
    Sw {
        /// Reference topology index (0 = Small, 1 = Large).
        topology: u8,
        /// Whether the supervisor-required scenario applies.
        supervisor_required: bool,
        /// Figure x-position, `x.to_bits()`.
        x_bits: u64,
    },
}

/// A sharded, counting memo table for [`SubModelKey`] → availability
/// triples.
#[derive(Debug)]
pub struct SubModelCache {
    shards: Vec<Mutex<HashMap<SubModelKey, [f64; 3]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SubModelCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SubModelCache {
    /// Number of independently locked shards (bounds contention, not
    /// capacity).
    const SHARDS: usize = 16;

    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        SubModelCache {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &SubModelKey) -> &Mutex<HashMap<SubModelKey, [f64; 3]>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % Self::SHARDS]
    }

    /// Returns the cached triple for `key`, computing and inserting it on a
    /// miss.
    ///
    /// `compute` runs outside the shard lock, so two threads racing on the
    /// same key may both evaluate; both then count as misses and the first
    /// insert wins. That costs a duplicated evaluation, never a wrong
    /// answer: `compute` must be (and here is) a pure function of the key.
    pub fn get_or_compute(&self, key: SubModelKey, compute: impl FnOnce() -> [f64; 3]) -> [f64; 3] {
        if let Some(value) = self.shard(&key).lock().expect("cache shard").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *value;
        }
        let value = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.shard(&key)
            .lock()
            .expect("cache shard")
            .entry(key)
            .or_insert(value);
        value
    }

    /// Lookups served from the table.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to evaluate.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_hits_and_misses() {
        let cache = SubModelCache::new();
        let key = SubModelKey::Hw {
            a_c_bits: 0.9995f64.to_bits(),
        };
        let v1 = cache.get_or_compute(key, || [1.0, 2.0, 3.0]);
        let v2 = cache.get_or_compute(key, || panic!("must not recompute"));
        assert_eq!(v1, v2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = SubModelCache::new();
        for (i, x) in [0.1f64, 0.2, 0.3].iter().enumerate() {
            let key = SubModelKey::Sw {
                topology: 0,
                supervisor_required: false,
                x_bits: x.to_bits(),
            };
            let value = cache.get_or_compute(key, || [i as f64, 0.0, 0.0]);
            assert_eq!(value[0], i as f64);
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn scenario_and_topology_partition_the_sw_keyspace() {
        let cache = SubModelCache::new();
        let mk = |topology, required| SubModelKey::Sw {
            topology,
            supervisor_required: required,
            x_bits: 0.0f64.to_bits(),
        };
        cache.get_or_compute(mk(0, false), || [1.0; 3]);
        cache.get_or_compute(mk(0, true), || [2.0; 3]);
        cache.get_or_compute(mk(1, false), || [3.0; 3]);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.get_or_compute(mk(0, true), || panic!())[0], 2.0);
    }
}
