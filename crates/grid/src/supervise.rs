//! Supervised execution: panic isolation, retry with backoff, quarantine,
//! checkpoint/resume, and graceful-shutdown partial results.
//!
//! The paper's §VI argues that a supervised process barely dents
//! availability while an unsupervised one dominates downtime. The same
//! holds for the analysis machinery itself: one panicking grid cell (or an
//! interrupted CI job) must not throw away hours of Monte-Carlo work. This
//! module wraps the work-stealing pool ([`crate::pool`]) in a supervisor:
//!
//! * every work item runs under [`std::panic::catch_unwind`];
//! * a panicking item is retried with bounded exponential backoff
//!   ([`RetryPolicy`]) and, once the budget is spent, quarantined into a
//!   structured [`QuarantineReport`] instead of killing the pool;
//! * completed cell outputs are journaled to an fsync'd checkpoint WAL
//!   ([`crate::checkpoint`]) so a killed run resumes without recomputing;
//! * a shutdown flag (wired to SIGINT/SIGTERM by the CLI) drains in-flight
//!   cells, seals the WAL, and still emits the partial results.
//!
//! Because per-item seeds are identity-derived ([`crate::plan::item_seed`]),
//! a resumed run is byte-identical to an uninterrupted one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sdnav_core::{ControllerSpec, ModelState};

use crate::cache::EvalGraph;
use crate::checkpoint::{fingerprint, CheckpointWal};
use crate::metrics::{RunMetrics, StageTimings};
use crate::plan::item_seed;
use crate::quarantine::{QuarantineRecord, QuarantineReport};
use crate::{pool, GridError, GridResults, GridSpec, ItemOutput};

/// Bounded exponential backoff between retries of a panicked item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = quarantine immediately).
    pub max_retries: u32,
    /// Sleep before retry `n` is `backoff_base_ms << (n - 1)` milliseconds.
    pub backoff_base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// Starts a builder at the default policy (2 retries, 50 ms base).
    pub fn builder() -> RetryPolicyBuilder {
        RetryPolicyBuilder {
            policy: RetryPolicy::default(),
        }
    }

    fn backoff_ms(&self, completed_attempts: u32) -> u64 {
        // Shift capped so a generous retry budget cannot overflow.
        self.backoff_base_ms
            .saturating_mul(1u64 << completed_attempts.min(16))
    }
}

/// Step-by-step construction of a [`RetryPolicy`].
#[derive(Debug, Clone, Copy)]
#[must_use = "call `.build()` to obtain the RetryPolicy"]
pub struct RetryPolicyBuilder {
    policy: RetryPolicy,
}

impl RetryPolicyBuilder {
    /// Sets the retries after the first failed attempt (0 = quarantine
    /// immediately).
    pub fn max_retries(mut self, max_retries: u32) -> Self {
        self.policy.max_retries = max_retries;
        self
    }

    /// Sets the base backoff in milliseconds (retry `n` sleeps
    /// `base << (n - 1)`).
    pub fn backoff_base_ms(mut self, backoff_base_ms: u64) -> Self {
        self.policy.backoff_base_ms = backoff_base_ms;
        self
    }

    /// Returns the policy (every combination of fields is valid).
    pub fn build(self) -> RetryPolicy {
        self.policy
    }
}

/// Identity attached to a quarantined item (see [`run_supervised`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellMeta {
    /// Human-readable identity (grid coordinates, replication tag, …).
    pub label: String,
    /// RNG seed the item ran with, for replay in isolation.
    pub seed: u64,
}

/// Outcome of one supervised work item.
#[derive(Debug)]
pub enum Cell<T> {
    /// The item completed (possibly after retries).
    Done(T),
    /// The item panicked past its retry budget and was quarantined.
    Quarantined(QuarantineRecord),
}

/// Everything [`run_supervised`] reports back.
#[derive(Debug)]
pub struct SupervisedRun<T> {
    /// Per-item outcomes in item order.
    pub cells: Vec<Cell<T>>,
    /// Pool execution counters.
    pub stats: pool::PoolStats,
    /// Retries performed across all items.
    pub retries: u64,
}

/// Extracts a displayable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f` over every item on the work-stealing pool with panic
/// supervision: a panicking item is retried per `policy` and finally
/// quarantined (with the identity `meta` reports) instead of unwinding
/// through the pool. Results keep item order, so supervised execution is
/// as thread-count-independent as the unsupervised pool.
pub fn run_supervised<I, T, M, F>(
    threads: usize,
    items: &[I],
    policy: RetryPolicy,
    meta: M,
    f: F,
) -> SupervisedRun<T>
where
    I: Sync,
    T: Send,
    M: Fn(usize, &I) -> CellMeta + Sync,
    F: Fn(usize, &I) -> T + Sync,
{
    let retries = AtomicU64::new(0);
    let (cells, stats) = pool::execute(threads, items, |index, item| {
        let mut attempts: u32 = 0;
        loop {
            match catch_unwind(AssertUnwindSafe(|| f(index, item))) {
                Ok(value) => return Cell::Done(value),
                Err(payload) => {
                    attempts += 1;
                    let message = panic_message(payload.as_ref());
                    if attempts > policy.max_retries {
                        let CellMeta { label, seed } = meta(index, item);
                        return Cell::Quarantined(QuarantineRecord {
                            index,
                            label,
                            seed,
                            attempts,
                            panic_message: message,
                        });
                    }
                    retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(policy.backoff_ms(attempts - 1)));
                }
            }
        }
    });
    SupervisedRun {
        cells,
        stats,
        retries: retries.into_inner(),
    }
}

/// Options for [`evaluate_supervised`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SuperviseOptions<'a> {
    /// Retry/backoff budget for panicking items.
    pub retry: RetryPolicy,
    /// Journal completed cells to this WAL path.
    pub checkpoint: Option<&'a std::path::Path>,
    /// Replay journaled cells from the WAL before executing the rest.
    pub resume: bool,
    /// Externally owned shutdown flag (the CLI wires SIGINT/SIGTERM to
    /// it). Once set, not-yet-started cells are skipped; in-flight cells
    /// drain normally.
    pub shutdown: Option<&'a AtomicBool>,
    /// Test/CI hook: the item at this plan index panics on every attempt.
    pub inject_panic: Option<usize>,
    /// Test/CI hook: request shutdown after this many freshly computed
    /// cells, simulating an interrupt at a deterministic point.
    pub cancel_after_cells: Option<usize>,
}

impl<'a> SuperviseOptions<'a> {
    /// Starts a builder at the defaults (default retry policy, no
    /// checkpoint, no shutdown flag, no test hooks).
    pub fn builder() -> SuperviseOptionsBuilder<'a> {
        SuperviseOptionsBuilder {
            opts: SuperviseOptions::default(),
        }
    }
}

/// Step-by-step construction of [`SuperviseOptions`].
#[derive(Debug, Clone, Copy)]
#[must_use = "call `.build()` to obtain the SuperviseOptions"]
pub struct SuperviseOptionsBuilder<'a> {
    opts: SuperviseOptions<'a>,
}

impl<'a> SuperviseOptionsBuilder<'a> {
    /// Sets the retry/backoff budget for panicking items.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.opts.retry = retry;
        self
    }

    /// Journals completed cells to this WAL path (`None` disables the
    /// checkpoint).
    pub fn checkpoint(mut self, path: Option<&'a std::path::Path>) -> Self {
        self.opts.checkpoint = path;
        self
    }

    /// Replays journaled cells from the WAL before executing the rest.
    pub fn resume(mut self, resume: bool) -> Self {
        self.opts.resume = resume;
        self
    }

    /// Wires an externally owned shutdown flag (SIGINT/SIGTERM).
    pub fn shutdown(mut self, flag: &'a AtomicBool) -> Self {
        self.opts.shutdown = Some(flag);
        self
    }

    /// Test/CI hook: the item at this plan index panics on every attempt.
    pub fn inject_panic(mut self, index: Option<usize>) -> Self {
        self.opts.inject_panic = index;
        self
    }

    /// Test/CI hook: request shutdown after this many fresh cells.
    pub fn cancel_after_cells(mut self, cells: Option<usize>) -> Self {
        self.opts.cancel_after_cells = cells;
        self
    }

    /// Returns the options (every combination of fields is valid).
    pub fn build(self) -> SuperviseOptions<'a> {
        self.opts
    }
}

/// What a supervised grid run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedOutcome {
    /// Aggregated results; [`GridResults::incomplete`] is set when any
    /// cell was skipped (shutdown) or quarantined.
    pub results: GridResults,
    /// Run metrics, including supervision counters.
    pub metrics: RunMetrics,
    /// Quarantined cells (empty on a clean run).
    pub quarantine: QuarantineReport,
    /// Whether a shutdown request cut the run short.
    pub interrupted: bool,
}

/// What the supervising closure reports per cell.
enum EvalCell {
    /// Freshly computed (journaled to the WAL when one is open).
    Fresh(Result<ItemOutput, GridError>),
    /// Replayed from the checkpoint WAL; not recomputed or re-journaled.
    Restored(ItemOutput),
    /// Skipped because shutdown was requested before the cell started.
    Skipped,
}

/// Evaluates a grid under supervision (see the module docs). This is the
/// path `sdnav sweep` runs on; [`crate::evaluate`] remains the plain
/// complete-or-error evaluator for embedders that want panics to
/// propagate.
///
/// # Errors
///
/// Returns the first [`GridError`] in plan order — model errors are
/// deterministic, so unlike panics they are not retried — or a
/// [`GridError::Checkpoint`] if the WAL cannot be written or replayed.
pub fn evaluate_supervised(
    spec: &ControllerSpec,
    grid: &GridSpec,
    opts: &SuperviseOptions<'_>,
) -> Result<SupervisedOutcome, GridError> {
    let threads = crate::resolve_threads(grid);

    let plan_start = Instant::now(); // detlint::allow(DL002): stage timing feeds the stderr metrics channel, never results
    let items = crate::build_items(grid);
    let state = ModelState::paper(spec.clone());
    let graph = EvalGraph::new();
    let ctx = crate::build_ctx(&state, grid, &graph)?;

    let mut restored_cells: Vec<Option<ItemOutput>> = Vec::new();
    restored_cells.resize_with(items.len(), || None);
    let mut wal = None;
    if let Some(path) = opts.checkpoint {
        let stamp = fingerprint(spec, grid);
        if opts.resume {
            let (handle, journaled) = CheckpointWal::resume(path, stamp)?;
            for (index, output) in journaled {
                if index < items.len() {
                    restored_cells[index] = Some(output);
                }
            }
            wal = Some(handle);
        } else {
            wal = Some(CheckpointWal::create(path, stamp)?);
        }
    }
    let restored_count = restored_cells.iter().filter(|c| c.is_some()).count();
    let restored: Vec<Mutex<Option<ItemOutput>>> =
        restored_cells.into_iter().map(Mutex::new).collect();
    let wal = wal.map(Mutex::new);
    let fresh_done = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let plan_ms = plan_start.elapsed().as_secs_f64() * 1e3;

    let shutting_down = || {
        cancelled.load(Ordering::Relaxed)
            || opts
                .shutdown
                .is_some_and(|flag| flag.load(Ordering::Relaxed))
    };

    let execute_start = Instant::now(); // detlint::allow(DL002): stage timing feeds the stderr metrics channel, never results
    let run = run_supervised(
        threads,
        &items,
        opts.retry,
        |index, item| CellMeta {
            label: format!("item {index}: {item:?}"),
            seed: item_seed(grid.seed, item),
        },
        |index, item| {
            if let Some(output) = restored[index].lock().expect("restored slot lock").take() {
                return EvalCell::Restored(output);
            }
            if shutting_down() {
                return EvalCell::Skipped;
            }
            if opts.inject_panic == Some(index) {
                panic!("injected panic in work item {index}");
            }
            let result = ctx.eval(item);
            if let (Ok(output), Some(wal)) = (&result, &wal) {
                if let Err(e) = wal.lock().expect("wal lock").append_cell(index, output) {
                    return EvalCell::Fresh(Err(e));
                }
            }
            if result.is_ok() {
                let done = fresh_done.fetch_add(1, Ordering::SeqCst) + 1;
                if opts.cancel_after_cells.is_some_and(|k| done >= k) {
                    cancelled.store(true, Ordering::SeqCst);
                }
            }
            EvalCell::Fresh(result)
        },
    );
    let execute_ms = execute_start.elapsed().as_secs_f64() * 1e3;

    let aggregate_start = Instant::now(); // detlint::allow(DL002): stage timing feeds the stderr metrics channel, never results
    let mut results = GridResults::default();
    let mut sim_events = 0u64;
    let mut quarantine = QuarantineReport::default();
    let mut skipped = 0usize;
    let mut journaled_cells = 0u64;
    let mut first_error = None;
    for cell in run.cells {
        match cell {
            Cell::Done(EvalCell::Fresh(Ok(output))) | Cell::Done(EvalCell::Restored(output)) => {
                journaled_cells += 1;
                crate::fold_output(&mut results, &mut sim_events, output);
            }
            Cell::Done(EvalCell::Fresh(Err(e))) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
            Cell::Done(EvalCell::Skipped) => skipped += 1,
            Cell::Quarantined(record) => quarantine.records.push(record),
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let interrupted = skipped > 0;
    results.incomplete = interrupted || !quarantine.is_empty();

    if let Some(wal) = wal {
        let reason = if interrupted {
            "interrupted"
        } else if quarantine.is_empty() {
            "complete"
        } else {
            "partial"
        };
        wal.into_inner()
            .expect("wal lock")
            .seal(reason, journaled_cells)?;
    }
    let aggregate_ms = aggregate_start.elapsed().as_secs_f64() * 1e3;

    let metrics = RunMetrics {
        threads: run.stats.workers,
        items: items.len(),
        stages: StageTimings {
            plan_ms,
            execute_ms,
            aggregate_ms,
        },
        items_per_sec: if execute_ms > 0.0 {
            items.len() as f64 / (execute_ms / 1e3)
        } else {
            0.0
        },
        cache_hits: graph.hits(),
        cache_misses: graph.misses(),
        steals: run.stats.steals,
        sim_replications: (results.sim.len() * grid.replications) as u64
            + results
                .chaos
                .iter()
                .map(|row| row.replications as u64)
                .sum::<u64>(),
        sim_events,
        retries: run.retries,
        quarantined: quarantine.len() as u64,
        restored: restored_count as u64,
    };

    Ok(SupervisedOutcome {
        results,
        metrics,
        quarantine,
        interrupted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Figure;
    use std::path::PathBuf;

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    fn small_grid(threads: usize) -> GridSpec {
        GridSpec::builder()
            .figures(&[Figure::Fig4])
            .points(2)
            .replications(1)
            .threads(threads)
            .sim_horizon_hours(2_000.0)
            .sim_accelerate(500.0)
            .sim_compute_hosts(2)
            .build()
            .unwrap()
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            backoff_base_ms: 1,
        }
    }

    fn temp_wal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "sdnav-supervise-{tag}-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn supervised_matches_plain_evaluate_byte_for_byte() {
        let s = spec();
        let grid = small_grid(2);
        let plain = crate::evaluate(&s, &grid).unwrap();
        let supervised = evaluate_supervised(&s, &grid, &SuperviseOptions::default()).unwrap();
        assert_eq!(
            sdnav_json::to_string(&supervised.results),
            sdnav_json::to_string(&plain.results)
        );
        assert!(!supervised.interrupted);
        assert!(supervised.quarantine.is_empty());
        assert_eq!(supervised.metrics.retries, 0);
    }

    #[test]
    fn panicking_item_is_retried_then_quarantined_without_killing_pool() {
        let s = spec();
        let grid = small_grid(2);
        let opts = SuperviseOptions {
            retry: fast_retry(),
            inject_panic: Some(1),
            ..SuperviseOptions::default()
        };
        let outcome = evaluate_supervised(&s, &grid, &opts).unwrap();
        // 2 fig4 + 8 sim cells planned; all but the quarantined fig4 cell
        // completed.
        assert_eq!(outcome.results.fig4.len(), 1);
        assert_eq!(outcome.results.sim.len(), 8);
        assert_eq!(outcome.quarantine.len(), 1);
        let record = &outcome.quarantine.records[0];
        assert_eq!(record.index, 1);
        assert_eq!(record.attempts, 3, "first attempt + 2 retries");
        assert!(record.panic_message.contains("injected panic"));
        assert_eq!(outcome.metrics.retries, 2);
        assert_eq!(outcome.metrics.quarantined, 1);
        assert!(outcome.results.incomplete);
        assert!(!outcome.interrupted, "quarantine is not an interrupt");
        let json = sdnav_json::to_string(&outcome.results);
        assert!(json.contains("\"incomplete\":true"));
    }

    #[test]
    fn shutdown_flag_skips_remaining_cells_and_marks_incomplete() {
        let s = spec();
        let grid = small_grid(1);
        let flag = AtomicBool::new(true); // Shutdown requested before start.
        let opts = SuperviseOptions {
            shutdown: Some(&flag),
            ..SuperviseOptions::default()
        };
        let outcome = evaluate_supervised(&s, &grid, &opts).unwrap();
        assert!(outcome.interrupted);
        assert!(outcome.results.incomplete);
        assert!(outcome.results.fig4.is_empty());
        assert!(outcome.quarantine.is_empty());
    }

    #[test]
    fn cancelled_run_resumes_to_byte_identical_results() {
        let s = spec();
        let path = temp_wal("resume");
        std::fs::remove_file(&path).ok();
        let reference =
            sdnav_json::to_string(&crate::evaluate(&s, &small_grid(1)).unwrap().results);

        let grid = small_grid(1);
        let partial_opts = SuperviseOptions {
            checkpoint: Some(&path),
            cancel_after_cells: Some(2),
            ..SuperviseOptions::default()
        };
        let partial = evaluate_supervised(&s, &grid, &partial_opts).unwrap();
        assert!(partial.interrupted);
        assert!(partial.results.incomplete);

        // Resume on a different thread count: byte-identical completion.
        let resumed_opts = SuperviseOptions {
            checkpoint: Some(&path),
            resume: true,
            ..SuperviseOptions::default()
        };
        let resumed = evaluate_supervised(&s, &small_grid(4), &resumed_opts).unwrap();
        assert!(!resumed.interrupted);
        assert!(resumed.metrics.restored >= 2);
        assert_eq!(sdnav_json::to_string(&resumed.results), reference);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_with_changed_grid_is_refused() {
        let s = spec();
        let path = temp_wal("refuse");
        std::fs::remove_file(&path).ok();
        let opts = SuperviseOptions {
            checkpoint: Some(&path),
            ..SuperviseOptions::default()
        };
        evaluate_supervised(&s, &small_grid(1), &opts).unwrap();

        let mut reseeded = small_grid(1);
        reseeded.seed = 999;
        let resume_opts = SuperviseOptions {
            checkpoint: Some(&path),
            resume: true,
            ..SuperviseOptions::default()
        };
        let err = evaluate_supervised(&s, &reseeded, &resume_opts).unwrap_err();
        assert!(matches!(err, GridError::Checkpoint(_)), "got {err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_supervised_keeps_item_order_and_counts_retries() {
        let items: Vec<usize> = (0..16).collect();
        let policy = RetryPolicy {
            max_retries: 1,
            backoff_base_ms: 0,
        };
        let attempts = AtomicU64::new(0);
        let run = run_supervised(
            4,
            &items,
            policy,
            |index, _| CellMeta {
                label: format!("item {index}"),
                seed: index as u64,
            },
            |_, &item| {
                if item == 5 {
                    // Panics on the first attempt only: the retry succeeds.
                    if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("transient");
                    }
                }
                if item == 9 {
                    panic!("permanent");
                }
                item * 2
            },
        );
        assert_eq!(run.cells.len(), 16);
        for (i, cell) in run.cells.iter().enumerate() {
            match cell {
                Cell::Done(v) => assert_eq!(*v, i * 2),
                Cell::Quarantined(record) => {
                    assert_eq!(i, 9);
                    assert_eq!(record.attempts, 2);
                    assert_eq!(record.panic_message, "permanent");
                }
            }
        }
        assert!(run.retries >= 2, "one transient + one permanent retry");
    }
}
