//! Batched scenario-grid evaluation for the paper's models.
//!
//! The analytic sweeps (`sdnav_core::sweep`) and the discrete-event
//! simulator (`sdnav_sim`) each answer one question at a time. This crate
//! evaluates a whole *grid* of questions — figure × topology × parameter
//! point × method — in one run:
//!
//! 1. **Plan** ([`plan`]): expand a [`GridSpec`] into independent
//!    [`plan::WorkItem`]s in a canonical order, each with a deterministic,
//!    identity-derived RNG seed.
//! 2. **Execute** ([`pool`]): run the items on a std-only work-stealing
//!    thread pool. Results land in per-item slots, so the output is
//!    byte-identical for any `--threads` value.
//! 3. **Memoize** ([`cache`]): grid axes overlap — Fig. 4 and Fig. 5 need
//!    the same SW-model evaluations — so sub-model results are cached by
//!    bit-pattern keys and shared across items.
//! 4. **Aggregate**: fold per-item outputs back into figure tables and
//!    simulation rows in plan order, streaming simulation replications
//!    through [`sdnav_sim::Welford`].
//!
//! [`evaluate`] is the single entry point; it returns the results plus a
//! [`metrics::RunMetrics`] block (stage timings, cache hit rates,
//! steals, throughput). Results are reproducible; metrics are not and are
//! reported separately.
//!
//! ```
//! use sdnav_core::ControllerSpec;
//! use sdnav_grid::{evaluate, GridSpec};
//!
//! let spec = ControllerSpec::opencontrail_3x();
//! let grid = GridSpec::builder().points(5).build().expect("valid grid");
//! let outcome = evaluate(&spec, &grid).expect("grid evaluates");
//! assert_eq!(outcome.results.fig3.len(), 5);
//! assert!(outcome.metrics.cache_hits > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::error::Error;
use std::fmt;
use std::time::Instant;

use sdnav_consensus::{ConsensusParams, ConsensusSim};
use sdnav_core::sweep::{Fig3Row, SwSweepRow};
use sdnav_core::{
    ConsensusSpec, ControllerSpec, FaultMix, HwModel, HwParams, ModelState, ParamError, Scenario,
    SdnavError, SwModel, SwParams, Topology,
};
use sdnav_json::{schema, FromJson, Json, JsonError, ToJson};
use sdnav_sim::{ConfigError, Estimate, SimBuildError, SimConfig, Simulation, Welford};

pub mod cache;
pub mod checkpoint;
pub mod metrics;
pub mod plan;
pub mod pool;
pub mod quarantine;
pub mod supervise;

use cache::SubModelKey;
use metrics::{RunMetrics, StageTimings};
use plan::{
    item_seed, plan_chaos_items, plan_consensus_items, plan_items, Figure, SimTopology, WorkItem,
};
use sdnav_chaos::{ChaosSpec, CrewDiscipline, CrewSpec, InjectionKind};

pub use cache::EvalGraph;
pub use quarantine::{QuarantineRecord, QuarantineReport};
pub use supervise::{
    evaluate_supervised, run_supervised, Cell, CellMeta, RetryPolicy, SuperviseOptions,
    SupervisedOutcome, SupervisedRun,
};

/// What a grid run should cover. Build one with [`GridSpec::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Figures to sweep analytically.
    pub figures: Vec<Figure>,
    /// Samples per sweep axis.
    pub points: usize,
    /// Simulation replications per grid cell (0 disables simulation).
    pub replications: usize,
    /// Base RNG seed; per-item seeds are derived from it and the item's
    /// grid coordinates.
    pub seed: u64,
    /// Worker threads (0 = one per available CPU).
    pub threads: usize,
    /// Simulated horizon per replication, in hours.
    pub sim_horizon_hours: f64,
    /// Failure-rate acceleration factor for simulation cells.
    pub sim_accelerate: f64,
    /// Simulated compute hosts carrying vRouters.
    pub sim_compute_hosts: usize,
    /// Base chaos campaign for the campaign axes (`None` disables them).
    /// Each chaos cell clones it, overrides the crew count and every
    /// common-cause probability with the cell's coordinates, and runs
    /// `replications.max(1)` injected replications.
    pub chaos_campaign: Option<ChaosSpec>,
    /// Crew-count axis for chaos cells.
    pub chaos_crew_counts: Vec<usize>,
    /// Common-cause probability axis for chaos cells.
    pub chaos_ccf_probabilities: Vec<f64>,
    /// Base consensus spec for the consensus axes (`None` disables them).
    /// Each consensus cell clones it, overrides the election-timeout floor
    /// (keeping the randomized window width), cluster size, and fault mix
    /// with the cell's coordinates, and runs `replications.max(1)` DES
    /// replications next to the macro-state CTMC counterpart.
    pub consensus: Option<ConsensusSpec>,
    /// Election-timeout-floor axis (ms) for consensus cells.
    pub consensus_election_timeouts_ms: Vec<f64>,
    /// Cluster-size axis for consensus cells.
    pub consensus_cluster_sizes: Vec<u32>,
    /// Byzantine/crash fault-mix axis for consensus cells.
    pub consensus_fault_mixes: Vec<FaultMix>,
}

impl GridSpec {
    /// Checks the spec for nonsensical values — the same checks
    /// [`GridSpecBuilder::build`] applies, exposed separately so grids
    /// decoded from JSON (which deliberately skip validation for lint
    /// fixtures) can be gated before evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::Spec`] naming the first nonsensical value.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.figures.is_empty() {
            return Err(GridError::Spec("at least one figure is required"));
        }
        if self.points == 0 {
            return Err(GridError::Spec("points must be at least 1"));
        }
        if self.sim_horizon_hours.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(GridError::Spec("simulation horizon must be positive"));
        }
        if self.sim_accelerate.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(GridError::Spec("simulation acceleration must be positive"));
        }
        if self.sim_compute_hosts == 0 {
            return Err(GridError::Spec("need at least one simulated compute host"));
        }
        if let Some(campaign) = &self.chaos_campaign {
            if campaign.try_validate().is_err() {
                return Err(GridError::Spec("chaos campaign fails validation"));
            }
            if self.chaos_crew_counts.is_empty() || self.chaos_crew_counts.contains(&0) {
                return Err(GridError::Spec(
                    "chaos crew counts must be non-empty and positive",
                ));
            }
            if self.chaos_ccf_probabilities.is_empty()
                || self
                    .chaos_ccf_probabilities
                    .iter()
                    .any(|p| !(0.0..=1.0).contains(p))
            {
                return Err(GridError::Spec(
                    "chaos probabilities must be non-empty and in [0, 1]",
                ));
            }
        }
        if let Some(consensus) = &self.consensus {
            if consensus.validate().is_err() {
                return Err(GridError::Spec("consensus base spec fails validation"));
            }
            if self.consensus_election_timeouts_ms.is_empty()
                || self
                    .consensus_election_timeouts_ms
                    .iter()
                    .any(|t| !(t.is_finite() && *t > 0.0))
            {
                return Err(GridError::Spec(
                    "consensus election timeouts must be non-empty, finite, and positive",
                ));
            }
            if self.consensus_cluster_sizes.is_empty() || self.consensus_cluster_sizes.contains(&0)
            {
                return Err(GridError::Spec(
                    "consensus cluster sizes must be non-empty and positive",
                ));
            }
            if self.consensus_fault_mixes.is_empty() {
                return Err(GridError::Spec("consensus fault mixes must be non-empty"));
            }
        }
        Ok(())
    }

    /// Starts a builder with the default grid: all three figures, 21
    /// points, no simulation, seed 7, auto thread count, and accelerated
    /// short-horizon simulation settings suitable for smoke-grade
    /// validation (20 000 h at 200× on 2 hosts).
    pub fn builder() -> GridSpecBuilder {
        GridSpecBuilder {
            spec: GridSpec {
                figures: vec![Figure::Fig3, Figure::Fig4, Figure::Fig5],
                points: 21,
                replications: 0,
                seed: 7,
                threads: 0,
                sim_horizon_hours: 20_000.0,
                sim_accelerate: 200.0,
                sim_compute_hosts: 2,
                chaos_campaign: None,
                chaos_crew_counts: vec![1, 2, 3, 4],
                chaos_ccf_probabilities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
                consensus: None,
                consensus_election_timeouts_ms: vec![150.0, 300.0, 600.0],
                consensus_cluster_sizes: vec![3, 5, 7],
                consensus_fault_mixes: vec![FaultMix::crash_only(1)],
            },
        }
    }
}

impl FromJson for GridSpec {
    /// Decodes a grid spec from JSON **without validation** — every field
    /// is optional and defaults to the builder's default. Lint passes
    /// deliberately accept grids `build()` would reject, so seeded
    /// fixtures for each diagnostic decode without tripping an earlier
    /// gate. Run the result through [`GridSpec::builder`]-equivalent
    /// validation before evaluating it.
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let mut spec = GridSpec::builder().spec;
        if let Some(v) = value.get("figures") {
            let mut figures = Vec::new();
            for (i, f) in v.as_arr().map_err(|e| e.ctx("figures"))?.iter().enumerate() {
                let name = f.as_str().map_err(|e| e.ctx("figures"))?;
                figures.push(Figure::parse(name).ok_or_else(|| {
                    JsonError::decode(format!(
                        "unknown figure {name:?} (want fig3, fig4, or fig5)"
                    ))
                    .ctx(&format!("figures[{i}]"))
                })?);
            }
            spec.figures = figures;
        }
        if let Some(v) = value.get("points") {
            spec.points = v.as_usize().map_err(|e| e.ctx("points"))?;
        }
        if let Some(v) = value.get("replications") {
            spec.replications = v.as_usize().map_err(|e| e.ctx("replications"))?;
        }
        if let Some(v) = value.get("seed") {
            spec.seed = v.as_usize().map_err(|e| e.ctx("seed"))? as u64;
        }
        if let Some(v) = value.get("threads") {
            spec.threads = v.as_usize().map_err(|e| e.ctx("threads"))?;
        }
        if let Some(v) = value.get("sim_horizon_hours") {
            spec.sim_horizon_hours = v.as_f64().map_err(|e| e.ctx("sim_horizon_hours"))?;
        }
        if let Some(v) = value.get("sim_accelerate") {
            spec.sim_accelerate = v.as_f64().map_err(|e| e.ctx("sim_accelerate"))?;
        }
        if let Some(v) = value.get("sim_compute_hosts") {
            spec.sim_compute_hosts = v.as_usize().map_err(|e| e.ctx("sim_compute_hosts"))?;
        }
        if let Some(v) = value.get("chaos_campaign") {
            spec.chaos_campaign =
                Some(ChaosSpec::from_json(v).map_err(|e| e.ctx("chaos_campaign"))?);
        }
        if let Some(v) = value.get("chaos_crew_counts") {
            spec.chaos_crew_counts = v
                .as_arr()
                .map_err(|e| e.ctx("chaos_crew_counts"))?
                .iter()
                .map(Json::as_usize)
                .collect::<Result<_, _>>()
                .map_err(|e| e.ctx("chaos_crew_counts"))?;
        }
        if let Some(v) = value.get("chaos_ccf_probabilities") {
            spec.chaos_ccf_probabilities = v
                .as_arr()
                .map_err(|e| e.ctx("chaos_ccf_probabilities"))?
                .iter()
                .map(Json::as_f64)
                .collect::<Result<_, _>>()
                .map_err(|e| e.ctx("chaos_ccf_probabilities"))?;
        }
        if let Some(v) = value.get("consensus") {
            spec.consensus = Some(ConsensusSpec::from_json(v).map_err(|e| e.ctx("consensus"))?);
        }
        if let Some(v) = value.get("consensus_election_timeouts_ms") {
            spec.consensus_election_timeouts_ms = v
                .as_arr()
                .map_err(|e| e.ctx("consensus_election_timeouts_ms"))?
                .iter()
                .map(Json::as_f64)
                .collect::<Result<_, _>>()
                .map_err(|e| e.ctx("consensus_election_timeouts_ms"))?;
        }
        if let Some(v) = value.get("consensus_cluster_sizes") {
            spec.consensus_cluster_sizes = v
                .as_arr()
                .map_err(|e| e.ctx("consensus_cluster_sizes"))?
                .iter()
                .map(Json::as_u32)
                .collect::<Result<_, _>>()
                .map_err(|e| e.ctx("consensus_cluster_sizes"))?;
        }
        if let Some(v) = value.get("consensus_fault_mixes") {
            spec.consensus_fault_mixes = v
                .as_arr()
                .map_err(|e| e.ctx("consensus_fault_mixes"))?
                .iter()
                .map(FaultMix::from_json)
                .collect::<Result<_, _>>()
                .map_err(|e| e.ctx("consensus_fault_mixes"))?;
        }
        Ok(spec)
    }
}

/// Step-by-step construction of a validated [`GridSpec`].
#[derive(Debug, Clone)]
#[must_use = "call `.build()` to obtain the validated GridSpec"]
pub struct GridSpecBuilder {
    spec: GridSpec,
}

impl GridSpecBuilder {
    /// Restricts the run to the given figures (deduplicated, order kept).
    pub fn figures(mut self, figures: &[Figure]) -> Self {
        let mut list: Vec<Figure> = Vec::new();
        for f in figures {
            if !list.contains(f) {
                list.push(*f);
            }
        }
        self.spec.figures = list;
        self
    }

    /// Sets the samples per sweep axis.
    pub fn points(mut self, points: usize) -> Self {
        self.spec.points = points;
        self
    }

    /// Sets the simulation replications per cell (0 disables simulation).
    pub fn replications(mut self, replications: usize) -> Self {
        self.spec.replications = replications;
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Sets the worker thread count (0 = one per available CPU).
    pub fn threads(mut self, threads: usize) -> Self {
        self.spec.threads = threads;
        self
    }

    /// Sets the simulated horizon per replication, in hours.
    pub fn sim_horizon_hours(mut self, hours: f64) -> Self {
        self.spec.sim_horizon_hours = hours;
        self
    }

    /// Sets the failure-rate acceleration for simulation cells.
    pub fn sim_accelerate(mut self, factor: f64) -> Self {
        self.spec.sim_accelerate = factor;
        self
    }

    /// Sets the simulated compute-host count.
    pub fn sim_compute_hosts(mut self, hosts: usize) -> Self {
        self.spec.sim_compute_hosts = hosts;
        self
    }

    /// Enables the chaos-campaign axes with this base campaign.
    pub fn chaos_campaign(mut self, campaign: ChaosSpec) -> Self {
        self.spec.chaos_campaign = Some(campaign);
        self
    }

    /// Sets the crew-count axis for chaos cells.
    pub fn chaos_crew_counts(mut self, counts: &[usize]) -> Self {
        self.spec.chaos_crew_counts = counts.to_vec();
        self
    }

    /// Sets the common-cause probability axis for chaos cells.
    pub fn chaos_ccf_probabilities(mut self, probabilities: &[f64]) -> Self {
        self.spec.chaos_ccf_probabilities = probabilities.to_vec();
        self
    }

    /// Enables the consensus axes with this base spec.
    pub fn consensus(mut self, consensus: ConsensusSpec) -> Self {
        self.spec.consensus = Some(consensus);
        self
    }

    /// Sets the election-timeout-floor axis (ms) for consensus cells.
    pub fn consensus_election_timeouts_ms(mut self, timeouts: &[f64]) -> Self {
        self.spec.consensus_election_timeouts_ms = timeouts.to_vec();
        self
    }

    /// Sets the cluster-size axis for consensus cells.
    pub fn consensus_cluster_sizes(mut self, sizes: &[u32]) -> Self {
        self.spec.consensus_cluster_sizes = sizes.to_vec();
        self
    }

    /// Sets the fault-mix axis for consensus cells.
    pub fn consensus_fault_mixes(mut self, mixes: &[FaultMix]) -> Self {
        self.spec.consensus_fault_mixes = mixes.to_vec();
        self
    }

    /// Validates and returns the grid spec.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::Spec`] naming the first nonsensical value.
    pub fn build(self) -> Result<GridSpec, GridError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// A grid run that could not be planned or executed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GridError {
    /// The grid spec itself is nonsensical.
    Spec(&'static str),
    /// A model parameter set failed validation.
    Param(ParamError),
    /// A simulation configuration failed validation.
    Config(ConfigError),
    /// A simulation could not be constructed.
    Sim(SimBuildError),
    /// The chaos campaign failed to compile against a grid cell's
    /// simulation (message from [`sdnav_chaos::CompileError`]).
    Campaign(String),
    /// A consensus cell could not be built or cross-validated (message
    /// from [`sdnav_consensus::ConsensusSimError`]).
    Consensus(String),
    /// The checkpoint WAL could not be written, replayed, or matched
    /// against this run's identity (see [`checkpoint`]).
    Checkpoint(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Spec(what) => write!(f, "invalid grid spec: {what}"),
            GridError::Param(e) => write!(f, "invalid model parameters: {e}"),
            GridError::Config(e) => write!(f, "invalid simulation config: {e}"),
            GridError::Sim(e) => write!(f, "cannot build simulation: {e}"),
            GridError::Campaign(e) => write!(f, "cannot compile chaos campaign: {e}"),
            GridError::Consensus(e) => write!(f, "cannot evaluate consensus cell: {e}"),
            GridError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl Error for GridError {}

impl From<GridError> for SdnavError {
    fn from(e: GridError) -> Self {
        match &e {
            GridError::Checkpoint(_) => SdnavError::io(e.to_string()),
            _ => SdnavError::model(e.to_string()),
        }
    }
}

impl From<ParamError> for GridError {
    fn from(e: ParamError) -> Self {
        GridError::Param(e)
    }
}

impl From<ConfigError> for GridError {
    fn from(e: ConfigError) -> Self {
        GridError::Config(e)
    }
}

impl From<SimBuildError> for GridError {
    fn from(e: SimBuildError) -> Self {
        GridError::Sim(e)
    }
}

/// One simulated grid cell: replication-aggregated estimates next to the
/// matching analytic prediction (computed from the *accelerated* rates the
/// simulator actually ran).
#[derive(Debug, Clone, PartialEq)]
pub struct SimRow {
    /// Sweep x-position (orders of magnitude of process downtime removed).
    pub x: f64,
    /// Simulated deployment name (`Small` | `Large`).
    pub topology: &'static str,
    /// Whether the supervisor-required scenario applied.
    pub supervisor_required: bool,
    /// Replications aggregated into the estimates.
    pub replications: usize,
    /// Across-replication control-plane availability estimate.
    pub cp: Estimate,
    /// Across-replication per-host data-plane availability estimate.
    pub dp: Estimate,
    /// Total events processed across the replications.
    pub events: u64,
    /// Analytic CP availability at the simulated (accelerated) rates.
    pub analytic_cp: f64,
    /// Analytic per-host DP availability at the simulated rates.
    pub analytic_dp: f64,
}

impl ToJson for SimRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("x", Json::Num(self.x)),
            ("topology", Json::str(self.topology)),
            ("supervisor_required", Json::Bool(self.supervisor_required)),
            ("replications", Json::Num(self.replications as f64)),
            ("cp_mean", Json::Num(self.cp.mean)),
            ("cp_std_error", Json::Num(self.cp.std_error)),
            ("dp_mean", Json::Num(self.dp.mean)),
            ("dp_std_error", Json::Num(self.dp.std_error)),
            ("events", Json::Num(self.events as f64)),
            ("analytic_cp", Json::Num(self.analytic_cp)),
            ("analytic_dp", Json::Num(self.analytic_dp)),
        ])
    }
}

/// One chaos-campaign grid cell: the base campaign re-parameterized to one
/// `(crew count, common-cause probability, topology)` coordinate, with
/// replication-aggregated availability estimates and the mean attribution
/// split between injected and organic root causes.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Repair crews available in this cell.
    pub crew_count: usize,
    /// Probability applied to every common-cause group member.
    pub ccf_probability: f64,
    /// Simulated deployment name (`Small` | `Large`).
    pub topology: &'static str,
    /// Replications aggregated into the estimates.
    pub replications: usize,
    /// Across-replication control-plane availability estimate.
    pub cp: Estimate,
    /// Across-replication per-host data-plane availability estimate.
    pub dp: Estimate,
    /// Mean CP outage-hours per replication rooted in campaign injections.
    pub injected_cp_hours_mean: f64,
    /// Mean CP outage-hours per replication rooted in organic failures.
    pub organic_cp_hours_mean: f64,
    /// Planned events applied, summed across the replications.
    pub injected_events: u64,
    /// Latent faults revealed by failovers, summed across the replications.
    pub revealed_latents: u64,
    /// Total events processed across the replications.
    pub events: u64,
}

impl ToJson for ChaosRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("crew_count", Json::Num(self.crew_count as f64)),
            ("ccf_probability", Json::Num(self.ccf_probability)),
            ("topology", Json::str(self.topology)),
            ("replications", Json::Num(self.replications as f64)),
            ("cp_mean", Json::Num(self.cp.mean)),
            ("cp_std_error", Json::Num(self.cp.std_error)),
            ("dp_mean", Json::Num(self.dp.mean)),
            ("dp_std_error", Json::Num(self.dp.std_error)),
            (
                "injected_cp_hours_mean",
                Json::Num(self.injected_cp_hours_mean),
            ),
            (
                "organic_cp_hours_mean",
                Json::Num(self.organic_cp_hours_mean),
            ),
            ("injected_events", Json::Num(self.injected_events as f64)),
            ("revealed_latents", Json::Num(self.revealed_latents as f64)),
            ("events", Json::Num(self.events as f64)),
        ])
    }
}

/// One consensus-dynamics grid cell: the base [`ConsensusSpec`]
/// re-parameterized to one `(election timeout, cluster size, fault mix)`
/// coordinate, with replication-aggregated DES availability next to the
/// macro-state CTMC counterpart evaluated at the same parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusRow {
    /// Election-timeout floor applied in this cell (ms).
    pub election_timeout_ms: f64,
    /// Consensus participants in this cell.
    pub cluster_size: u32,
    /// Declared Byzantine fault count (`F_BFT`).
    pub byzantine: u32,
    /// Declared crash fault count (`F_crash`).
    pub crash: u32,
    /// Effective commit quorum (`2·F_BFT + F_crash + 1`, floored at a
    /// simple majority).
    pub quorum: u32,
    /// DES replications aggregated into the estimate.
    pub replications: usize,
    /// Across-replication control-plane (leader-up) availability estimate.
    pub availability: Estimate,
    /// Mean fraction of the horizon spent in leader elections.
    pub election_fraction_mean: f64,
    /// Mean fraction of the horizon spent with the quorum lost.
    pub stall_fraction_mean: f64,
    /// Leader elections observed, summed across the replications.
    pub elections: u64,
    /// Steady-state availability of the macro-state CTMC counterpart.
    pub ctmc_availability: f64,
}

impl ToJson for ConsensusRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("election_timeout_ms", Json::Num(self.election_timeout_ms)),
            ("cluster_size", self.cluster_size.to_json()),
            ("byzantine", self.byzantine.to_json()),
            ("crash", self.crash.to_json()),
            ("quorum", self.quorum.to_json()),
            ("replications", Json::Num(self.replications as f64)),
            ("availability_mean", Json::Num(self.availability.mean)),
            (
                "availability_std_error",
                Json::Num(self.availability.std_error),
            ),
            (
                "election_fraction_mean",
                Json::Num(self.election_fraction_mean),
            ),
            ("stall_fraction_mean", Json::Num(self.stall_fraction_mean)),
            ("elections", Json::Num(self.elections as f64)),
            ("ctmc_availability", Json::Num(self.ctmc_availability)),
        ])
    }
}

/// The reproducible payload of a grid run.
///
/// Serialized as `sdnav-sweep-results/v1`. For a fixed spec and grid this
/// is byte-identical across thread counts and runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GridResults {
    /// Fig. 3 rows (empty when the figure was not requested).
    pub fig3: Vec<Fig3Row>,
    /// Fig. 4 rows.
    pub fig4: Vec<SwSweepRow>,
    /// Fig. 5 rows.
    pub fig5: Vec<SwSweepRow>,
    /// Simulated cells (empty when `replications == 0`).
    pub sim: Vec<SimRow>,
    /// Chaos-campaign cells (empty when no campaign was set). Additive to
    /// the `sdnav-sweep-results/v1` schema.
    pub chaos: Vec<ChaosRow>,
    /// Consensus-dynamics cells (empty when no base consensus spec was
    /// set). Additive to the `sdnav-sweep-results/v1` schema; the key is
    /// omitted entirely when empty so pre-consensus output stays
    /// byte-identical.
    pub consensus: Vec<ConsensusRow>,
    /// Whether the run stopped short (graceful shutdown) or quarantined
    /// cells, leaving rows missing. Complete runs leave this `false` and
    /// omit the marker from the JSON, so complete output is byte-identical
    /// to what the unsupervised evaluator emits.
    pub incomplete: bool,
}

impl ToJson for GridResults {
    fn to_json(&self) -> Json {
        let rows = |items: &[Fig3Row]| Json::Arr(items.iter().map(ToJson::to_json).collect());
        let sw_rows = |items: &[SwSweepRow]| Json::Arr(items.iter().map(ToJson::to_json).collect());
        let mut fields = vec![("schema", Json::str(schema::SWEEP_RESULTS))];
        if self.incomplete {
            // Additive marker: only partial output carries it, so complete
            // runs stay byte-compatible with pre-supervision consumers.
            fields.push(("incomplete", Json::Bool(true)));
        }
        fields.extend(vec![
            ("fig3", rows(&self.fig3)),
            ("fig4", sw_rows(&self.fig4)),
            ("fig5", sw_rows(&self.fig5)),
            (
                "sim",
                Json::Arr(self.sim.iter().map(ToJson::to_json).collect()),
            ),
            (
                "chaos",
                Json::Arr(self.chaos.iter().map(ToJson::to_json).collect()),
            ),
        ]);
        if !self.consensus.is_empty() {
            // Additive key: only runs with consensus axes carry it, so
            // pre-consensus result files keep their exact bytes.
            fields.push((
                "consensus",
                Json::Arr(self.consensus.iter().map(ToJson::to_json).collect()),
            ));
        }
        Json::obj(fields)
    }
}

/// Everything one grid run produces: the reproducible results and the
/// run-varying metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOutcome {
    /// The reproducible result payload.
    pub results: GridResults,
    /// Stage timings, cache counters, throughput for this particular run.
    pub metrics: RunMetrics,
}

/// Per-item output, folded back into [`GridResults`] in plan order.
#[derive(Debug)]
enum ItemOutput {
    Fig3(Fig3Row),
    Sw(Figure, SwSweepRow),
    Sim(SimRow),
    Chaos(ChaosRow),
    Consensus(ConsensusRow),
}

/// Shared read-only context for item evaluation.
struct EvalCtx<'a> {
    spec: &'a ControllerSpec,
    small: Topology,
    medium: Topology,
    large: Topology,
    hw_base: HwParams,
    sw_base: SwParams,
    /// HW-domain fingerprint ([`ModelState::hw_domain`]) addressing every
    /// [`SubModelKey::Hw`] entry this run reads.
    hw_fp: u64,
    /// SW-domain fingerprint addressing every [`SubModelKey::Sw`] entry.
    sw_fp: u64,
    grid: &'a GridSpec,
    graph: &'a EvalGraph,
}

impl EvalCtx<'_> {
    /// The memoized `[cp, shared_dp, host_dp]` triple of the SW-centric
    /// model at one `(topology, scenario, x)` — the evaluation Fig. 4 and
    /// Fig. 5 share.
    fn sw_triple(&self, which: SimTopology, scenario: Scenario, x: f64) -> [f64; 3] {
        let key = SubModelKey::Sw {
            topology: match which {
                SimTopology::Small => 0,
                SimTopology::Large => 1,
            },
            supervisor_required: scenario == Scenario::SupervisorRequired,
            x_bits: x.to_bits(),
        };
        self.graph.get_or_compute(self.sw_fp, key, || {
            // Figure x = +1 means 10× less downtime → scale by 10^(−x).
            let params = self.sw_base.scale_process_downtime(-x);
            let topo = match which {
                SimTopology::Small => &self.small,
                SimTopology::Large => &self.large,
            };
            let model = SwModel::try_new(self.spec, topo, params, scenario)
                .expect("base params validated before planning; scaling keeps them in range");
            [
                model.cp_availability(),
                model.shared_dp_availability(),
                model.host_dp_availability(),
            ]
        })
    }

    fn eval(&self, item: &WorkItem) -> Result<ItemOutput, GridError> {
        match item {
            WorkItem::Fig3Point { a_c } => {
                let key = SubModelKey::Hw {
                    a_c_bits: a_c.to_bits(),
                };
                let [small, medium, large] = self.graph.get_or_compute(self.hw_fp, key, || {
                    let p = self.hw_base.with_a_c(*a_c);
                    let avail = |topo: &Topology| {
                        HwModel::try_new(self.spec, topo, p)
                            .expect("base params validated before planning")
                            .availability()
                    };
                    [avail(&self.small), avail(&self.medium), avail(&self.large)]
                });
                Ok(ItemOutput::Fig3(Fig3Row {
                    a_c: *a_c,
                    small,
                    medium,
                    large,
                }))
            }
            WorkItem::SwPoint { figure, x } => {
                // Fig. 4 reads the CP availability (triple slot 0), Fig. 5
                // the per-host DP availability (slot 2).
                let slot = if *figure == Figure::Fig4 { 0 } else { 2 };
                let pick = |which, scenario| self.sw_triple(which, scenario, *x)[slot];
                Ok(ItemOutput::Sw(
                    *figure,
                    SwSweepRow {
                        x: *x,
                        a: self.sw_base.scale_process_downtime(-x).process.auto,
                        small_no_sup: pick(SimTopology::Small, Scenario::SupervisorNotRequired),
                        small_sup: pick(SimTopology::Small, Scenario::SupervisorRequired),
                        large_no_sup: pick(SimTopology::Large, Scenario::SupervisorNotRequired),
                        large_sup: pick(SimTopology::Large, Scenario::SupervisorRequired),
                    },
                ))
            }
            WorkItem::SimPoint {
                x,
                topology,
                scenario,
            } => self.eval_sim(item, *x, *topology, *scenario),
            WorkItem::ChaosPoint {
                crew_count,
                ccf_probability,
                topology,
            } => self.eval_chaos(item, *crew_count, *ccf_probability, *topology),
            WorkItem::ConsensusPoint {
                election_timeout_ms,
                cluster_size,
                fault_mix,
            } => self.eval_consensus(item, *election_timeout_ms, *cluster_size, *fault_mix),
        }
    }

    fn eval_consensus(
        &self,
        item: &WorkItem,
        election_timeout_ms: f64,
        cluster_size: u32,
        fault_mix: FaultMix,
    ) -> Result<ItemOutput, GridError> {
        let base = self
            .grid
            .consensus
            .as_ref()
            .expect("consensus items are only planned when a base spec is set");
        // Re-parameterize the base spec to this cell's coordinates: the
        // timeout axis re-anchors the latency distribution's floor at the
        // cell's value (preserving its shape — width for uniform, offsets
        // for empirical tables), the other axes replace their fields.
        let mut consensus = base.clone();
        consensus.election_latency = base.election_latency.with_floor_ms(election_timeout_ms);
        consensus.cluster_size = cluster_size;
        consensus.fault_mix = fault_mix;
        let quorum = consensus.quorum();

        // Node failure rates accelerate exactly like the simulation cells',
        // so short smoke horizons still see failovers.
        let defaults = ConsensusParams::paper_defaults();
        let params = ConsensusParams {
            node_mtbf_hours: defaults.node_mtbf_hours / self.grid.sim_accelerate,
            node_mttr_hours: defaults.node_mttr_hours,
            horizon_hours: self.grid.sim_horizon_hours,
        };
        let sim = ConsensusSim::try_new(consensus.clone(), params)
            .map_err(|e| GridError::Consensus(e.to_string()))?;
        let ctmc_availability = sdnav_consensus::ctmc_availability(&consensus, &params)
            .map_err(|e| GridError::Consensus(e.to_string()))?;

        // Like chaos cells, a replications=0 grid still runs one DES
        // replication per cell: the consensus axes are the point.
        let replications = self.grid.replications.max(1);
        let base_seed = item_seed(self.grid.seed, item);
        let mut availability = Welford::new();
        let mut election_fraction = 0.0;
        let mut stall_fraction = 0.0;
        let mut elections = 0u64;
        for r in 0..replications {
            let outcome = sim.run(base_seed.wrapping_add(r as u64));
            availability.push(outcome.availability);
            election_fraction += outcome.election_fraction;
            stall_fraction += outcome.stall_fraction;
            elections += outcome.elections;
        }

        let n = replications as f64;
        Ok(ItemOutput::Consensus(ConsensusRow {
            election_timeout_ms,
            cluster_size,
            byzantine: fault_mix.byzantine,
            crash: fault_mix.crash,
            quorum,
            replications,
            availability: availability.estimate(),
            election_fraction_mean: election_fraction / n,
            stall_fraction_mean: stall_fraction / n,
            elections,
            ctmc_availability,
        }))
    }

    fn eval_chaos(
        &self,
        item: &WorkItem,
        crew_count: usize,
        ccf_probability: f64,
        topology: SimTopology,
    ) -> Result<ItemOutput, GridError> {
        let base = self
            .grid
            .chaos_campaign
            .as_ref()
            .expect("chaos items are only planned when a campaign is set");
        // Re-parameterize the base campaign to this cell's coordinates: the
        // crew axis replaces the pool size (keeping the declared discipline)
        // and the probability axis overrides every common-cause group.
        let mut campaign = base.clone();
        let discipline = campaign
            .crews
            .as_ref()
            .map_or(CrewDiscipline::Fifo, |c| c.discipline);
        campaign.crews = Some(CrewSpec {
            count: crew_count,
            discipline,
        });
        for injection in &mut campaign.injections {
            if let InjectionKind::CommonCause { probability, .. } = &mut injection.kind {
                *probability = ccf_probability;
            }
        }

        let config = SimConfig::builder(Scenario::SupervisorNotRequired)
            .horizon_hours(self.grid.sim_horizon_hours)
            .compute_hosts(self.grid.sim_compute_hosts)
            .accelerate(self.grid.sim_accelerate)
            .build()?;
        let topo = match topology {
            SimTopology::Small => &self.small,
            SimTopology::Large => &self.large,
        };
        let sim = Simulation::try_new(self.spec, topo, config)?;
        let plan = sdnav_chaos::compile(&campaign, &sim)
            .map_err(|e| GridError::Campaign(e.to_string()))?;

        // Even a replications=0 grid runs one chaos replication per cell:
        // the campaign axes are the point of a chaos sweep, not an add-on
        // to the figure replications.
        let replications = self.grid.replications.max(1);
        let base_seed = item_seed(self.grid.seed, item);
        let mut cp = Welford::new();
        let mut dp = Welford::new();
        let mut events = 0u64;
        let mut injected_events = 0u64;
        let mut revealed_latents = 0u64;
        let mut injected_hours = 0.0;
        let mut organic_hours = 0.0;
        for r in 0..replications {
            let result = sim.run_injected(base_seed.wrapping_add(r as u64), &plan);
            cp.push(result.cp_availability);
            dp.push(result.dp_availability);
            events += result.events;
            if let Some(ledger) = &result.ledger {
                injected_events += ledger.injected_events;
                revealed_latents += ledger.revealed_latents;
                let by_cause = ledger.cp_hours_by_cause();
                organic_hours += by_cause[0];
                injected_hours += by_cause[1..].iter().fold(0.0, |acc, h| acc + h);
            }
        }

        let n = replications as f64;
        Ok(ItemOutput::Chaos(ChaosRow {
            crew_count,
            ccf_probability,
            topology: topology.name(),
            replications,
            cp: cp.estimate(),
            dp: dp.estimate(),
            injected_cp_hours_mean: injected_hours / n,
            organic_cp_hours_mean: organic_hours / n,
            injected_events,
            revealed_latents,
            events,
        }))
    }

    fn eval_sim(
        &self,
        item: &WorkItem,
        x: f64,
        topology: SimTopology,
        scenario: Scenario,
    ) -> Result<ItemOutput, GridError> {
        // Map the figures' x-axis onto restart times: scale each process
        // unavailability by 10^(−x) at the paper's fixed F, so the
        // simulated cells line up with the analytic sweep positions.
        let defaults = SimConfig::paper_defaults(scenario);
        let f_mtbf = defaults.process_mtbf;
        let restart_for = |restart: f64| {
            let u = restart / (f_mtbf + restart) * 10f64.powf(-x);
            f_mtbf * u / (1.0 - u)
        };
        let config = SimConfig::builder(scenario)
            .auto_restart(restart_for(defaults.auto_restart))
            .manual_restart(restart_for(defaults.manual_restart))
            .horizon_hours(self.grid.sim_horizon_hours)
            .compute_hosts(self.grid.sim_compute_hosts)
            .accelerate(self.grid.sim_accelerate)
            .build()?;
        let topo = match topology {
            SimTopology::Small => &self.small,
            SimTopology::Large => &self.large,
        };
        let sim = Simulation::try_new(self.spec, topo, config)?;

        // Replications run sequentially inside the item with seeds derived
        // from the item's identity — the stream (and thus every byte of the
        // estimates) is independent of scheduling.
        let base_seed = item_seed(self.grid.seed, item);
        let mut cp = Welford::new();
        let mut dp = Welford::new();
        let mut events = 0u64;
        for r in 0..self.grid.replications {
            let result = sim.run(base_seed.wrapping_add(r as u64));
            cp.push(result.cp_availability);
            dp.push(result.dp_availability);
            events += result.events;
        }

        // Analytic reference at the rates the simulator actually ran
        // (acceleration changes the implied availabilities, so this is not
        // the same evaluation as the figures' x-keyed cache entries).
        let analytic = SwModel::try_new(self.spec, topo, config.analytic_params(), scenario)?;

        Ok(ItemOutput::Sim(SimRow {
            x,
            topology: topology.name(),
            supervisor_required: scenario == Scenario::SupervisorRequired,
            replications: self.grid.replications,
            cp: cp.estimate(),
            dp: dp.estimate(),
            events,
            analytic_cp: analytic.cp_availability(),
            analytic_dp: analytic.host_dp_availability(),
        }))
    }
}

/// Resolves the worker-thread count (0 = one per available CPU).
fn resolve_threads(grid: &GridSpec) -> usize {
    if grid.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        grid.threads
    }
}

/// Expands the grid into the canonical work-item order (figures, sim
/// cells, then chaos cells).
fn build_items(grid: &GridSpec) -> Vec<WorkItem> {
    let mut items = plan_items(&grid.figures, grid.points, grid.replications);
    if grid.chaos_campaign.is_some() {
        items.extend(plan_chaos_items(
            &grid.chaos_crew_counts,
            &grid.chaos_ccf_probabilities,
        ));
    }
    if grid.consensus.is_some() {
        items.extend(plan_consensus_items(
            &grid.consensus_election_timeouts_ms,
            &grid.consensus_cluster_sizes,
            &grid.consensus_fault_mixes,
        ));
    }
    items
}

/// Validates the base parameter sets and assembles the shared evaluation
/// context, fingerprinting the state's HW and SW domains.
fn build_ctx<'a>(
    state: &'a ModelState,
    grid: &'a GridSpec,
    graph: &'a EvalGraph,
) -> Result<EvalCtx<'a>, GridError> {
    state.hw.try_validate()?;
    state.sw.try_validate()?;
    let spec = &state.spec;
    Ok(EvalCtx {
        spec,
        small: Topology::small(spec),
        medium: Topology::medium(spec),
        large: Topology::large(spec),
        hw_base: state.hw,
        sw_base: state.sw,
        hw_fp: state.hw_domain(),
        sw_fp: state.sw_domain(),
        grid,
        graph,
    })
}

/// Folds one item output into the result tables (outputs must arrive in
/// plan order).
fn fold_output(results: &mut GridResults, sim_events: &mut u64, output: ItemOutput) {
    match output {
        ItemOutput::Fig3(row) => results.fig3.push(row),
        ItemOutput::Sw(Figure::Fig4, row) => results.fig4.push(row),
        ItemOutput::Sw(_, row) => results.fig5.push(row),
        ItemOutput::Sim(row) => {
            *sim_events += row.events;
            results.sim.push(row);
        }
        ItemOutput::Chaos(row) => {
            *sim_events += row.events;
            results.chaos.push(row);
        }
        ItemOutput::Consensus(row) => results.consensus.push(row),
    }
}

/// Evaluates a grid: plans the items, executes them on the pool, and
/// aggregates results in plan order.
///
/// This is the plain complete-or-error evaluator: a panicking item unwinds
/// through the pool. Long-running or interruption-tolerant callers should
/// use [`evaluate_supervised`] instead, which isolates panics, journals a
/// checkpoint, and emits partial results on shutdown. Service callers that
/// want cross-request memoization use [`evaluate_incremental`] with a
/// long-lived [`EvalGraph`]; this entry point is the one-shot special
/// case (paper-default parameters, fresh graph) and produces byte-identical
/// results to it.
///
/// # Errors
///
/// Returns the first [`GridError`] encountered (in plan order, regardless
/// of execution order).
pub fn evaluate(spec: &ControllerSpec, grid: &GridSpec) -> Result<GridOutcome, GridError> {
    let state = ModelState::paper(spec.clone());
    let graph = EvalGraph::new();
    evaluate_incremental(&state, grid, &graph)
}

/// Evaluates a grid against `state`, memoizing sub-models in `graph`
/// across calls.
///
/// Sub-model entries are addressed by `(domain fingerprint, key)`, so a
/// graph can be reused across requests and across [`ModelState::patch`]
/// edits: only sub-models whose domain actually changed recompute, and a
/// warm evaluation is byte-identical to a cold one at any thread count —
/// entries key on f64 bit patterns, so a hit can never change a result
/// byte. Metrics report this run's hit/miss deltas, not the graph's
/// lifetime totals; concurrent runs sharing one graph would interleave
/// deltas, so callers serialize evaluations per graph.
///
/// # Errors
///
/// Returns the first [`GridError`] encountered (in plan order, regardless
/// of execution order).
pub fn evaluate_incremental(
    state: &ModelState,
    grid: &GridSpec,
    graph: &EvalGraph,
) -> Result<GridOutcome, GridError> {
    let threads = resolve_threads(grid);
    let (hits0, misses0) = (graph.hits(), graph.misses());

    let plan_start = Instant::now(); // detlint::allow(DL002): stage timing feeds the stderr metrics channel, never results
    let items = build_items(grid);
    let ctx = build_ctx(state, grid, graph)?;
    let plan_ms = plan_start.elapsed().as_secs_f64() * 1e3;

    let execute_start = Instant::now(); // detlint::allow(DL002): stage timing feeds the stderr metrics channel, never results
    let (outputs, stats) = pool::execute(threads, &items, |_, item| ctx.eval(item));
    let execute_ms = execute_start.elapsed().as_secs_f64() * 1e3;

    let aggregate_start = Instant::now(); // detlint::allow(DL002): stage timing feeds the stderr metrics channel, never results
    let mut results = GridResults::default();
    let mut sim_events = 0u64;
    for output in outputs {
        fold_output(&mut results, &mut sim_events, output?);
    }
    let aggregate_ms = aggregate_start.elapsed().as_secs_f64() * 1e3;

    let metrics = RunMetrics {
        threads: stats.workers,
        items: items.len(),
        stages: StageTimings {
            plan_ms,
            execute_ms,
            aggregate_ms,
        },
        items_per_sec: if execute_ms > 0.0 {
            items.len() as f64 / (execute_ms / 1e3)
        } else {
            0.0
        },
        cache_hits: graph.hits() - hits0,
        cache_misses: graph.misses() - misses0,
        steals: stats.steals,
        sim_replications: (results.sim.len() * grid.replications) as u64
            + results
                .chaos
                .iter()
                .map(|row| row.replications as u64)
                .sum::<u64>()
            + results
                .consensus
                .iter()
                .map(|row| row.replications as u64)
                .sum::<u64>(),
        sim_events,
        retries: 0,
        quarantined: 0,
        restored: 0,
    };
    Ok(GridOutcome { results, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnav_chaos::{InjectionSpec, TargetRef};

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    /// A rack-CCF campaign valid on both the Small and Large topologies.
    fn ccf_campaign() -> ChaosSpec {
        ChaosSpec {
            name: "grid-rack-ccf".into(),
            seed: 3,
            crews: None,
            injections: vec![InjectionSpec {
                label: "rack-ccf".into(),
                kind: InjectionKind::CommonCause {
                    trigger: TargetRef::Rack(0),
                    members: vec![TargetRef::Host(0), TargetRef::Host(1)],
                    probability: 0.5,
                    repair_hours: Some(8.0),
                },
                at: 500.0,
                every: Some(1_000.0),
            }],
        }
    }

    fn chaos_grid(threads: usize) -> GridSpec {
        GridSpec::builder()
            .figures(&[Figure::Fig3])
            .points(2)
            .replications(2)
            .threads(threads)
            .sim_horizon_hours(5_000.0)
            .sim_accelerate(500.0)
            .sim_compute_hosts(2)
            .chaos_campaign(ccf_campaign())
            .chaos_crew_counts(&[1, 2])
            .chaos_ccf_probabilities(&[0.0, 1.0])
            .build()
            .unwrap()
    }

    fn sim_grid(threads: usize) -> GridSpec {
        GridSpec::builder()
            .points(3)
            .replications(2)
            .threads(threads)
            .sim_horizon_hours(5_000.0)
            .sim_accelerate(500.0)
            .sim_compute_hosts(2)
            .build()
            .unwrap()
    }

    #[test]
    fn grid_rows_match_core_sweeps_exactly() {
        let s = spec();
        let grid = GridSpec::builder().points(7).threads(2).build().unwrap();
        let outcome = evaluate(&s, &grid).unwrap();
        let fig3 = sdnav_core::sweep::fig3(&s, HwParams::paper_defaults(), 7);
        let fig4 = sdnav_core::sweep::fig4(&s, SwParams::paper_defaults(), 7);
        let fig5 = sdnav_core::sweep::fig5(&s, SwParams::paper_defaults(), 7);
        assert_eq!(outcome.results.fig3, fig3);
        assert_eq!(outcome.results.fig4, fig4);
        assert_eq!(outcome.results.fig5, fig5);
        assert!(outcome.results.sim.is_empty());
    }

    #[test]
    fn results_are_byte_identical_across_thread_counts() {
        let s = spec();
        let reference = sdnav_json::to_string(&evaluate(&s, &sim_grid(1)).unwrap().results);
        for threads in [2, 8] {
            let json = sdnav_json::to_string(&evaluate(&s, &sim_grid(threads)).unwrap().results);
            assert_eq!(json, reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn fig4_fig5_share_cached_sub_models() {
        let s = spec();
        let grid = GridSpec::builder()
            .figures(&[Figure::Fig4, Figure::Fig5])
            .points(5)
            .threads(1)
            .build()
            .unwrap();
        let outcome = evaluate(&s, &grid).unwrap();
        // Each x-point needs 4 (topology, scenario) triples; whichever
        // figure computes them first, the other's 4 lookups all hit.
        assert_eq!(outcome.metrics.cache_misses, 4 * 5);
        assert_eq!(outcome.metrics.cache_hits, 4 * 5);
    }

    #[test]
    fn incremental_sw_patch_recomputes_strictly_fewer_sub_models() {
        let s = spec();
        let grid = GridSpec::builder().points(5).threads(1).build().unwrap();
        let graph = EvalGraph::new();
        let mut state = ModelState::paper(s);

        let cold = evaluate_incremental(&state, &grid, &graph).unwrap();
        // 5 HW points + 4 (topology, scenario) triples × 5 x-points.
        assert_eq!(cold.metrics.cache_misses, 5 + 4 * 5);

        state.patch("sw.process.manual", 0.9997).unwrap();
        let dropped = graph.retain_domains(&[state.hw_domain(), state.sw_domain()]);
        assert_eq!(dropped, 4 * 5, "only the SW domain entries invalidate");

        let warm = evaluate_incremental(&state, &grid, &graph).unwrap();
        // Every HW entry survives the patch and hits; only SW recomputes.
        assert_eq!(warm.metrics.cache_misses, 4 * 5);
        assert!(warm.metrics.cache_misses < cold.metrics.cache_misses);
        assert_eq!(warm.results.fig3, cold.results.fig3);
        assert_ne!(warm.results.fig4, cold.results.fig4);
    }

    #[test]
    fn incremental_hw_patch_leaves_sw_entries_live() {
        let s = spec();
        let grid = GridSpec::builder().points(3).threads(1).build().unwrap();
        let graph = EvalGraph::new();
        let mut state = ModelState::paper(s);
        evaluate_incremental(&state, &grid, &graph).unwrap();

        state.patch("hw.a_c", 0.999).unwrap();
        let dropped = graph.retain_domains(&[state.hw_domain(), state.sw_domain()]);
        assert_eq!(dropped, 3, "only the HW domain entries invalidate");

        let warm = evaluate_incremental(&state, &grid, &graph).unwrap();
        assert_eq!(warm.metrics.cache_misses, 3);
        assert_eq!(warm.metrics.cache_hits, 4 * 3 + 4 * 3);
    }

    #[test]
    fn warm_incremental_results_match_a_cold_eval_byte_for_byte() {
        let s = spec();
        let grid = |threads| {
            GridSpec::builder()
                .points(4)
                .threads(threads)
                .build()
                .unwrap()
        };
        let graph = EvalGraph::new();
        let mut state = ModelState::paper(s);
        evaluate_incremental(&state, &grid(1), &graph).unwrap();
        state.patch("sw.a_h", 0.9998).unwrap();
        graph.retain_domains(&[state.hw_domain(), state.sw_domain()]);

        // A cold evaluation of the patched state, fresh graph.
        let cold = evaluate_incremental(&state, &grid(1), &EvalGraph::new()).unwrap();
        let reference = sdnav_json::to_string(&cold.results);
        // Warm evaluations on the shared graph must reproduce it exactly,
        // at any thread count.
        for threads in [1, 2, 8] {
            let warm = evaluate_incremental(&state, &grid(threads), &graph).unwrap();
            let json = sdnav_json::to_string(&warm.results);
            assert_eq!(json, reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn validate_matches_builder_checks() {
        let mut grid = GridSpec::builder().build().unwrap();
        assert!(grid.validate().is_ok());
        grid.points = 0;
        assert_eq!(
            grid.validate().unwrap_err(),
            GridError::Spec("points must be at least 1")
        );
    }

    #[test]
    fn sim_rows_track_their_analytic_reference() {
        let s = spec();
        let outcome = evaluate(&s, &sim_grid(0)).unwrap();
        assert_eq!(outcome.results.sim.len(), 3 * 2 * 2);
        for row in &outcome.results.sim {
            assert_eq!(row.replications, 2);
            assert!(row.events > 0);
            // Loose sanity bound: accelerated short runs are noisy, but the
            // simulated CP availability must live in the same regime as the
            // analytic prediction.
            assert!(
                (row.cp.mean - row.analytic_cp).abs() < 0.05,
                "x={} {} sup={}: sim {} vs analytic {}",
                row.x,
                row.topology,
                row.supervisor_required,
                row.cp.mean,
                row.analytic_cp
            );
        }
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert_eq!(
            GridSpec::builder().points(0).build().unwrap_err(),
            GridError::Spec("points must be at least 1")
        );
        assert_eq!(
            GridSpec::builder().figures(&[]).build().unwrap_err(),
            GridError::Spec("at least one figure is required")
        );
        assert_eq!(
            GridSpec::builder().sim_accelerate(0.0).build().unwrap_err(),
            GridError::Spec("simulation acceleration must be positive")
        );
        assert_eq!(
            GridSpec::builder()
                .sim_compute_hosts(0)
                .build()
                .unwrap_err(),
            GridError::Spec("need at least one simulated compute host")
        );
    }

    #[test]
    fn chaos_axes_produce_attributed_rows() {
        let s = spec();
        let outcome = evaluate(&s, &chaos_grid(2)).unwrap();
        // 2 crew counts × 2 probabilities × 2 topologies.
        assert_eq!(outcome.results.chaos.len(), 8);
        for row in &outcome.results.chaos {
            assert_eq!(row.replications, 2);
            assert!(row.events > 0);
            // The trigger rack always fails, so every cell injects events.
            assert!(row.injected_events > 0, "cell injected nothing: {row:?}");
            assert!(row.cp.mean > 0.0 && row.cp.mean <= 1.0);
        }
        // p=1.0 takes the correlated hosts down with the rack; p=0.0 only
        // the trigger. More injected events at p=1.0 for the same seeds.
        let events_at = |p: f64| {
            outcome
                .results
                .chaos
                .iter()
                .filter(|r| r.ccf_probability == p)
                .map(|r| r.injected_events)
                .sum::<u64>()
        };
        assert!(events_at(1.0) > events_at(0.0));
        let json = sdnav_json::to_string(&outcome.results);
        assert!(json.contains("\"chaos\""));
        assert!(json.contains("\"injected_cp_hours_mean\""));
    }

    #[test]
    fn chaos_rows_are_byte_identical_across_thread_counts() {
        let s = spec();
        let reference = sdnav_json::to_string(&evaluate(&s, &chaos_grid(1)).unwrap().results);
        for threads in [2, 8] {
            let json = sdnav_json::to_string(&evaluate(&s, &chaos_grid(threads)).unwrap().results);
            assert_eq!(json, reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn chaos_cells_run_even_without_figure_replications() {
        let s = spec();
        let grid = GridSpec::builder()
            .figures(&[Figure::Fig3])
            .points(2)
            .threads(1)
            .sim_horizon_hours(2_000.0)
            .sim_accelerate(500.0)
            .chaos_campaign(ccf_campaign())
            .chaos_crew_counts(&[1])
            .chaos_ccf_probabilities(&[1.0])
            .build()
            .unwrap();
        let outcome = evaluate(&s, &grid).unwrap();
        assert!(outcome.results.sim.is_empty());
        assert_eq!(outcome.results.chaos.len(), 2);
        for row in &outcome.results.chaos {
            assert_eq!(row.replications, 1);
        }
    }

    #[test]
    fn builder_rejects_bad_chaos_axes() {
        assert_eq!(
            GridSpec::builder()
                .chaos_campaign(ccf_campaign())
                .chaos_crew_counts(&[])
                .build()
                .unwrap_err(),
            GridError::Spec("chaos crew counts must be non-empty and positive")
        );
        assert_eq!(
            GridSpec::builder()
                .chaos_campaign(ccf_campaign())
                .chaos_ccf_probabilities(&[0.5, 1.5])
                .build()
                .unwrap_err(),
            GridError::Spec("chaos probabilities must be non-empty and in [0, 1]")
        );
        let mut broken = ccf_campaign();
        broken.name.clear();
        assert_eq!(
            GridSpec::builder()
                .chaos_campaign(broken)
                .build()
                .unwrap_err(),
            GridError::Spec("chaos campaign fails validation")
        );
        // Bad axes are fine while no campaign is set.
        assert!(GridSpec::builder().chaos_crew_counts(&[]).build().is_ok());
    }

    fn consensus_grid(threads: usize) -> GridSpec {
        GridSpec::builder()
            .figures(&[Figure::Fig3])
            .points(2)
            .replications(2)
            .threads(threads)
            .sim_horizon_hours(5_000.0)
            .sim_accelerate(500.0)
            .consensus(sdnav_core::ConsensusSpec::raft_defaults())
            .consensus_election_timeouts_ms(&[150.0, 600.0])
            .consensus_cluster_sizes(&[3, 5])
            .consensus_fault_mixes(&[FaultMix::crash_only(1)])
            .build()
            .unwrap()
    }

    #[test]
    fn consensus_axes_produce_cross_validated_rows() {
        let s = spec();
        let outcome = evaluate(&s, &consensus_grid(2)).unwrap();
        // 2 timeouts × 2 cluster sizes × 1 mix.
        assert_eq!(outcome.results.consensus.len(), 4);
        for row in &outcome.results.consensus {
            assert_eq!(row.replications, 2);
            assert!(row.elections > 0, "no failovers in {row:?}");
            // 500× acceleration drops node availability to 0.8, so the
            // cluster lives near 0.9 — loose regime bound only.
            assert!(row.availability.mean > 0.5 && row.availability.mean <= 1.0);
            // DES and CTMC live in the same availability regime.
            assert!(
                (row.availability.mean - row.ctmc_availability).abs() < 0.05,
                "DES {} vs CTMC {} diverged",
                row.availability.mean,
                row.ctmc_availability
            );
        }
        // Larger clusters with the same mix ride out more failures.
        let mean_at = |size: u32| {
            let rows: Vec<_> = outcome
                .results
                .consensus
                .iter()
                .filter(|r| r.cluster_size == size)
                .collect();
            rows.iter().map(|r| r.availability.mean).sum::<f64>() / rows.len() as f64
        };
        assert!(mean_at(5) > mean_at(3));
        let json = sdnav_json::to_string(&outcome.results);
        assert!(json.contains("\"consensus\""));
        assert!(json.contains("\"ctmc_availability\""));
    }

    #[test]
    fn consensus_rows_are_byte_identical_across_thread_counts() {
        let s = spec();
        let reference = sdnav_json::to_string(&evaluate(&s, &consensus_grid(1)).unwrap().results);
        for threads in [2, 8] {
            let json =
                sdnav_json::to_string(&evaluate(&s, &consensus_grid(threads)).unwrap().results);
            assert_eq!(json, reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn no_consensus_base_means_no_consensus_key_in_json() {
        let s = spec();
        let grid = GridSpec::builder().points(2).threads(1).build().unwrap();
        let outcome = evaluate(&s, &grid).unwrap();
        assert!(outcome.results.consensus.is_empty());
        let json = sdnav_json::to_string(&outcome.results);
        assert!(
            !json.contains("\"consensus\""),
            "empty consensus axes must not add a key: {json}"
        );
    }

    #[test]
    fn builder_rejects_bad_consensus_axes() {
        let base = sdnav_core::ConsensusSpec::raft_defaults();
        assert_eq!(
            GridSpec::builder()
                .consensus(base.clone())
                .consensus_election_timeouts_ms(&[])
                .build()
                .unwrap_err(),
            GridError::Spec("consensus election timeouts must be non-empty, finite, and positive")
        );
        assert_eq!(
            GridSpec::builder()
                .consensus(base.clone())
                .consensus_cluster_sizes(&[3, 0])
                .build()
                .unwrap_err(),
            GridError::Spec("consensus cluster sizes must be non-empty and positive")
        );
        assert_eq!(
            GridSpec::builder()
                .consensus(base.clone())
                .consensus_fault_mixes(&[])
                .build()
                .unwrap_err(),
            GridError::Spec("consensus fault mixes must be non-empty")
        );
        let mut broken = base;
        broken.cluster_size = 0;
        assert_eq!(
            GridSpec::builder().consensus(broken).build().unwrap_err(),
            GridError::Spec("consensus base spec fails validation")
        );
        // Bad axes are fine while no base spec is set.
        assert!(GridSpec::builder()
            .consensus_fault_mixes(&[])
            .build()
            .is_ok());
    }

    #[test]
    fn figures_deduplicate_but_keep_order() {
        let grid = GridSpec::builder()
            .figures(&[Figure::Fig5, Figure::Fig3, Figure::Fig5])
            .build()
            .unwrap();
        assert_eq!(grid.figures, vec![Figure::Fig5, Figure::Fig3]);
    }

    #[test]
    fn results_json_carries_schema_and_rows() {
        let s = spec();
        let grid = GridSpec::builder().points(2).threads(1).build().unwrap();
        let outcome = evaluate(&s, &grid).unwrap();
        let json = sdnav_json::to_string(&outcome.results);
        assert!(json.contains("sdnav-sweep-results/v1"));
        assert!(json.contains("\"fig3\""));
        assert!(json.contains("\"a_c\""));
        let metrics_json = sdnav_json::to_string(&outcome.metrics);
        assert!(metrics_json.contains("sdnav-sweep-metrics/v1"));
    }
}
