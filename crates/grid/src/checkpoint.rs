//! Crash-resumable checkpoint WAL for supervised grid runs.
//!
//! Completed work-item outputs are journaled to an append-only write-ahead
//! log so an interrupted sweep (SIGKILL, OOM, power loss) can resume
//! without recomputing finished cells. The format — `sdnav-checkpoint/v1`
//! — is built for exactly that failure model:
//!
//! * **Record framing.** Each record is `[u32 LE payload length]`
//!   `[u32 LE CRC-32 of payload]` `[compact JSON payload]`, fsync'd after
//!   every append. A record is visible only if its length and checksum
//!   both validate.
//! * **Torn-tail tolerance.** Replay stops at the first record whose
//!   frame is truncated or whose checksum fails; the valid prefix is kept,
//!   the torn tail is truncated away, and appends continue from there.
//! * **Bit-exact payloads.** `f64` values are stored as the hex of their
//!   IEEE-754 bit pattern and `u64` counters as decimal strings, so a
//!   resumed run reproduces *byte-identical* result JSON — the JSON layer
//!   itself (f64-backed numbers) never gets a chance to round anything.
//! * **Identity binding.** The first record is a header carrying a
//!   fingerprint of the controller spec and every result-affecting grid
//!   parameter (not the thread count). Resuming against a checkpoint from
//!   a different spec or grid is refused instead of silently mixing runs.
//! * **Seal records.** Graceful shutdown appends a `seal` record marking
//!   the WAL complete/interrupted. Seals are informational: replay ignores
//!   them, so a sealed-but-partial checkpoint resumes cleanly.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use sdnav_core::sweep::{Fig3Row, SwSweepRow};
use sdnav_core::ControllerSpec;
use sdnav_json::Json;
use sdnav_sim::Estimate;

use crate::plan::{Figure, SimTopology};
use crate::{ChaosRow, ConsensusRow, GridError, GridSpec, ItemOutput, SimRow};

/// Schema tag carried by the WAL header record.
pub const CHECKPOINT_SCHEMA: &str = sdnav_json::schema::CHECKPOINT;

/// Upper bound on a single record payload. Real payloads are a few hundred
/// bytes; the bound lets replay reject a garbage length field immediately
/// instead of attempting a multi-gigabyte read.
const MAX_RECORD_LEN: u32 = 1 << 20;

/// FNV-1a over one byte slice, continuing from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// Fingerprint binding a checkpoint to one (spec, grid) identity.
///
/// Covers the controller spec and every grid parameter that affects result
/// bytes. The thread count is deliberately excluded: results are
/// byte-identical across thread counts, so a checkpoint taken at
/// `--threads 8` must resume at `--threads 1` (and vice versa).
#[must_use]
pub fn fingerprint(spec: &ControllerSpec, grid: &GridSpec) -> u64 {
    let mut ident = String::new();
    ident.push_str(&sdnav_json::to_string(spec));
    ident.push('\n');
    for figure in &grid.figures {
        ident.push_str(figure.name());
        ident.push(',');
    }
    ident.push_str(&format!(
        "|points={}|reps={}|seed={}|horizon={:016x}|accel={:016x}|hosts={}",
        grid.points,
        grid.replications,
        grid.seed,
        grid.sim_horizon_hours.to_bits(),
        grid.sim_accelerate.to_bits(),
        grid.sim_compute_hosts,
    ));
    if let Some(campaign) = &grid.chaos_campaign {
        ident.push_str(&sdnav_json::to_string(campaign));
        for crew in &grid.chaos_crew_counts {
            ident.push_str(&format!("|crew={crew}"));
        }
        for p in &grid.chaos_ccf_probabilities {
            ident.push_str(&format!("|ccf={:016x}", p.to_bits()));
        }
    }
    if let Some(consensus) = &grid.consensus {
        ident.push_str(&sdnav_json::to_string(consensus));
        for t in &grid.consensus_election_timeouts_ms {
            ident.push_str(&format!("|et={:016x}", t.to_bits()));
        }
        for size in &grid.consensus_cluster_sizes {
            ident.push_str(&format!("|cluster={size}"));
        }
        for mix in &grid.consensus_fault_mixes {
            ident.push_str(&format!("|mix={}:{}", mix.byzantine, mix.crash));
        }
    }
    fnv1a(0xCBF2_9CE4_8422_2325, ident.as_bytes())
}

/// CRC-32 (IEEE, reflected) of one byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn ckpt_err(path: &Path, what: impl std::fmt::Display) -> GridError {
    GridError::Checkpoint(format!("checkpoint {}: {what}", path.display()))
}

// ---------------------------------------------------------------------------
// Bit-exact payload codec
// ---------------------------------------------------------------------------

fn enc_f64(v: f64) -> Json {
    Json::str(format!("{:016x}", v.to_bits()))
}

fn enc_u64(v: u64) -> Json {
    Json::str(v.to_string())
}

fn dec_field<'a>(obj: &'a Json, field: &str) -> Result<&'a Json, String> {
    obj.get(field).ok_or_else(|| format!("missing {field:?}"))
}

fn dec_f64(obj: &Json, field: &str) -> Result<f64, String> {
    let text = dec_field(obj, field)?
        .as_str()
        .map_err(|_| format!("{field:?} is not a hex string"))?;
    u64::from_str_radix(text, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("{field:?} has bad hex bits {text:?}"))
}

fn dec_u64(obj: &Json, field: &str) -> Result<u64, String> {
    let text = dec_field(obj, field)?
        .as_str()
        .map_err(|_| format!("{field:?} is not a decimal string"))?;
    text.parse()
        .map_err(|_| format!("{field:?} has bad decimal {text:?}"))
}

fn dec_usize(obj: &Json, field: &str) -> Result<usize, String> {
    usize::try_from(dec_u64(obj, field)?).map_err(|_| format!("{field:?} overflows usize"))
}

fn dec_u32(obj: &Json, field: &str) -> Result<u32, String> {
    u32::try_from(dec_u64(obj, field)?).map_err(|_| format!("{field:?} overflows u32"))
}

fn dec_bool(obj: &Json, field: &str) -> Result<bool, String> {
    dec_field(obj, field)?
        .as_bool()
        .map_err(|_| format!("{field:?} is not a bool"))
}

fn dec_str<'a>(obj: &'a Json, field: &str) -> Result<&'a str, String> {
    dec_field(obj, field)?
        .as_str()
        .map_err(|_| format!("{field:?} is not a string"))
}

/// Maps a journaled topology name back onto the `&'static str` the rows
/// carry (the rows borrow, so the WAL cannot hand them an owned string).
fn static_topology(name: &str) -> Result<&'static str, String> {
    match name {
        "Small" => Ok(SimTopology::Small.name()),
        "Large" => Ok(SimTopology::Large.name()),
        other => Err(format!("unknown topology {other:?}")),
    }
}

fn enc_estimate(e: &Estimate) -> Json {
    Json::obj(vec![
        ("mean", enc_f64(e.mean)),
        ("std_error", enc_f64(e.std_error)),
        ("samples", enc_u64(e.samples as u64)),
    ])
}

fn dec_estimate(obj: &Json, field: &str) -> Result<Estimate, String> {
    let e = dec_field(obj, field)?;
    Ok(Estimate {
        mean: dec_f64(e, "mean")?,
        std_error: dec_f64(e, "std_error")?,
        samples: dec_usize(e, "samples")?,
    })
}

fn encode_output(output: &ItemOutput) -> Json {
    match output {
        ItemOutput::Fig3(row) => Json::obj(vec![
            ("kind", Json::str("fig3")),
            ("a_c", enc_f64(row.a_c)),
            ("small", enc_f64(row.small)),
            ("medium", enc_f64(row.medium)),
            ("large", enc_f64(row.large)),
        ]),
        ItemOutput::Sw(figure, row) => Json::obj(vec![
            ("kind", Json::str("sw")),
            ("figure", Json::str(figure.name())),
            ("x", enc_f64(row.x)),
            ("a", enc_f64(row.a)),
            ("small_no_sup", enc_f64(row.small_no_sup)),
            ("small_sup", enc_f64(row.small_sup)),
            ("large_no_sup", enc_f64(row.large_no_sup)),
            ("large_sup", enc_f64(row.large_sup)),
        ]),
        ItemOutput::Sim(row) => Json::obj(vec![
            ("kind", Json::str("sim")),
            ("x", enc_f64(row.x)),
            ("topology", Json::str(row.topology)),
            ("supervisor_required", Json::Bool(row.supervisor_required)),
            ("replications", enc_u64(row.replications as u64)),
            ("cp", enc_estimate(&row.cp)),
            ("dp", enc_estimate(&row.dp)),
            ("events", enc_u64(row.events)),
            ("analytic_cp", enc_f64(row.analytic_cp)),
            ("analytic_dp", enc_f64(row.analytic_dp)),
        ]),
        ItemOutput::Chaos(row) => Json::obj(vec![
            ("kind", Json::str("chaos")),
            ("crew_count", enc_u64(row.crew_count as u64)),
            ("ccf_probability", enc_f64(row.ccf_probability)),
            ("topology", Json::str(row.topology)),
            ("replications", enc_u64(row.replications as u64)),
            ("cp", enc_estimate(&row.cp)),
            ("dp", enc_estimate(&row.dp)),
            (
                "injected_cp_hours_mean",
                enc_f64(row.injected_cp_hours_mean),
            ),
            ("organic_cp_hours_mean", enc_f64(row.organic_cp_hours_mean)),
            ("injected_events", enc_u64(row.injected_events)),
            ("revealed_latents", enc_u64(row.revealed_latents)),
            ("events", enc_u64(row.events)),
        ]),
        ItemOutput::Consensus(row) => Json::obj(vec![
            ("kind", Json::str("consensus")),
            ("election_timeout_ms", enc_f64(row.election_timeout_ms)),
            ("cluster_size", enc_u64(u64::from(row.cluster_size))),
            ("byzantine", enc_u64(u64::from(row.byzantine))),
            ("crash", enc_u64(u64::from(row.crash))),
            ("quorum", enc_u64(u64::from(row.quorum))),
            ("replications", enc_u64(row.replications as u64)),
            ("availability", enc_estimate(&row.availability)),
            (
                "election_fraction_mean",
                enc_f64(row.election_fraction_mean),
            ),
            ("stall_fraction_mean", enc_f64(row.stall_fraction_mean)),
            ("elections", enc_u64(row.elections)),
            ("ctmc_availability", enc_f64(row.ctmc_availability)),
        ]),
    }
}

fn decode_output(obj: &Json) -> Result<ItemOutput, String> {
    match dec_str(obj, "kind")? {
        "fig3" => Ok(ItemOutput::Fig3(Fig3Row {
            a_c: dec_f64(obj, "a_c")?,
            small: dec_f64(obj, "small")?,
            medium: dec_f64(obj, "medium")?,
            large: dec_f64(obj, "large")?,
        })),
        "sw" => {
            let figure = Figure::parse(dec_str(obj, "figure")?)
                .ok_or_else(|| "unknown figure".to_owned())?;
            Ok(ItemOutput::Sw(
                figure,
                SwSweepRow {
                    x: dec_f64(obj, "x")?,
                    a: dec_f64(obj, "a")?,
                    small_no_sup: dec_f64(obj, "small_no_sup")?,
                    small_sup: dec_f64(obj, "small_sup")?,
                    large_no_sup: dec_f64(obj, "large_no_sup")?,
                    large_sup: dec_f64(obj, "large_sup")?,
                },
            ))
        }
        "sim" => Ok(ItemOutput::Sim(SimRow {
            x: dec_f64(obj, "x")?,
            topology: static_topology(dec_str(obj, "topology")?)?,
            supervisor_required: dec_bool(obj, "supervisor_required")?,
            replications: dec_usize(obj, "replications")?,
            cp: dec_estimate(obj, "cp")?,
            dp: dec_estimate(obj, "dp")?,
            events: dec_u64(obj, "events")?,
            analytic_cp: dec_f64(obj, "analytic_cp")?,
            analytic_dp: dec_f64(obj, "analytic_dp")?,
        })),
        "chaos" => Ok(ItemOutput::Chaos(ChaosRow {
            crew_count: dec_usize(obj, "crew_count")?,
            ccf_probability: dec_f64(obj, "ccf_probability")?,
            topology: static_topology(dec_str(obj, "topology")?)?,
            replications: dec_usize(obj, "replications")?,
            cp: dec_estimate(obj, "cp")?,
            dp: dec_estimate(obj, "dp")?,
            injected_cp_hours_mean: dec_f64(obj, "injected_cp_hours_mean")?,
            organic_cp_hours_mean: dec_f64(obj, "organic_cp_hours_mean")?,
            injected_events: dec_u64(obj, "injected_events")?,
            revealed_latents: dec_u64(obj, "revealed_latents")?,
            events: dec_u64(obj, "events")?,
        })),
        "consensus" => Ok(ItemOutput::Consensus(ConsensusRow {
            election_timeout_ms: dec_f64(obj, "election_timeout_ms")?,
            cluster_size: dec_u32(obj, "cluster_size")?,
            byzantine: dec_u32(obj, "byzantine")?,
            crash: dec_u32(obj, "crash")?,
            quorum: dec_u32(obj, "quorum")?,
            replications: dec_usize(obj, "replications")?,
            availability: dec_estimate(obj, "availability")?,
            election_fraction_mean: dec_f64(obj, "election_fraction_mean")?,
            stall_fraction_mean: dec_f64(obj, "stall_fraction_mean")?,
            elections: dec_u64(obj, "elections")?,
            ctmc_availability: dec_f64(obj, "ctmc_availability")?,
        })),
        other => Err(format!("unknown output kind {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// WAL writer / replay
// ---------------------------------------------------------------------------

/// Append handle over an open checkpoint WAL.
#[derive(Debug)]
pub(crate) struct CheckpointWal {
    file: File,
    path: std::path::PathBuf,
}

impl CheckpointWal {
    /// Creates (truncating) a fresh WAL and writes its header record.
    pub(crate) fn create(path: &Path, fingerprint: u64) -> Result<Self, GridError> {
        let file = File::create(path).map_err(|e| ckpt_err(path, e))?;
        let mut wal = CheckpointWal {
            file,
            path: path.to_path_buf(),
        };
        wal.append_record(&header_payload(fingerprint))?;
        Ok(wal)
    }

    /// Opens an existing WAL, replays its valid record prefix, truncates
    /// any torn tail, and returns the journaled `(index, output)` cells.
    ///
    /// A missing or empty file is treated as a fresh run (a new WAL is
    /// created), so `--resume` is safe on the very first attempt. A header
    /// written by a different (spec, grid) identity is refused.
    pub(crate) fn resume(
        path: &Path,
        fingerprint: u64,
    ) -> Result<(Self, Vec<(usize, ItemOutput)>), GridError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(ckpt_err(path, e)),
        };

        let mut cells = Vec::new();
        let mut offset = 0usize;
        let mut valid_len = 0usize;
        let mut saw_header = false;
        while bytes.len() - offset >= 8 {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
            let crc =
                u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN {
                break; // Garbage length field: torn/corrupt tail.
            }
            let end = offset + 8 + len as usize;
            if end > bytes.len() {
                break; // Truncated payload: torn tail.
            }
            let payload = &bytes[offset + 8..end];
            if crc32(payload) != crc {
                break; // Checksum mismatch: torn or bit-rotted tail.
            }
            // A record that passes its checksum but does not decode is not
            // a torn tail — it is a format mismatch, and recomputing over
            // it could silently shadow real results. Refuse loudly.
            let text = std::str::from_utf8(payload)
                .map_err(|_| ckpt_err(path, "record payload is not UTF-8"))?;
            let record = Json::parse(text)
                .map_err(|e| ckpt_err(path, format!("record payload is not JSON: {e}")))?;
            match dec_str(&record, "type").map_err(|e| ckpt_err(path, e))? {
                "header" => {
                    let schema = dec_str(&record, "schema").map_err(|e| ckpt_err(path, e))?;
                    if schema != CHECKPOINT_SCHEMA {
                        return Err(ckpt_err(path, format!("unsupported schema {schema:?}")));
                    }
                    let stamp = dec_u64(&record, "fingerprint").map_err(|e| ckpt_err(path, e))?;
                    if stamp != fingerprint {
                        return Err(ckpt_err(
                            path,
                            "fingerprint mismatch: checkpoint was written by a different \
                             spec or grid; rerun without --resume to start over",
                        ));
                    }
                    saw_header = true;
                }
                "cell" => {
                    if !saw_header {
                        return Err(ckpt_err(path, "cell record before header"));
                    }
                    let index = dec_usize(&record, "index").map_err(|e| ckpt_err(path, e))?;
                    let output = record
                        .get("output")
                        .ok_or_else(|| ckpt_err(path, "cell record missing output"))
                        .and_then(|o| decode_output(o).map_err(|e| ckpt_err(path, e)))?;
                    cells.push((index, output));
                }
                // Seals are informational; replay past them so a WAL sealed
                // by a graceful shutdown still resumes.
                "seal" => {}
                other => {
                    return Err(ckpt_err(path, format!("unknown record type {other:?}")));
                }
            }
            offset = end;
            valid_len = end;
        }

        if !saw_header {
            // Nothing usable on disk (missing, empty, or torn before the
            // header finished): start a fresh WAL.
            return Ok((CheckpointWal::create(path, fingerprint)?, Vec::new()));
        }

        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| ckpt_err(path, e))?;
        file.set_len(valid_len as u64)
            .map_err(|e| ckpt_err(path, e))?;
        let mut wal = CheckpointWal {
            file,
            path: path.to_path_buf(),
        };
        wal.file
            .seek(SeekFrom::End(0))
            .map_err(|e| ckpt_err(&wal.path, e))?;
        Ok((wal, cells))
    }

    /// Journals one completed cell.
    pub(crate) fn append_cell(
        &mut self,
        index: usize,
        output: &ItemOutput,
    ) -> Result<(), GridError> {
        let payload = Json::obj(vec![
            ("type", Json::str("cell")),
            ("index", enc_u64(index as u64)),
            ("output", encode_output(output)),
        ])
        .to_compact();
        self.append_record(&payload)
    }

    /// Appends the final seal record (`reason` is `complete`,
    /// `interrupted`, or `partial`).
    pub(crate) fn seal(&mut self, reason: &str, cells: u64) -> Result<(), GridError> {
        let payload = Json::obj(vec![
            ("type", Json::str("seal")),
            ("reason", Json::str(reason)),
            ("cells", enc_u64(cells)),
        ])
        .to_compact();
        self.append_record(&payload)
    }

    /// Frames, appends, and fsyncs one record.
    fn append_record(&mut self, payload: &str) -> Result<(), GridError> {
        let bytes = payload.as_bytes();
        let len = u32::try_from(bytes.len())
            .ok()
            .filter(|&l| l <= MAX_RECORD_LEN)
            .ok_or_else(|| ckpt_err(&self.path, "record payload too large"))?;
        let mut frame = Vec::with_capacity(8 + bytes.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        self.file
            .write_all(&frame)
            // Miri's file-system shim has no fsync; durability is a real-OS
            // concern anyway, so skip the sync under the interpreter.
            .and_then(|()| {
                #[cfg(not(miri))]
                return self.file.sync_data();
                #[cfg(miri)]
                Ok(())
            })
            .map_err(|e| ckpt_err(&self.path, e))
    }
}

fn header_payload(fingerprint: u64) -> String {
    Json::obj(vec![
        ("type", Json::str("header")),
        ("schema", Json::str(CHECKPOINT_SCHEMA)),
        ("fingerprint", enc_u64(fingerprint)),
    ])
    .to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "sdnav-ckpt-{tag}-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn sample_output() -> ItemOutput {
        ItemOutput::Sim(SimRow {
            x: -0.1,
            topology: SimTopology::Large.name(),
            supervisor_required: true,
            replications: 1,
            cp: Estimate {
                mean: 0.123_456_789_012_345,
                std_error: f64::NAN,
                samples: 1,
            },
            dp: Estimate {
                mean: 1.0,
                std_error: 0.0,
                samples: 1,
            },
            events: u64::MAX - 3,
            analytic_cp: 0.999_999_999_999_9,
            analytic_dp: -0.0,
        })
    }

    fn row(output: &ItemOutput) -> &SimRow {
        match output {
            ItemOutput::Sim(row) => row,
            _ => panic!("expected sim output"),
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_bit_exactly_including_nan_and_negative_zero() {
        let original = sample_output();
        let decoded = decode_output(&encode_output(&original)).expect("decodes");
        let (a, b) = (row(&original), row(&decoded));
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.cp.mean.to_bits(), b.cp.mean.to_bits());
        assert_eq!(a.cp.std_error.to_bits(), b.cp.std_error.to_bits());
        assert!(b.cp.std_error.is_nan());
        assert_eq!(a.analytic_dp.to_bits(), b.analytic_dp.to_bits());
        assert!(b.analytic_dp.is_sign_negative());
        assert_eq!(a.events, b.events);
        assert_eq!(a.topology, b.topology);
    }

    #[test]
    fn wal_replays_cells_and_ignores_seal() {
        let path = temp_path("replay");
        let mut wal = CheckpointWal::create(&path, 42).unwrap();
        wal.append_cell(5, &sample_output()).unwrap();
        wal.seal("interrupted", 1).unwrap();
        drop(wal);
        let (_wal, cells) = CheckpointWal::resume(&path, 42).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = temp_path("torn");
        let mut wal = CheckpointWal::create(&path, 7).unwrap();
        wal.append_cell(0, &sample_output()).unwrap();
        drop(wal);
        let clean_len = std::fs::metadata(&path).unwrap().len();

        // A crash mid-append leaves a torn record: garbage frame bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
        std::fs::write(&path, &bytes).unwrap();

        let (mut wal, cells) = CheckpointWal::resume(&path, 7).unwrap();
        assert_eq!(cells.len(), 1, "valid prefix survives the torn tail");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // And the truncated WAL accepts appends again.
        wal.append_cell(1, &sample_output()).unwrap();
        drop(wal);
        let (_wal, cells) = CheckpointWal::resume(&path, 7).unwrap();
        assert_eq!(cells.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_payload_recovers_valid_prefix() {
        let path = temp_path("chop");
        let mut wal = CheckpointWal::create(&path, 7).unwrap();
        wal.append_cell(0, &sample_output()).unwrap();
        wal.append_cell(1, &sample_output()).unwrap();
        drop(wal);
        // Chop into the last record's payload (a torn write).
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (_wal, cells) = CheckpointWal::resume(&path, 7).unwrap();
        assert_eq!(cells.len(), 1, "only the intact record replays");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_checksum_stops_replay() {
        let path = temp_path("flip");
        let mut wal = CheckpointWal::create(&path, 7).unwrap();
        wal.append_cell(0, &sample_output()).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // Flip a payload byte of the last record.
        std::fs::write(&path, &bytes).unwrap();
        let (_wal, cells) = CheckpointWal::resume(&path, 7).unwrap();
        assert!(cells.is_empty(), "corrupt record must not replay");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = temp_path("fp");
        drop(CheckpointWal::create(&path, 1).unwrap());
        let err = CheckpointWal::resume(&path, 2).unwrap_err();
        assert!(matches!(err, GridError::Checkpoint(_)));
        assert!(err.to_string().contains("fingerprint mismatch"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_resumes_as_fresh_run() {
        let path = temp_path("fresh");
        std::fs::remove_file(&path).ok();
        let (_wal, cells) = CheckpointWal::resume(&path, 9).unwrap();
        assert!(cells.is_empty());
        // The fresh WAL is immediately resumable.
        let (_wal, cells) = CheckpointWal::resume(&path, 9).unwrap();
        assert!(cells.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_seed() {
        let spec = ControllerSpec::opencontrail_3x();
        let base = GridSpec::builder().build().unwrap();
        let mut threaded = base.clone();
        threaded.threads = 8;
        assert_eq!(fingerprint(&spec, &base), fingerprint(&spec, &threaded));
        let mut reseeded = base.clone();
        reseeded.seed = base.seed + 1;
        assert_ne!(fingerprint(&spec, &base), fingerprint(&spec, &reseeded));
    }
}
