//! Structured quarantine reporting for supervised execution.
//!
//! A work item whose evaluation panics is retried (see
//! [`crate::supervise::RetryPolicy`]); once the retry budget is exhausted
//! the item is *quarantined* — recorded here with enough identity (plan
//! index, human label, derived seed) to replay it in isolation — and the
//! pool keeps running. The report serializes as `sdnav-quarantine/v1`.

use sdnav_json::{Json, ToJson};

/// One work item that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Position of the item in the canonical plan order.
    pub index: usize,
    /// Human-readable identity of the item (its grid coordinates).
    pub label: String,
    /// The identity-derived RNG seed the item ran with, for replay.
    pub seed: u64,
    /// Total execution attempts, including the first.
    pub attempts: u32,
    /// Panic payload of the final attempt (when it was a string).
    pub panic_message: String,
}

impl ToJson for QuarantineRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("index", Json::Num(self.index as f64)),
            ("item", Json::str(&self.label)),
            // Seeds use the full u64 range; serialize as a decimal string
            // so the f64-backed JSON layer cannot round them.
            ("seed", Json::str(self.seed.to_string())),
            ("attempts", Json::Num(f64::from(self.attempts))),
            ("panic_message", Json::str(&self.panic_message)),
        ])
    }
}

/// Every quarantined item of one supervised run.
///
/// Serialized as `sdnav-quarantine/v1`. An empty report means the run
/// needed no quarantine at all (it is still produced, so callers can gate
/// on [`QuarantineReport::is_empty`] rather than an `Option`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Quarantined items in plan order.
    pub records: Vec<QuarantineRecord>,
}

impl QuarantineReport {
    /// Whether no item was quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of quarantined items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }
}

impl ToJson for QuarantineReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str(sdnav_json::schema::QUARANTINE)),
            ("quarantined", Json::Num(self.records.len() as f64)),
            (
                "cells",
                Json::Arr(self.records.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_schema_and_records() {
        let report = QuarantineReport {
            records: vec![QuarantineRecord {
                index: 3,
                label: "sim x=0 Small supervisor".into(),
                seed: u64::MAX,
                attempts: 3,
                panic_message: "boom".into(),
            }],
        };
        assert!(!report.is_empty());
        assert_eq!(report.len(), 1);
        let json = sdnav_json::to_string(&report);
        assert!(json.contains("sdnav-quarantine/v1"));
        assert!(json.contains("\"attempts\":3"));
        // u64::MAX survives as a decimal string, not a rounded float.
        assert!(json.contains("\"18446744073709551615\""));
    }

    #[test]
    fn empty_report_is_empty() {
        let report = QuarantineReport::default();
        assert!(report.is_empty());
        assert_eq!(report.len(), 0);
        assert!(sdnav_json::to_string(&report).contains("\"quarantined\":0"));
    }
}
