//! Dependency-free JSON for the sdn-availability workspace.
//!
//! The build environment has no crates.io access, so instead of serde the
//! workspace (de)serializes through this small crate: a [`Json`] value
//! type, a strict parser with line/column errors, a compact and a pretty
//! printer, and [`ToJson`] / [`FromJson`] traits that model types implement
//! by hand. The wire format is byte-compatible with what the previous
//! serde derives produced (snake_case enum tags, optional fields omitted
//! when absent, defaults applied on input), so existing spec files keep
//! loading.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod schema;

pub use schema::Envelope;

use std::error::Error;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like serde_json's default).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when printing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value of object field `name`, if this is an object containing it.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value of a required object field.
    ///
    /// # Errors
    ///
    /// Returns a decode error naming the missing field.
    pub fn field(&self, name: &str) -> Result<&Json, JsonError> {
        self.get(name)
            .ok_or_else(|| JsonError::decode(format!("missing field `{name}`")))
    }

    /// This value as an `f64`.
    ///
    /// # Errors
    ///
    /// Returns a decode error if this is not a number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(type_error("number", other)),
        }
    }

    /// This value as a `u32` (rejecting fractions and out-of-range values).
    ///
    /// # Errors
    ///
    /// Returns a decode error if this is not a non-negative integer that
    /// fits in `u32`.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&n) {
            return Err(JsonError::decode(format!("expected a u32, got {n}")));
        }
        Ok(n as u32)
    }

    /// This value as a `usize` (rejecting fractions and negatives).
    ///
    /// # Errors
    ///
    /// Returns a decode error if this is not a non-negative integer.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || n < 0.0 || n > 2f64.powi(53) {
            return Err(JsonError::decode(format!("expected an index, got {n}")));
        }
        Ok(n as usize)
    }

    /// This value as a `bool`.
    ///
    /// # Errors
    ///
    /// Returns a decode error if this is not a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(type_error("boolean", other)),
        }
    }

    /// This value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns a decode error if this is not a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(type_error("string", other)),
        }
    }

    /// This value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns a decode error if this is not an array.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(type_error("array", other)),
        }
    }

    /// This value's object fields.
    ///
    /// # Errors
    ///
    /// Returns a decode error if this is not an object.
    pub fn as_obj(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(type_error("object", other)),
        }
    }

    /// A short name for the value's type, used in error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Parses a JSON document (rejecting trailing content).
    ///
    /// # Errors
    ///
    /// Returns a parse error with line/column on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Compact rendering (no whitespace).
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write as _;
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 2f64.powi(53) {
            let _ = write!(out, "{}", n as i64);
        } else {
            // `{}` prints the shortest representation that round-trips.
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no NaN/∞; serialize as null like serde_json does.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn type_error(expected: &str, got: &Json) -> JsonError {
    JsonError::decode(format!("expected {expected}, got {}", got.type_name()))
}

/// Errors from parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The text is not valid JSON.
    Parse {
        /// 1-based line of the error.
        line: usize,
        /// 1-based column of the error.
        col: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON is valid but does not match the expected shape.
    Decode {
        /// Dotted path from the document root (e.g. `roles[1].processes[0]`).
        path: String,
        /// What went wrong.
        message: String,
    },
}

impl JsonError {
    /// A decode error at the current location (path filled in by callers
    /// via [`JsonError::ctx`]).
    #[must_use]
    pub fn decode(message: impl Into<String>) -> Self {
        JsonError::Decode {
            path: String::new(),
            message: message.into(),
        }
    }

    /// Prepends a path segment (field name or `[index]`) to a decode error.
    #[must_use]
    pub fn ctx(self, segment: &str) -> Self {
        match self {
            JsonError::Decode { path, message } => JsonError::Decode {
                path: if path.is_empty() {
                    segment.to_owned()
                } else if path.starts_with('[') {
                    format!("{segment}{path}")
                } else {
                    format!("{segment}.{path}")
                },
                message,
            },
            parse => parse,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { line, col, message } => {
                write!(
                    f,
                    "JSON parse error at line {line}, column {col}: {message}"
                )
            }
            JsonError::Decode { path, message } if path.is_empty() => f.write_str(message),
            JsonError::Decode { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError::Parse {
            line,
            col,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("maximum nesting depth exceeded"));
        }
        let result = match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&other) => Err(self.error(format!("unexpected character `{}`", other as char))),
        };
        self.depth -= 1;
        result
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(&b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Types that can be decoded from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes a value, returning a path-annotated error on mismatch.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError::Decode`] describing the first mismatch.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

/// Serializes `value` compactly.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json().to_compact()
}

/// Serializes `value` with two-space indentation.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().to_pretty()
}

/// Parses and decodes a value from JSON text.
///
/// # Errors
///
/// Returns a [`JsonError`] if the text is malformed or does not match `T`.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_f64()
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl FromJson for u32 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_u32()
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_usize()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_str().map(str::to_owned)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_arr()?
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.ctx(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(
            Json::parse(r#""a\nb""#).unwrap(),
            Json::Str("a\nb".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap(), &Json::Str("x".to_owned()));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1].get("b").unwrap(), &Json::Null);
    }

    #[test]
    fn rejects_malformed_input_with_position() {
        let err = Json::parse("{\n  \"a\": ]\n}").unwrap_err();
        match err {
            JsonError::Parse { line, col, .. } => {
                assert_eq!(line, 2);
                assert!(col > 1);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_duplicates() {
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v, Json::Str("é😀".to_owned()));
    }

    #[test]
    fn printer_round_trips() {
        let v = Json::obj(vec![
            ("name", Json::str("x\"y")),
            ("nums", Json::Arr(vec![Json::Num(1.0), Json::Num(0.25)])),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(3.0).to_compact(), "3");
        assert_eq!(Json::Num(0.9995).to_compact(), "0.9995");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn decode_errors_carry_paths() {
        let v = Json::parse(r#"{"roles": [{"nodes": "three"}]}"#).unwrap();
        let err = v.field("roles").unwrap().as_arr().unwrap()[0]
            .field("nodes")
            .unwrap()
            .as_u32()
            .unwrap_err()
            .ctx("nodes")
            .ctx("[0]")
            .ctx("roles");
        assert_eq!(
            err.to_string(),
            "roles[0].nodes: expected number, got string"
        );
    }

    #[test]
    fn u32_decoding_rejects_fractions() {
        assert!(Json::Num(1.5).as_u32().is_err());
        assert!(Json::Num(-1.0).as_u32().is_err());
        assert_eq!(Json::Num(7.0).as_u32().unwrap(), 7);
    }

    #[test]
    fn vec_and_option_impls() {
        let v: Vec<f64> = from_str("[1, 2.5]").unwrap();
        assert_eq!(v, vec![1.0, 2.5]);
        let o: Option<String> = from_str("null").unwrap();
        assert_eq!(o, None);
        let err = from_str::<Vec<u32>>("[1, 2.5]").unwrap_err();
        assert!(err.to_string().starts_with("[1]"), "{err}");
    }
}
