//! The workspace's versioned document schemas in one place.
//!
//! Every JSON artifact the workspace emits or consumes carries a
//! `"schema": "sdnav-<kind>/v<N>"` discriminator field. The string
//! constants used to be scattered across the emitting crates; they live
//! here so producers and consumers agree by construction, and so bumping
//! a version is a one-line change with every emit/parse site following.
//!
//! [`Envelope`] is the helper both sides use: [`Envelope::wrap`] prepends
//! the schema field when emitting, [`Envelope::expect`] checks it when
//! parsing — an unknown or missing version is a structured
//! [`JsonError`], never a panic.

use crate::{Json, JsonError};

/// `sdnav sweep` result payload (figure tables, sim and chaos rows).
pub const SWEEP_RESULTS: &str = "sdnav-sweep-results/v1";

/// Run-varying metrics block emitted next to sweep results.
pub const SWEEP_METRICS: &str = "sdnav-sweep-metrics/v1";

/// Static cost prediction for a proposed grid (`sweep --dry-run`,
/// `GET /v1/plan`).
pub const SWEEP_PLAN: &str = "sdnav-sweep-plan/v1";

/// Full chaos-campaign report with the outage-attribution ledger.
pub const CHAOS_REPORT: &str = "sdnav-chaos-report/v1";

/// Compact digest of a chaos report (array hashes + first/last rows).
pub const CHAOS_DIGEST: &str = "sdnav-chaos-digest/v1";

/// FMEA-generated chaos campaign plus per-mode expectation records
/// (`sdnav chaos generate`, `POST /v1/chaos/generate`).
pub const CHAOS_GENSPEC: &str = "sdnav-chaos-genspec/v1";

/// Survive-or-attribute verdict over a generated campaign run
/// (`sdnav chaos run --verdict`).
pub const CHAOS_VERDICT: &str = "sdnav-chaos-verdict/v1";

/// Checkpoint WAL header/cell/seal frames.
pub const CHECKPOINT: &str = "sdnav-checkpoint/v1";

/// Quarantine report for cells that exhausted their retry budget.
pub const QUARANTINE: &str = "sdnav-quarantine/v1";

/// Sweep scaling bench line (`BENCH_sweep.json`).
pub const BENCH_SWEEP: &str = "sdnav-bench-sweep/v1";

/// `sdnav serve` patch acknowledgement (`PATCH /v1/spec`).
pub const SERVE_PATCH: &str = "sdnav-serve-patch/v1";

/// `sdnav serve` service counters (`GET /v1/metrics`).
pub const SERVE_METRICS: &str = "sdnav-serve-metrics/v1";

/// `sdnav serve` health document (`GET /v1/healthz`).
pub const SERVE_HEALTH: &str = "sdnav-serve-health/v1";

/// `sdnav serve` structured error body.
pub const SERVE_ERROR: &str = "sdnav-serve-error/v1";

/// Versioned-document helper: wraps payload fields under a schema
/// discriminator and checks the discriminator on the way back in.
#[derive(Debug, Clone, Copy)]
pub struct Envelope;

impl Envelope {
    /// Builds a document object whose first field is
    /// `"schema": <schema>`, followed by `fields` in order.
    #[must_use]
    pub fn wrap(schema: &str, fields: Vec<(&str, Json)>) -> Json {
        let mut all = Vec::with_capacity(fields.len() + 1);
        all.push(("schema", Json::str(schema)));
        all.extend(fields);
        Json::obj(all)
    }

    /// Checks that `value` is an object declaring exactly `schema`, and
    /// returns the value for field access.
    ///
    /// # Errors
    ///
    /// Returns a structured [`JsonError`] when the field is missing, not
    /// a string, or names a different (e.g. future) version — callers
    /// surface the message instead of panicking on unknown input.
    pub fn expect<'a>(schema: &str, value: &'a Json) -> Result<&'a Json, JsonError> {
        let declared = value
            .field("schema")
            .map_err(|_| JsonError::decode(format!("missing `schema` field (want {schema:?})")))?
            .as_str()
            .map_err(|e| e.ctx("schema"))?;
        if declared != schema {
            return Err(JsonError::decode(format!(
                "unsupported schema {declared:?} (want {schema:?})"
            ))
            .ctx("schema"));
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_puts_schema_first() {
        let doc = Envelope::wrap(SWEEP_RESULTS, vec![("rows", Json::Arr(vec![]))]);
        let json = doc.to_compact();
        assert!(
            json.starts_with("{\"schema\":\"sdnav-sweep-results/v1\""),
            "{json}"
        );
        assert!(Envelope::expect(SWEEP_RESULTS, &doc).is_ok());
    }

    #[test]
    fn expect_rejects_unknown_version_with_structured_error() {
        let doc = Envelope::wrap("sdnav-sweep-results/v9", vec![]);
        let err = Envelope::expect(SWEEP_RESULTS, &doc).unwrap_err();
        assert_eq!(
            err.to_string(),
            "schema: unsupported schema \"sdnav-sweep-results/v9\" (want \"sdnav-sweep-results/v1\")"
        );
    }

    #[test]
    fn expect_rejects_missing_and_nonstring_schema() {
        let missing = Json::obj(vec![("rows", Json::Arr(vec![]))]);
        assert!(Envelope::expect(CHECKPOINT, &missing)
            .unwrap_err()
            .to_string()
            .contains("missing `schema`"));
        let wrong_type = Json::obj(vec![("schema", Json::Num(1.0))]);
        assert!(Envelope::expect(CHECKPOINT, &wrong_type)
            .unwrap_err()
            .to_string()
            .starts_with("schema:"));
    }

    #[test]
    fn constants_follow_the_naming_convention() {
        for schema in [
            SWEEP_RESULTS,
            SWEEP_METRICS,
            SWEEP_PLAN,
            CHAOS_REPORT,
            CHAOS_DIGEST,
            CHAOS_GENSPEC,
            CHAOS_VERDICT,
            CHECKPOINT,
            QUARANTINE,
            BENCH_SWEEP,
            SERVE_PATCH,
            SERVE_METRICS,
            SERVE_HEALTH,
            SERVE_ERROR,
        ] {
            assert!(schema.starts_with("sdnav-"), "{schema}");
            assert!(schema.ends_with("/v1"), "{schema}");
        }
    }
}
