//! The discrete-event consensus layer: an event-heap engine in the mold
//! of `sdnav-sim`'s injection-hook core, specialized to the controller
//! cluster's coordination dynamics.
//!
//! # Event types
//!
//! * `NodeFail` / `NodeRepair` / `CatchUp` — the per-controller life
//!   cycle: exponential failure and repair, then a fixed log-replay
//!   window before the node counts toward the commit quorum again.
//! * `ElectionDone` — completion of a leader election, scheduled one
//!   randomized timeout draw plus one heartbeat round after the seat
//!   opened.
//! * `RackFail` / `RackRepair` — optional rack-level common-cause
//!   outages: every co-located controller drops together and returns
//!   (catching up) when the rack does.
//! * `Injected` — externally scheduled kills, the hook `sdnav chaos`
//!   leader-targeted campaigns compile to; [`InjectTarget::Leader`]
//!   resolves at fire time.
//!
//! Stale events are cancelled by generation counters (per node, and one
//! for the election seat), exactly as the main simulator's epoch scheme
//! works. All randomness flows from identity-seeded SplitMix64 streams:
//! node `i` owns stream `seed ⊕ mix(i+1)`, racks and the election seat
//! own tagged streams of their own, so no draw ever depends on event
//! arrival order or thread scheduling.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use sdnav_core::{ConsensusError, ConsensusSpec};

use crate::ConsensusParams;

/// Milliseconds per hour.
const MS_PER_HOUR: f64 = 3_600_000.0;

/// SplitMix64 increment (the "golden gamma").
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Stream tag for the election seat.
const ELECTION_TAG: u64 = 0xE1EC_7100_0000_0001;

/// Stream tag base for racks.
const RACK_TAG: u64 = 0x0AC0_0000_0000_0001;

/// SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An identity-seeded SplitMix64 draw stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    state: u64,
}

impl Stream {
    fn new(seed: u64, tag: u64) -> Self {
        Stream {
            state: mix(seed ^ mix(tag)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// Uniform draw in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential draw with the given per-hour rate.
    fn exp(&mut self, rate: f64) -> f64 {
        -(1.0 - self.next_f64()).ln() / rate
    }
}

/// What an [`Injection`] kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectTarget {
    /// Whichever controller holds the lease when the injection fires; a
    /// no-op (counted as skipped) if the seat is empty at that instant.
    Leader,
    /// A specific controller by cluster index.
    Node(usize),
}

/// One externally scheduled kill — the consensus layer's injection hook.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Injection {
    /// Simulation time of the kill, hours.
    pub at_hours: f64,
    /// Who dies.
    pub target: InjectTarget,
}

/// Optional rack-level common-cause configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RackConfig {
    /// Rack index of each controller, `placement.len() == cluster_size`.
    pub placement: Vec<usize>,
    /// Mean time between failures of one rack, hours.
    pub rack_mtbf_hours: f64,
    /// Mean time to repair one rack, hours.
    pub rack_mttr_hours: f64,
}

/// Aggregate measurements of one consensus replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsensusOutcome {
    /// Fraction of the horizon in the leader-up macro-state (the
    /// election-latency-aware control-plane availability).
    pub availability: f64,
    /// Fraction of the horizon spent electing.
    pub election_fraction: f64,
    /// Fraction of the horizon with log replication stalled (quorum
    /// lost).
    pub stall_fraction: f64,
    /// Completed leader elections.
    pub elections: u64,
    /// Entries into the quorum-lost stall state.
    pub stalls: u64,
    /// Injected kills that found a live target.
    pub injected_kills: u64,
    /// Injected kills that fired on an empty seat or dead node.
    pub skipped_injections: u64,
    /// The measured horizon, hours.
    pub horizon_hours: f64,
}

/// Failure modes of building or running a [`ConsensusSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConsensusSimError {
    /// The consensus spec failed structural validation.
    BadSpec(ConsensusError),
    /// Non-finite or non-positive environment parameters.
    BadParams,
    /// The commit quorum exceeds the honest (non-Byzantine) membership:
    /// the cluster can never commit (the SA035 lint condition).
    QuorumUnreachable,
    /// An injection targets a node outside the cluster or a non-finite
    /// time.
    BadInjection,
    /// The rack placement does not cover the cluster or has degenerate
    /// rates.
    BadRacks,
    /// The CTMC counterpart could not solve its steady state.
    Degenerate,
}

impl fmt::Display for ConsensusSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusSimError::BadSpec(e) => write!(f, "consensus spec: {e}"),
            ConsensusSimError::BadParams => {
                write!(f, "consensus parameters must be finite and positive")
            }
            ConsensusSimError::QuorumUnreachable => write!(
                f,
                "commit quorum exceeds the honest membership: the cluster can never commit"
            ),
            ConsensusSimError::BadInjection => {
                write!(
                    f,
                    "injection targets a node outside the cluster or a non-finite time"
                )
            }
            ConsensusSimError::BadRacks => {
                write!(
                    f,
                    "rack placement must cover the cluster with positive rates"
                )
            }
            ConsensusSimError::Degenerate => write!(f, "consensus CTMC steady state is degenerate"),
        }
    }
}

impl Error for ConsensusSimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    NodeFail(usize),
    NodeRepair(usize),
    CatchUp(usize),
    ElectionDone,
    RackFail(usize),
    RackRepair(usize),
    Injected(usize),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    gen: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    // Reversed: BinaryHeap pops its maximum, we want the earliest time
    // (ties broken by insertion order for full determinism).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Active,
    CatchingUp,
    Down,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Led { leader: usize },
    Electing,
    Stall,
}

/// The consensus discrete-event simulator. Construction validates; each
/// [`ConsensusSim::run`] is an independent, deterministic replication.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusSim {
    spec: ConsensusSpec,
    params: ConsensusParams,
    racks: Option<RackConfig>,
}

struct RunState {
    heap: BinaryHeap<Event>,
    seq: u64,
    node_state: Vec<NodeState>,
    node_gen: Vec<u64>,
    held_by_rack: Vec<bool>,
    node_streams: Vec<Stream>,
    election_stream: Stream,
    rack_streams: Vec<Stream>,
    phase: Phase,
    election_gen: u64,
}

impl RunState {
    fn push(&mut self, time: f64, gen: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event {
            time,
            seq,
            gen,
            kind,
        });
    }
}

impl ConsensusSim {
    /// Builds a simulator for `spec` under `params`, no rack coupling.
    ///
    /// # Errors
    ///
    /// [`ConsensusSimError::BadSpec`]/[`ConsensusSimError::BadParams`] for
    /// structural problems, [`ConsensusSimError::QuorumUnreachable`] when
    /// the declared Byzantine count leaves fewer honest members than the
    /// commit quorum needs.
    pub fn try_new(
        spec: ConsensusSpec,
        params: ConsensusParams,
    ) -> Result<Self, ConsensusSimError> {
        Self::with_racks(spec, params, None)
    }

    /// Builds a simulator with optional rack-level common-cause outages.
    ///
    /// # Errors
    ///
    /// As [`ConsensusSim::try_new`], plus [`ConsensusSimError::BadRacks`]
    /// when the placement does not assign every controller a rack or the
    /// rack rates are degenerate.
    pub fn with_racks(
        spec: ConsensusSpec,
        params: ConsensusParams,
        racks: Option<RackConfig>,
    ) -> Result<Self, ConsensusSimError> {
        spec.validate().map_err(ConsensusSimError::BadSpec)?;
        params.validate()?;
        let honest = spec.cluster_size.saturating_sub(spec.fault_mix.byzantine);
        if spec.quorum() > honest {
            return Err(ConsensusSimError::QuorumUnreachable);
        }
        if let Some(r) = &racks {
            let ok = |v: f64| v.is_finite() && v > 0.0;
            if r.placement.len() != spec.cluster_size as usize
                || !ok(r.rack_mtbf_hours)
                || !ok(r.rack_mttr_hours)
            {
                return Err(ConsensusSimError::BadRacks);
            }
        }
        Ok(ConsensusSim {
            spec,
            params,
            racks,
        })
    }

    /// The spec this simulator runs.
    #[must_use]
    pub fn spec(&self) -> &ConsensusSpec {
        &self.spec
    }

    /// One fault-free-schedule replication (failures still occur — only
    /// injections are absent).
    #[must_use]
    pub fn run(&self, seed: u64) -> ConsensusOutcome {
        self.run_injected(seed, &[])
            .expect("empty injection plan is always valid")
    }

    /// One replication with externally scheduled kills.
    ///
    /// # Errors
    ///
    /// [`ConsensusSimError::BadInjection`] when a kill targets a node
    /// outside the cluster or carries a non-finite/negative time.
    pub fn run_injected(
        &self,
        seed: u64,
        injections: &[Injection],
    ) -> Result<ConsensusOutcome, ConsensusSimError> {
        let n = self.spec.cluster_size as usize;
        for inj in injections {
            let time_ok = inj.at_hours.is_finite() && inj.at_hours >= 0.0;
            let target_ok = match inj.target {
                InjectTarget::Leader => true,
                InjectTarget::Node(i) => i < n,
            };
            if !time_ok || !target_ok {
                return Err(ConsensusSimError::BadInjection);
            }
        }

        let byz = self.spec.fault_mix.byzantine as usize;
        let quorum = self.spec.quorum() as usize;
        let horizon = self.params.horizon_hours;
        let lam = self.params.failure_rate();
        let mu = self.params.repair_rate();
        let catch_up_h = self.spec.catch_up_ms / MS_PER_HOUR;

        let rack_count = self
            .racks
            .as_ref()
            .map_or(0, |r| r.placement.iter().max().map_or(0, |m| m + 1));
        let mut st = RunState {
            heap: BinaryHeap::new(),
            seq: 0,
            node_state: vec![NodeState::Active; n],
            node_gen: vec![0; n],
            held_by_rack: vec![false; n],
            node_streams: (0..n).map(|i| Stream::new(seed, (i as u64) + 1)).collect(),
            election_stream: Stream::new(seed, ELECTION_TAG),
            rack_streams: (0..rack_count)
                .map(|r| Stream::new(seed, RACK_TAG ^ ((r as u64) << 8)))
                .collect(),
            phase: Phase::Stall,
            election_gen: 0,
        };

        // Seed the initial schedules: node failures, rack failures, and
        // the injection plan (which fires regardless of generations).
        for i in 0..n {
            let t = st.node_streams[i].exp(lam);
            st.push(t, st.node_gen[i], EventKind::NodeFail(i));
        }
        if let Some(racks) = &self.racks {
            for r in 0..rack_count {
                let t = st.rack_streams[r].exp(1.0 / racks.rack_mtbf_hours);
                st.push(t, 0, EventKind::RackFail(r));
            }
        }
        for (idx, inj) in injections.iter().enumerate() {
            st.push(inj.at_hours, 0, EventKind::Injected(idx));
        }

        // The run opens with an already-settled leader: the measurement
        // is of steady-state behavior, not cluster bootstrap.
        st.phase = Phase::Led {
            leader: (st.election_stream.next_u64() as usize) % (n - byz).max(1),
        };

        let mut leader_time = 0.0;
        let mut election_time = 0.0;
        let mut stall_time = 0.0;
        let mut last_t = 0.0;
        let mut elections = 0u64;
        let mut stalls = 0u64;
        let mut injected_kills = 0u64;
        let mut skipped_injections = 0u64;

        // The honest membership is the low `n - byz` indices: declared
        // Byzantine seats are pinned to the high indices, hold cluster
        // membership, but never vote usefully and are never electable.
        let honest_active = |st: &RunState| {
            st.node_state[..n - byz]
                .iter()
                .filter(|&&s| s == NodeState::Active)
                .count()
        };

        macro_rules! account {
            ($t:expr) => {
                let dt = $t - last_t;
                match st.phase {
                    Phase::Led { .. } => leader_time += dt,
                    Phase::Electing => election_time += dt,
                    Phase::Stall => stall_time += dt,
                }
                last_t = $t;
            };
        }
        macro_rules! start_election {
            ($t:expr) => {
                st.election_gen += 1;
                let duration_ms = self
                    .spec
                    .election_latency
                    .sample_ms(st.election_stream.next_f64())
                    + self.spec.heartbeat_interval_ms;
                let gen = st.election_gen;
                st.push($t + duration_ms / MS_PER_HOUR, gen, EventKind::ElectionDone);
                st.phase = Phase::Electing;
            };
        }
        // Re-derives the cluster phase after any membership change.
        macro_rules! recheck {
            ($t:expr) => {
                let quorum_ok = honest_active(&st) >= quorum;
                match st.phase {
                    Phase::Led { leader } => {
                        let leader_ok = st.node_state[leader] == NodeState::Active;
                        if !quorum_ok {
                            // CheckQuorum: the leader steps down the moment
                            // it cannot reach a commit quorum.
                            account!($t);
                            st.election_gen += 1;
                            st.phase = Phase::Stall;
                            stalls += 1;
                        } else if !leader_ok {
                            account!($t);
                            start_election!($t);
                        }
                    }
                    Phase::Electing => {
                        if !quorum_ok {
                            account!($t);
                            st.election_gen += 1;
                            st.phase = Phase::Stall;
                            stalls += 1;
                        }
                    }
                    Phase::Stall => {
                        if quorum_ok {
                            account!($t);
                            start_election!($t);
                        }
                    }
                }
            };
        }
        // Node death from any cause: own failure, injected kill, or rack
        // outage (`schedule_repair = false` for the latter — the rack
        // brings the node back itself).
        macro_rules! kill_node {
            ($t:expr, $i:expr, $schedule_repair:expr) => {
                st.node_gen[$i] += 1;
                st.node_state[$i] = NodeState::Down;
                if $schedule_repair {
                    let dt = st.node_streams[$i].exp(mu);
                    st.push($t + dt, st.node_gen[$i], EventKind::NodeRepair($i));
                }
            };
        }
        // Node returning to service (repair or rack restoration): a
        // catch-up window, then the next failure draw.
        macro_rules! revive_node {
            ($t:expr, $i:expr) => {
                st.node_state[$i] = NodeState::CatchingUp;
                st.held_by_rack[$i] = false;
                let gen = st.node_gen[$i];
                st.push($t + catch_up_h, gen, EventKind::CatchUp($i));
                let ttf = st.node_streams[$i].exp(lam);
                st.push($t + ttf, gen, EventKind::NodeFail($i));
            };
        }

        while let Some(ev) = st.heap.pop() {
            if ev.time >= horizon {
                break;
            }
            let t = ev.time;
            match ev.kind {
                EventKind::NodeFail(i) => {
                    if ev.gen != st.node_gen[i] || st.node_state[i] == NodeState::Down {
                        continue;
                    }
                    kill_node!(t, i, true);
                    recheck!(t);
                }
                EventKind::NodeRepair(i) => {
                    if ev.gen != st.node_gen[i] {
                        continue;
                    }
                    revive_node!(t, i);
                }
                EventKind::CatchUp(i) => {
                    if ev.gen != st.node_gen[i] || st.node_state[i] != NodeState::CatchingUp {
                        continue;
                    }
                    st.node_state[i] = NodeState::Active;
                    recheck!(t);
                }
                EventKind::ElectionDone => {
                    if ev.gen != st.election_gen || st.phase != Phase::Electing {
                        continue;
                    }
                    let candidates: Vec<usize> = (0..n - byz)
                        .filter(|&i| st.node_state[i] == NodeState::Active)
                        .collect();
                    // Electing implies the quorum is intact, so the
                    // candidate list is never empty.
                    let pick = (st.election_stream.next_u64() as usize) % candidates.len();
                    account!(t);
                    st.phase = Phase::Led {
                        leader: candidates[pick],
                    };
                    elections += 1;
                }
                EventKind::RackFail(r) => {
                    let racks = self.racks.as_ref().expect("rack event implies rack config");
                    let repair = st.rack_streams[r].exp(1.0 / racks.rack_mttr_hours);
                    st.push(t + repair, 0, EventKind::RackRepair(r));
                    for i in 0..n {
                        if racks.placement[i] == r && st.node_state[i] != NodeState::Down {
                            kill_node!(t, i, false);
                            st.held_by_rack[i] = true;
                        } else if racks.placement[i] == r && st.node_state[i] == NodeState::Down {
                            // Already down for its own reasons: the rack
                            // outage supersedes the pending repair.
                            st.node_gen[i] += 1;
                            st.held_by_rack[i] = true;
                        }
                    }
                    recheck!(t);
                }
                EventKind::RackRepair(r) => {
                    let racks = self.racks.as_ref().expect("rack event implies rack config");
                    let next = st.rack_streams[r].exp(1.0 / racks.rack_mtbf_hours);
                    st.push(t + next, 0, EventKind::RackFail(r));
                    for i in 0..n {
                        if racks.placement[i] == r && st.held_by_rack[i] {
                            revive_node!(t, i);
                        }
                    }
                }
                EventKind::Injected(idx) => {
                    let victim = match injections[idx].target {
                        InjectTarget::Leader => match st.phase {
                            Phase::Led { leader } => Some(leader),
                            _ => None,
                        },
                        InjectTarget::Node(i) => Some(i),
                    };
                    match victim {
                        Some(i) if st.node_state[i] != NodeState::Down => {
                            kill_node!(t, i, true);
                            injected_kills += 1;
                            recheck!(t);
                        }
                        _ => skipped_injections += 1,
                    }
                }
            }
        }
        match st.phase {
            Phase::Led { .. } => leader_time += horizon - last_t,
            Phase::Electing => election_time += horizon - last_t,
            Phase::Stall => stall_time += horizon - last_t,
        }

        Ok(ConsensusOutcome {
            availability: leader_time / horizon,
            election_fraction: election_time / horizon,
            stall_fraction: stall_time / horizon,
            elections,
            stalls,
            injected_kills,
            skipped_injections,
            horizon_hours: horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc_availability;

    fn sim() -> ConsensusSim {
        ConsensusSim::try_new(
            ConsensusSpec::raft_defaults(),
            ConsensusParams::paper_defaults(),
        )
        .unwrap()
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let s = sim();
        let a = s.run(7);
        assert_eq!(a, s.run(7));
        assert_ne!(a, s.run(8));
    }

    #[test]
    fn fractions_partition_the_horizon() {
        let o = sim().run(11);
        let total = o.availability + o.election_fraction + o.stall_fraction;
        assert!((total - 1.0).abs() < 1e-12, "fractions sum to {total}");
        assert!(o.availability > 0.99);
        assert!(o.elections > 0);
    }

    #[test]
    fn des_tracks_the_ctmc_counterpart() {
        // Crash-only cross-validation at an accelerated working point:
        // the DES mean over a few seeds must sit near the CTMC value.
        let spec = ConsensusSpec::raft_defaults();
        let params = ConsensusParams {
            node_mtbf_hours: 500.0,
            node_mttr_hours: 8.0,
            horizon_hours: 100_000.0,
        };
        let sim = ConsensusSim::try_new(spec.clone(), params).unwrap();
        let mean = (0..8).map(|s| sim.run(s).availability).sum::<f64>() / 8.0;
        let ctmc = ctmc_availability(&spec, &params).unwrap();
        assert!((mean - ctmc).abs() < 5e-4, "DES {mean} vs CTMC {ctmc}");
    }

    #[test]
    fn leader_kills_cost_more_than_follower_kills() {
        // 200 scheduled kills: leader-targeted ones force an election
        // each time; fixed-node kills only do when they happen to hit
        // the leader.
        let spec = ConsensusSpec::raft_defaults();
        let params = ConsensusParams {
            node_mtbf_hours: 1.0e9, // isolate the injected faults
            node_mttr_hours: 0.05,
            horizon_hours: 10_000.0,
        };
        let sim = ConsensusSim::try_new(spec, params).unwrap();
        let plan = |target| -> Vec<Injection> {
            (0..200)
                .map(|k| Injection {
                    at_hours: 25.0 + 40.0 * f64::from(k),
                    target,
                })
                .collect()
        };
        let leader = sim.run_injected(99, &plan(InjectTarget::Leader)).unwrap();
        let node = sim.run_injected(99, &plan(InjectTarget::Node(2))).unwrap();
        assert_eq!(leader.injected_kills, 200);
        assert!(leader.elections >= 200);
        assert!(leader.availability < node.availability);
    }

    #[test]
    fn byzantine_mix_needs_more_cluster() {
        let mut spec = ConsensusSpec::raft_defaults();
        spec.fault_mix = sdnav_core::FaultMix {
            byzantine: 1,
            crash: 0,
        };
        // Quorum 3, honest = 3 - 1 = 2: unreachable.
        assert_eq!(
            ConsensusSim::try_new(spec.clone(), ConsensusParams::paper_defaults()).unwrap_err(),
            ConsensusSimError::QuorumUnreachable
        );
        // Five nodes make it work, at lower availability than crash-only.
        spec.cluster_size = 5;
        let bft = ConsensusSim::try_new(spec, ConsensusParams::paper_defaults()).unwrap();
        let crash = sim();
        assert!(bft.run(3).availability < crash.run(3).availability + 1e-3);
    }

    #[test]
    fn rack_placement_two_is_the_worst_of_three() {
        // The paper's placement claim, election-latency-aware: identical
        // node/rack randomness (paired seeds), only the placement moves.
        let spec = ConsensusSpec::raft_defaults();
        let params = ConsensusParams {
            node_mtbf_hours: 2_000.0,
            node_mttr_hours: 1.0,
            horizon_hours: 200_000.0,
        };
        let run = |placement: Vec<usize>, seed| {
            ConsensusSim::with_racks(
                spec.clone(),
                params,
                Some(RackConfig {
                    placement,
                    rack_mtbf_hours: 4_000.0,
                    rack_mttr_hours: 2.0,
                }),
            )
            .unwrap()
            .run(seed)
            .availability
        };
        let mut one_vs_two = 0.0;
        let mut three_vs_two = 0.0;
        for seed in 0..6 {
            one_vs_two += run(vec![0, 0, 0], seed) - run(vec![0, 0, 1], seed);
            three_vs_two += run(vec![0, 1, 2], seed) - run(vec![0, 0, 1], seed);
        }
        assert!(one_vs_two > 0.0, "two racks beat one: {one_vs_two}");
        assert!(three_vs_two > 0.0, "two racks beat three: {three_vs_two}");
    }

    #[test]
    fn injection_validation() {
        let s = sim();
        assert_eq!(
            s.run_injected(
                1,
                &[Injection {
                    at_hours: 1.0,
                    target: InjectTarget::Node(3),
                }]
            )
            .unwrap_err(),
            ConsensusSimError::BadInjection
        );
        assert_eq!(
            s.run_injected(
                1,
                &[Injection {
                    at_hours: f64::NAN,
                    target: InjectTarget::Leader,
                }]
            )
            .unwrap_err(),
            ConsensusSimError::BadInjection
        );
    }

    #[test]
    fn rack_validation() {
        let bad = ConsensusSim::with_racks(
            ConsensusSpec::raft_defaults(),
            ConsensusParams::paper_defaults(),
            Some(RackConfig {
                placement: vec![0, 1], // 2 entries for 3 nodes
                rack_mtbf_hours: 1000.0,
                rack_mttr_hours: 1.0,
            }),
        );
        assert_eq!(bad.unwrap_err(), ConsensusSimError::BadRacks);
    }

    #[test]
    fn errors_display_meaningfully() {
        assert!(ConsensusSimError::QuorumUnreachable
            .to_string()
            .contains("quorum"));
        assert!(ConsensusSimError::BadRacks.to_string().contains("rack"));
    }
}
