//! Consensus dynamics for the distributed SDN control plane.
//!
//! The source paper gates control-plane availability on a *static* k-of-n
//! quorum count: the CP is up whenever enough controller instances are up.
//! Sakic & Kellerer's RAFT study shows that is optimistic — every leader
//! crash opens an election window during which the control plane commits
//! nothing, and every quorum loss stalls log replication until a repaired
//! follower has caught up *and* a new leader has won. This crate models
//! those dynamics as a first-class subsystem:
//!
//! * [`ConsensusSim`] — a discrete-event layer in the mold of the
//!   `sdnav-sim` injection-hook engine: per-controller exponential
//!   failure/repair processes, randomized (uniform) RAFT election
//!   timeouts, leader failover latency, log-replication stall on quorum
//!   loss (the leader steps down, as etcd's CheckQuorum does), and
//!   follower catch-up after repair. Every random draw comes from an
//!   identity-seeded SplitMix64 stream (keyed by node index or the
//!   election sequence, never by event arrival order), so results are
//!   byte-identical however the surrounding grid schedules the cells.
//! * An adaptive-BFT mode à la MORPH: when the declared
//!   [`sdnav_core::FaultMix`] includes Byzantine faults, the commit
//!   quorum is `2·F_BFT + F_crash + 1` and the declared number of
//!   Byzantine controllers is actually present (worst case): they hold
//!   cluster seats but never vote usefully and can never be elected.
//! * [`Injection`] hooks — scheduled kills, including
//!   [`InjectTarget::Leader`] which resolves *at event time* to whoever
//!   currently holds the lease, the primitive `sdnav chaos` leader-kill
//!   campaigns compile to.
//! * [`RackConfig`] — optional rack-level common-cause outages (every
//!   co-located controller falls together), which is what lets the bench
//!   re-test the paper's "one rack or three, but not two" placement claim
//!   with election latency in the loop.
//! * [`ctmc_availability`] — the `sdnav-markov` macro-state CTMC
//!   counterpart evaluated with the same parameters, for cross-validation.
//!
//! ```
//! use sdnav_consensus::{ConsensusParams, ConsensusSim};
//! use sdnav_core::ConsensusSpec;
//!
//! let sim = ConsensusSim::try_new(ConsensusSpec::raft_defaults(),
//!                                 ConsensusParams::paper_defaults()).unwrap();
//! let outcome = sim.run(42);
//! assert!(outcome.availability > 0.99 && outcome.availability < 1.0);
//! // Same seed, same bytes — whatever else ran in between.
//! assert_eq!(sim.run(42), outcome);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod des;

pub use des::{
    ConsensusOutcome, ConsensusSim, ConsensusSimError, InjectTarget, Injection, RackConfig,
};

use sdnav_core::ConsensusSpec;

/// Environment parameters of a consensus run: the per-controller
/// failure/repair process and the measurement horizon. These are the
/// knobs the paper's §V hardware layer owns; everything protocol-level
/// lives in [`sdnav_core::ConsensusSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsensusParams {
    /// Mean time between failures of one controller node, hours.
    pub node_mtbf_hours: f64,
    /// Mean time to repair one controller node, hours (dedicated repair).
    pub node_mttr_hours: f64,
    /// Simulated horizon per replication, hours.
    pub horizon_hours: f64,
}

impl ConsensusParams {
    /// Defaults matching the paper's §V working point: a controller node
    /// at `A_C ≈ 0.9995` (MTBF 2000 h, MTTR 1 h), measured over a
    /// 100 000-hour horizon.
    #[must_use]
    pub fn paper_defaults() -> Self {
        ConsensusParams {
            node_mtbf_hours: 2_000.0,
            node_mttr_hours: 1.0,
            horizon_hours: 100_000.0,
        }
    }

    /// Per-hour failure rate `λ = 1 / MTBF`.
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        1.0 / self.node_mtbf_hours
    }

    /// Per-hour repair rate `μ = 1 / MTTR`.
    #[must_use]
    pub fn repair_rate(&self) -> f64 {
        1.0 / self.node_mttr_hours
    }

    /// Checks the parameters are finite and positive.
    ///
    /// # Errors
    ///
    /// Returns [`ConsensusSimError::BadParams`] otherwise.
    pub fn validate(&self) -> Result<(), ConsensusSimError> {
        let ok = |v: f64| v.is_finite() && v > 0.0;
        if ok(self.node_mtbf_hours) && ok(self.node_mttr_hours) && ok(self.horizon_hours) {
            Ok(())
        } else {
            Err(ConsensusSimError::BadParams)
        }
    }
}

/// Steady-state control-plane availability of the crash-only macro-state
/// CTMC counterpart ([`sdnav_markov::ConsensusCtmc`]) under the same spec
/// and parameters — the analytic side of the DES cross-validation.
///
/// # Errors
///
/// [`ConsensusSimError::QuorumUnreachable`] when the declared fault mix
/// needs more votes than the cluster holds, [`ConsensusSimError::BadParams`]
/// for degenerate rates, and [`ConsensusSimError::Degenerate`] if the
/// chain's steady state cannot be solved.
pub fn ctmc_availability(
    spec: &ConsensusSpec,
    params: &ConsensusParams,
) -> Result<f64, ConsensusSimError> {
    params.validate()?;
    let model = sdnav_markov::ConsensusCtmc::new(spec, params.failure_rate(), params.repair_rate())
        .map_err(|e| match e {
            sdnav_markov::ConsensusModelError::QuorumUnreachable { .. } => {
                ConsensusSimError::QuorumUnreachable
            }
            _ => ConsensusSimError::BadParams,
        })?;
    model
        .availability()
        .map_err(|_| ConsensusSimError::Degenerate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctmc_counterpart_agrees_on_magnitude() {
        let spec = ConsensusSpec::raft_defaults();
        let params = ConsensusParams {
            node_mtbf_hours: 500.0,
            node_mttr_hours: 8.0,
            horizon_hours: 50_000.0,
        };
        let a = ctmc_availability(&spec, &params).unwrap();
        assert!(a > 0.99 && a < 1.0, "availability {a}");
    }

    #[test]
    fn ctmc_counterpart_rejects_unreachable_quorum() {
        let mut spec = ConsensusSpec::raft_defaults();
        spec.fault_mix = sdnav_core::FaultMix {
            byzantine: 2,
            crash: 0,
        };
        assert_eq!(
            ctmc_availability(&spec, &ConsensusParams::paper_defaults()),
            Err(ConsensusSimError::QuorumUnreachable)
        );
    }
}
