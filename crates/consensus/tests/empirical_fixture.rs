//! The committed RAFT failover-latency quantile fixture
//! (`tests/fixtures/consensus/raft_failover_quantiles.json`, digitized
//! from the Sakic & Kellerer controller failover measurements): it must
//! decode as an [`ElectionLatency::Empirical`], reproduce its own
//! quantiles through the inverse CDF, sit above the default heartbeat
//! (so SA033 stays quiet), and drive the consensus DES to bit-identical
//! results no matter which thread draws from it.

use sdnav_consensus::{ConsensusParams, ConsensusSim};
use sdnav_core::{ConsensusSpec, ElectionLatency};

fn fixture() -> ElectionLatency {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/consensus/raft_failover_quantiles.json"
    );
    let text = std::fs::read_to_string(path).expect("committed quantile fixture");
    sdnav_json::from_str(&text).expect("fixture decodes as an election latency")
}

#[test]
fn fixture_validates_and_reproduces_its_quantiles() {
    let latency = fixture();
    latency.validate().expect("fixture table is well-formed");
    let ElectionLatency::Empirical { ref quantiles } = latency else {
        panic!("fixture must be the empirical kind");
    };
    assert!(quantiles.len() >= 10, "digitized table has full coverage");
    // The inverse CDF evaluated at a knot returns that knot's latency.
    for &(q, ms) in quantiles {
        assert!(
            (latency.sample_ms(q) - ms).abs() < 1e-9,
            "sample_ms({q}) = {} != {ms}",
            latency.sample_ms(q)
        );
    }
    // Between knots it interpolates linearly: the p50→p75 midpoint.
    let mid = latency.sample_ms(0.625);
    assert!((mid - 362.5).abs() < 1e-9, "midpoint draw {mid}");
    // The trapezoid mean of the digitized table, computed by hand.
    assert!(
        (latency.mean_ms() - 348.65).abs() < 0.01,
        "mean {}",
        latency.mean_ms()
    );
    // Failover is slower on average than RAFT's prescribed uniform
    // timeout — the shift the empirical distribution exists to model.
    let default_mean = ConsensusSpec::raft_defaults().election_latency.mean_ms();
    assert!(latency.mean_ms() > default_mean);
}

#[test]
fn fixture_floor_clears_the_default_heartbeat() {
    // SA033 flags an election floor at or below the heartbeat interval;
    // the committed fixture must be clean against the default spec.
    let latency = fixture();
    let heartbeat = ConsensusSpec::raft_defaults().heartbeat_interval_ms;
    assert!(
        latency.floor_ms() > heartbeat,
        "floor {} must exceed heartbeat {heartbeat}",
        latency.floor_ms()
    );
}

#[test]
fn empirical_draws_are_bit_identical_across_threads() {
    let mut spec = ConsensusSpec::raft_defaults();
    spec.election_latency = fixture();
    let params = ConsensusParams {
        node_mtbf_hours: 500.0,
        node_mttr_hours: 8.0,
        horizon_hours: 20_000.0,
    };
    let run = |seed: u64| {
        let sim = ConsensusSim::try_new(spec.clone(), params).expect("valid sim");
        let outcome = sim.run(seed);
        (
            outcome.availability.to_bits(),
            outcome.election_fraction.to_bits(),
            outcome.elections,
        )
    };
    let reference: Vec<_> = (1..=4u64).map(run).collect();
    // The same seeds drawn concurrently from four threads must reproduce
    // the reference bit patterns: the empirical inverse CDF holds no
    // shared state and each replication owns its seeded streams.
    let run = &run;
    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..=4u64).map(|seed| scope.spawn(move || run(seed))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replication thread"))
            .collect()
    });
    assert_eq!(reference, concurrent);
}
