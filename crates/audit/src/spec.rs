//! Checks over [`ControllerSpec`] (Tables I–III) and [`Topology`].

use std::collections::BTreeMap;

use sdnav_core::{ControllerSpec, Plane, RestartMode, RoleScope, Topology};

use crate::{AuditReport, Diagnostic};

/// Lints a controller spec: structure (SA001), duplicate names (SA002),
/// quorum bounds (SA003), group consistency (SA004), supervisor/restart
/// configuration per Table II (SA005), and downtime-factor ranges (SA008).
///
/// Unlike [`ControllerSpec::validate`], which stops at the first problem,
/// this pass reports every finding.
#[must_use]
pub fn audit_spec(spec: &ControllerSpec) -> AuditReport {
    let mut r = AuditReport::new();
    if spec.nodes == 0 {
        r.push(Diagnostic::error(
            "SA001",
            "spec/nodes",
            "cluster has zero nodes",
            "set nodes to an odd 2N+1 cluster size (the paper uses 3)",
        ));
    }
    if spec.roles.is_empty() {
        r.push(Diagnostic::error(
            "SA001",
            "spec/roles",
            "controller spec has no roles",
            "add at least one role (Config, Control, Analytics, Database, vRouter, …)",
        ));
    }
    let mut role_names: BTreeMap<&str, usize> = BTreeMap::new();
    for role in &spec.roles {
        *role_names.entry(role.name.as_str()).or_insert(0) += 1;
    }
    for (name, count) in role_names {
        if count > 1 {
            r.push(Diagnostic::error(
                "SA002",
                format!("spec/roles/{name}"),
                format!("role {name:?} is declared {count} times"),
                "rename or remove the duplicate role",
            ));
        }
    }
    for role in &spec.roles {
        let role_path = format!("spec/roles/{}", role.name);
        let mut proc_names: BTreeMap<&str, usize> = BTreeMap::new();
        for p in &role.processes {
            *proc_names.entry(p.name.as_str()).or_insert(0) += 1;
        }
        for (name, count) in proc_names {
            if count > 1 {
                r.push(Diagnostic::error(
                    "SA002",
                    format!("{role_path}/processes/{name}"),
                    format!(
                        "process {name:?} appears {count} times in role {:?}",
                        role.name
                    ),
                    "rename or remove the duplicate process",
                ));
            }
        }

        let supervisors: Vec<_> = role.processes.iter().filter(|p| p.is_supervisor).collect();
        if supervisors.len() > 1 {
            r.push(Diagnostic::error(
                "SA005",
                role_path.clone(),
                format!(
                    "role {:?} has {} supervisor processes",
                    role.name,
                    supervisors.len()
                ),
                "mark exactly one process per role as the supervisor",
            ));
        }
        for sup in &supervisors {
            if sup.restart == RestartMode::Auto {
                r.push(Diagnostic::warn(
                    "SA005",
                    format!("{role_path}/processes/{}", sup.name),
                    "supervisor is marked auto-restart",
                    "the paper's Table II models supervisors as manual-restart \
                     (nothing supervises the supervisor); use restart = manual",
                ));
            }
        }
        let has_auto = role
            .processes
            .iter()
            .any(|p| p.restart == RestartMode::Auto && !p.is_supervisor);
        if has_auto && supervisors.is_empty() {
            r.push(Diagnostic::warn(
                "SA005",
                role_path.clone(),
                format!(
                    "role {:?} has auto-restart processes but no supervisor",
                    role.name
                ),
                "auto restart in §III is performed by the role's supervisor; \
                 add a supervisor process or mark the processes manual-restart",
            ));
        }

        let node_bound = match role.scope {
            RoleScope::Controller => spec.nodes,
            RoleScope::PerHost => 1,
        };
        for p in &role.processes {
            let proc_path = format!("{role_path}/processes/{}", p.name);
            for (plane, required) in [
                ("cp_required", p.cp_required),
                ("dp_required", p.dp_required),
            ] {
                if required > node_bound {
                    r.push(Diagnostic::error(
                        "SA003",
                        proc_path.clone(),
                        format!(
                            "{plane} = {required} but at most {node_bound} instance(s) exist \
                             ({:?} scope)",
                            role.scope
                        ),
                        "lower the quorum requirement or grow the cluster",
                    ));
                }
            }
            if !p.downtime_factor.is_finite() || p.downtime_factor < 0.0 {
                r.push(Diagnostic::error(
                    "SA008",
                    proc_path.clone(),
                    format!(
                        "downtime factor {} is negative or non-finite",
                        p.downtime_factor
                    ),
                    "use a finite factor ≥ 0 (1.0 = baseline, 10.0 = 10x the downtime)",
                ));
            }
        }

        for (plane, label) in [(Plane::ControlPlane, "cp"), (Plane::DataPlane, "dp")] {
            let mut group_req: BTreeMap<&str, u32> = BTreeMap::new();
            for p in &role.processes {
                let (group, required) = match plane {
                    Plane::ControlPlane => (p.cp_group.as_deref(), p.cp_required),
                    Plane::DataPlane => (p.dp_group.as_deref(), p.dp_required),
                };
                let Some(g) = group else { continue };
                match group_req.get(g) {
                    Some(&prev) if prev != required => {
                        r.push(Diagnostic::error(
                            "SA004",
                            format!("{role_path}/processes/{}", p.name),
                            format!(
                                "{label} group {g:?} members disagree on the quorum \
                                 ({prev} vs {required})"
                            ),
                            "give every member of a grouped series block the same requirement",
                        ));
                    }
                    Some(_) => {}
                    None => {
                        group_req.insert(g, required);
                    }
                }
            }
        }
    }
    r
}

/// Lints a topology against a spec: every controller `(role, node)` pair
/// must map to a live VM, every assignment must reference a known role and
/// an in-range node/VM (SA012), and the Table III quorum counts must be
/// satisfiable by the instances the topology actually provides (SA003).
#[must_use]
pub fn audit_topology(spec: &ControllerSpec, topo: &Topology) -> AuditReport {
    let mut r = AuditReport::new();
    let path = |rest: &str| format!("topology/{}/{rest}", topo.name());

    for (_, role) in spec.controller_roles() {
        for node in 0..spec.nodes {
            if topo.vm_of(&role.name, node).is_none() {
                r.push(Diagnostic::error(
                    "SA012",
                    path(&format!("assignments/{}/{node}", role.name)),
                    format!("role {:?} instance {node} has no VM assigned", role.name),
                    "assign every (controller role, node) pair to a VM",
                ));
            }
        }
    }
    for (role_name, node, vm) in topo.assignments() {
        let entry = path(&format!("assignments/{role_name}/{node}"));
        if vm.0 >= topo.vm_count() {
            r.push(Diagnostic::error(
                "SA012",
                entry.clone(),
                format!("assignment references VM {} of {}", vm.0, topo.vm_count()),
                "point the assignment at an existing VM",
            ));
        }
        match spec.role(role_name) {
            None => r.push(Diagnostic::error(
                "SA012",
                entry,
                format!("assignment references unknown role {role_name:?}"),
                "fix the role name or add the role to the spec",
            )),
            Some(role) if role.scope == RoleScope::Controller && node >= spec.nodes => {
                r.push(Diagnostic::error(
                    "SA012",
                    entry,
                    format!(
                        "node index {node} is outside the {}-node cluster",
                        spec.nodes
                    ),
                    "use node indices 0..nodes",
                ));
            }
            Some(_) => {}
        }
    }

    // Table III cross-check: each quorum must be satisfiable by the
    // instances this topology actually provides.
    for plane in [Plane::ControlPlane, Plane::DataPlane] {
        for req in spec.requirements(plane) {
            let role = &spec.roles[req.role_index];
            let provided = (0..spec.nodes)
                .filter(|&n| topo.vm_of(&role.name, n).is_some())
                .count();
            if req.required as usize > provided {
                r.push(Diagnostic::error(
                    "SA003",
                    path(&format!("quorums/{}/{}", role.name, req.label)),
                    format!(
                        "quorum needs {} of {} instances but the topology provides {provided}",
                        req.required, spec.nodes
                    ),
                    "assign the missing instances or relax the quorum",
                ));
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use sdnav_core::{ProcessSpec, RoleSpec};

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    #[test]
    fn sa001_zero_nodes_and_no_roles() {
        let empty = ControllerSpec {
            name: "X".into(),
            nodes: 0,
            roles: vec![],
            rates: None,
            consensus: None,
        };
        let r = audit_spec(&empty);
        assert_eq!(r.error_count(), 2);
        assert!(r.diagnostics().iter().all(|d| d.code == "SA001"));
    }

    #[test]
    fn sa002_duplicate_role_and_process() {
        let mut s = spec();
        let copy = s.roles[0].clone();
        s.roles.push(copy);
        let p = s.roles[1].processes[0].clone();
        s.roles[1].processes.push(p);
        let r = audit_spec(&s);
        assert!(r.has_code("SA002"));
        // One finding per duplicated name, not per occurrence.
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "SA002").count(),
            2
        );
    }

    #[test]
    fn sa003_quorum_exceeds_cluster() {
        let mut s = spec();
        s.roles[0].processes[0].cp_required = 4;
        let r = audit_spec(&s);
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "SA003")
            .expect("SA003 reported");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.path, "spec/roles/Config/processes/config-api");
        assert!(d.message.contains("cp_required = 4"));
    }

    #[test]
    fn sa003_per_host_bound_is_one() {
        let mut s = spec();
        let vrouter = s.roles.iter_mut().find(|r| r.name == "vRouter").unwrap();
        vrouter.processes[0].dp_required = 2;
        assert!(audit_spec(&s).has_code("SA003"));
    }

    #[test]
    fn sa004_inconsistent_group() {
        let mut s = spec();
        let control = s.roles.iter_mut().find(|r| r.name == "Control").unwrap();
        let dns = control
            .processes
            .iter_mut()
            .find(|p| p.name == "dns")
            .unwrap();
        dns.dp_required = 0;
        let r = audit_spec(&s);
        assert!(r.has_code("SA004"));
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA004" && d.path.ends_with("dns")));
    }

    #[test]
    fn sa005_multiple_supervisors_is_error() {
        let mut s = spec();
        s.roles[0].processes[0].is_supervisor = true;
        let r = audit_spec(&s);
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA005" && d.severity == Severity::Error));
    }

    #[test]
    fn sa005_auto_supervisor_is_warning() {
        let mut s = spec();
        let sup = s.roles[0]
            .processes
            .iter_mut()
            .find(|p| p.is_supervisor)
            .unwrap();
        sup.restart = RestartMode::Auto;
        let r = audit_spec(&s);
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA005" && d.severity == Severity::Warn));
        assert!(!r.has_errors());
    }

    #[test]
    fn sa005_auto_without_supervisor_is_warning() {
        let s = ControllerSpec {
            name: "X".into(),
            nodes: 3,
            roles: vec![RoleSpec::new(
                "Solo",
                RoleScope::Controller,
                vec![ProcessSpec::new("worker", RestartMode::Auto).cp(1)],
            )],
            rates: None,
            consensus: None,
        };
        let r = audit_spec(&s);
        assert!(r.diagnostics().iter().any(|d| d.code == "SA005"
            && d.severity == Severity::Warn
            && d.message.contains("no supervisor")));
    }

    #[test]
    fn sa008_bad_downtime_factor() {
        let mut s = spec();
        s.roles[0].processes[1].downtime_factor = f64::NAN;
        s.roles[0].processes[2].downtime_factor = -2.0;
        let r = audit_spec(&s);
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "SA008").count(),
            2
        );
    }

    #[test]
    fn collects_multiple_findings_in_one_pass() {
        let mut s = spec();
        s.roles[0].processes[0].cp_required = 9; // SA003
        s.roles[1].processes[0].downtime_factor = -1.0; // SA008
        s.roles[2].processes[0].is_supervisor = true; // SA005 (two supervisors)
        let r = audit_spec(&s);
        assert!(r.has_code("SA003") && r.has_code("SA008") && r.has_code("SA005"));
        assert!(r.error_count() >= 3);
    }

    #[test]
    fn sa012_missing_assignment() {
        let s = spec();
        let mut t = Topology::new("Partial");
        let rack = t.add_rack();
        let host = t.add_host(rack);
        // Assign every controller role except Database nodes 1 and 2.
        for (_, role) in s.controller_roles() {
            for node in 0..s.nodes {
                if role.name == "Database" && node > 0 {
                    continue;
                }
                let vm = t.add_vm(host);
                t.assign(vm, &role.name, node);
            }
        }
        let r = audit_topology(&s, &t);
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA012" && d.path.contains("Database/2")));
        // Table III cross-check: the 2-of-3 Database quorums now have only
        // one instance, so they are unsatisfiable on this topology.
        assert!(r.has_code("SA003"));
    }

    #[test]
    fn sa012_unknown_role_and_out_of_range_node() {
        let s = spec();
        let mut t = Topology::small(&s);
        let rack = t.add_rack();
        let host = t.add_host(rack);
        let vm = t.add_vm(host);
        t.assign(vm, "Nonexistent", 0);
        t.assign(vm, "Config", 7);
        let r = audit_topology(&s, &t);
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA012" && d.message.contains("unknown role")));
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA012" && d.message.contains("outside the 3-node cluster")));
    }

    #[test]
    fn sa012_dangling_vm_from_json() {
        let s = spec();
        let mut topo = Topology::small(&s);
        // Round-trip through JSON, then corrupt one assignment's VM index.
        let json = sdnav_json::to_string(&topo);
        let corrupted = json.replacen("\"vm\":0", "\"vm\":99", 1);
        topo = sdnav_json::from_str(&corrupted).unwrap();
        let r = audit_topology(&s, &topo);
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA012" && d.message.contains("VM 99")));
    }

    #[test]
    fn paper_topologies_audit_clean() {
        let s = spec();
        for t in [
            Topology::small(&s),
            Topology::medium(&s),
            Topology::large(&s),
            Topology::small_three_racks(&s),
        ] {
            let r = audit_topology(&s, &t);
            assert!(r.is_clean(), "{}:\n{}", t.name(), r.render());
        }
    }
}
