//! Checks over parameter sets, simulator configurations, and CTMC
//! generators.

use sdnav_core::{HwParams, SwParams};
use sdnav_markov::Ctmc;
use sdnav_sim::SimConfig;

use crate::{AuditReport, Diagnostic};

fn check_prob(r: &mut AuditReport, path: &str, value: f64) {
    if value.is_nan() || !(0.0..=1.0).contains(&value) {
        r.push(Diagnostic::error(
            "SA008",
            path.to_owned(),
            format!("availability {value} is outside [0, 1] or NaN"),
            "availabilities are probabilities in [0, 1]",
        ));
    }
}

/// Lints the HW-centric parameter set: every availability must be a
/// probability (SA008). Reports all violations, unlike
/// [`HwParams::try_validate`] which stops at the first.
#[must_use]
pub fn audit_hw_params(params: &HwParams) -> AuditReport {
    let mut r = AuditReport::new();
    for (field, value) in [
        ("a_c", params.a_c),
        ("a_v", params.a_v),
        ("a_h", params.a_h),
        ("a_r", params.a_r),
    ] {
        check_prob(&mut r, &format!("hw_params/{field}"), value);
    }
    r
}

/// Lints the SW-centric parameter set (SA008).
#[must_use]
pub fn audit_sw_params(params: &SwParams) -> AuditReport {
    let mut r = AuditReport::new();
    for (field, value) in [
        ("process/auto", params.process.auto),
        ("process/manual", params.process.manual),
        ("a_v", params.a_v),
        ("a_h", params.a_h),
        ("a_r", params.a_r),
    ] {
        check_prob(&mut r, &format!("sw_params/{field}"), value);
    }
    r
}

/// Lints a simulator configuration:
///
/// * SA011 errors — everything [`SimConfig::try_validate`] rejects, plus
///   negative or non-finite MTTRs;
/// * SA009 warnings — MTTR ≥ MTBF on any element class, or a restart time
///   at or above the process MTBF (availability below 50%, almost always a
///   unit slip: hours where minutes were meant, or vice versa);
/// * SA011 warnings — statistical-quality smells: warm-up discarding half
///   the run or more, and batches shorter than 10× the slowest repair
///   (batch means would be strongly correlated, understating the
///   confidence interval).
#[must_use]
pub fn audit_sim_config(config: &SimConfig) -> AuditReport {
    let mut r = AuditReport::new();
    if let Err(e) = config.try_validate() {
        r.push(Diagnostic::error(
            "SA011",
            "sim",
            e.to_string(),
            "fix the configuration value; see SimConfig::try_validate",
        ));
    }
    let elements = [
        ("rack", config.rack),
        ("host", config.host),
        ("vm", config.vm),
    ];
    for (name, rates) in elements {
        if !rates.mttr.is_finite() || rates.mttr < 0.0 {
            r.push(Diagnostic::error(
                "SA011",
                format!("sim/{name}/mttr"),
                format!("{name} MTTR is {}", rates.mttr),
                "repair times must be finite and non-negative",
            ));
        } else if rates.mtbf.is_finite() && rates.mtbf > 0.0 && rates.mttr >= rates.mtbf {
            r.push(Diagnostic::warn(
                "SA009",
                format!("sim/{name}"),
                format!(
                    "{name} MTTR ({} h) is at or above its MTBF ({} h): availability ≤ 50%",
                    rates.mttr, rates.mtbf
                ),
                "this is usually a unit slip (hours vs minutes); check both values",
            ));
        }
    }
    for (name, restart) in [
        ("auto_restart", config.auto_restart),
        ("manual_restart", config.manual_restart),
    ] {
        if config.process_mtbf.is_finite()
            && config.process_mtbf > 0.0
            && restart.is_finite()
            && restart >= config.process_mtbf
        {
            r.push(Diagnostic::warn(
                "SA009",
                format!("sim/{name}"),
                format!(
                    "{name} ({restart} h) is at or above the process MTBF \
                     ({} h): availability ≤ 50%",
                    config.process_mtbf
                ),
                "this is usually a unit slip (hours vs minutes); check both values",
            ));
        }
    }
    if (0.5..1.0).contains(&config.warmup_fraction) {
        r.push(Diagnostic::warn(
            "SA011",
            "sim/warmup_fraction",
            format!(
                "warm-up discards {:.0}% of the run",
                config.warmup_fraction * 100.0
            ),
            "steady state is usually reached well before 50% of the horizon; \
             lengthen the horizon instead of the warm-up",
        ));
    }
    if config.horizon_hours.is_finite() && config.horizon_hours > 0.0 && config.batches >= 2 {
        let measured = config.horizon_hours * (1.0 - config.warmup_fraction.clamp(0.0, 1.0));
        let batch_len = measured / config.batches as f64;
        let slowest_repair = [
            config.rack.mttr,
            config.host.mttr,
            config.vm.mttr,
            config.manual_restart,
            config.supervisor_window,
        ]
        .into_iter()
        .filter(|v| v.is_finite())
        .fold(0.0_f64, f64::max);
        if batch_len < 10.0 * slowest_repair {
            r.push(Diagnostic::warn(
                "SA011",
                "sim/batches",
                format!(
                    "batch length {batch_len:.1} h is under 10x the slowest repair \
                     ({slowest_repair:.1} h); batch means will be correlated"
                ),
                "lengthen the horizon or reduce the batch count",
            ));
        }
    }
    r
}

/// Lints a CTMC generator rooted at `origin`:
///
/// * SA010 errors — a negative or non-finite off-diagonal rate, or a
///   generator row whose entries do not sum to zero (with the implied
///   diagonal `q_ii = −Σ q_ij` this flags non-finite rows);
/// * SA010 warnings — absorbing states (zero exit rate) and unreachable
///   states (zero in-rate): both make steady-state availability undefined
///   or trivial, which is almost never intended in a repairable model.
#[must_use]
pub fn audit_ctmc(ctmc: &Ctmc, origin: &str) -> AuditReport {
    let mut r = AuditReport::new();
    let n = ctmc.len();
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i == j {
                continue;
            }
            let rate = ctmc.rate(i, j);
            if !rate.is_finite() || rate < 0.0 {
                r.push(Diagnostic::error(
                    "SA010",
                    format!("{origin}/state{i}"),
                    format!("rate {i} -> {j} is {rate}"),
                    "transition rates must be finite and non-negative",
                ));
            }
            row_sum += rate;
        }
        // With the implied diagonal the row sums to exactly zero whenever
        // the off-diagonals are finite; a non-finite sum is the residue.
        if !(row_sum - ctmc.exit_rate(i)).abs().eq(&0.0) || !row_sum.is_finite() {
            r.push(Diagnostic::error(
                "SA010",
                format!("{origin}/state{i}"),
                format!("generator row {i} does not sum to zero"),
                "check the row's rates for overflow or NaN",
            ));
        }
    }
    if n > 1 {
        for i in 0..n {
            if ctmc.exit_rate(i) == 0.0 {
                r.push(Diagnostic::warn(
                    "SA010",
                    format!("{origin}/state{i}"),
                    format!("state {i} is absorbing (zero exit rate)"),
                    "repairable availability models need every state to be \
                     left eventually; add a repair transition",
                ));
            }
            let in_rate: f64 = (0..n).filter(|&j| j != i).map(|j| ctmc.rate(j, i)).sum();
            if in_rate == 0.0 {
                r.push(Diagnostic::warn(
                    "SA010",
                    format!("{origin}/state{i}"),
                    format!("state {i} is unreachable (zero in-rate)"),
                    "the state can only matter as the initial state; is it intended?",
                ));
            }
        }
    }
    r
}

/// Audits the two-state failure/repair chains implied by a simulator
/// configuration's rates (process, rack, host, VM). Chains are only built
/// for element classes with usable rates; broken rates are already flagged
/// by [`audit_sim_config`].
#[must_use]
pub fn audit_config_ctmcs(config: &SimConfig) -> AuditReport {
    let mut r = AuditReport::new();
    let pairs = [
        ("process", config.process_mtbf, config.auto_restart),
        ("rack", config.rack.mtbf, config.rack.mttr),
        ("host", config.host.mtbf, config.host.mttr),
        ("vm", config.vm.mtbf, config.vm.mttr),
    ];
    for (name, mtbf, mttr) in pairs {
        let usable = mtbf.is_finite() && mtbf > 0.0 && mttr.is_finite() && mttr > 0.0;
        if !usable {
            continue;
        }
        let mut chain = Ctmc::new(2);
        chain.add_transition(0, 1, 1.0 / mtbf);
        chain.add_transition(1, 0, 1.0 / mttr);
        r.merge(audit_ctmc(&chain, &format!("ctmc/{name}")));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use sdnav_core::Scenario;
    use sdnav_sim::{ConnectionModel, ElementRates};

    fn config() -> SimConfig {
        SimConfig::paper_defaults(Scenario::SupervisorNotRequired)
    }

    #[test]
    fn sa008_bad_hw_and_sw_params() {
        let hw = HwParams {
            a_c: 1.5,
            a_v: f64::NAN,
            ..HwParams::paper_defaults()
        };
        let r = audit_hw_params(&hw);
        assert_eq!(r.error_count(), 2);
        assert!(r.diagnostics().iter().all(|d| d.code == "SA008"));
        assert!(r.diagnostics()[0].path.contains("a_c"));

        let mut sw = SwParams::paper_defaults();
        sw.process.manual = -0.1;
        let r = audit_sw_params(&sw);
        assert_eq!(r.error_count(), 1);
        assert!(r.diagnostics()[0].path.contains("process/manual"));
        assert!(audit_sw_params(&SwParams::paper_defaults()).is_clean());
    }

    #[test]
    fn sa009_mttr_at_or_above_mtbf() {
        let mut c = config();
        c.host = ElementRates {
            mtbf: 10.0,
            mttr: 20.0,
        };
        let r = audit_sim_config(&c);
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "SA009")
            .expect("SA009 reported");
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.path.contains("host"));
        assert!(d.message.contains("unit slip") || d.hint.contains("unit slip"));
    }

    #[test]
    fn sa009_restart_above_process_mtbf() {
        let mut c = config();
        c.manual_restart = c.process_mtbf * 2.0;
        let r = audit_sim_config(&c);
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA009" && d.path.contains("manual_restart")));
    }

    #[test]
    fn sa011_config_errors_are_mapped() {
        let mut c = config();
        c.batches = 1;
        let r = audit_sim_config(&c);
        assert!(r.diagnostics().iter().any(|d| d.code == "SA011"
            && d.severity == Severity::Error
            && d.message.contains("two batches")));

        let mut c = config();
        c.connection = ConnectionModel::Failover {
            rediscovery_hours: 0.0,
        };
        assert!(audit_sim_config(&c).has_code("SA011"));

        let mut c = config();
        c.vm.mttr = f64::NAN;
        let r = audit_sim_config(&c);
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA011" && d.path == "sim/vm/mttr"));
    }

    #[test]
    fn sa011_warmup_and_batch_length_warnings() {
        let mut c = config();
        c.warmup_fraction = 0.6;
        let r = audit_sim_config(&c);
        assert!(r.diagnostics().iter().any(|d| d.code == "SA011"
            && d.severity == Severity::Warn
            && d.path.contains("warmup")));

        let mut c = config();
        c.horizon_hours = 2000.0; // 20 batches x 95 h < 10 x 48 h rack repair
        let r = audit_sim_config(&c);
        assert!(r.diagnostics().iter().any(|d| d.code == "SA011"
            && d.severity == Severity::Warn
            && d.path.contains("batches")));
    }

    #[test]
    fn sa010_absorbing_and_unreachable_states() {
        let mut chain = Ctmc::new(2);
        chain.add_transition(0, 1, 1.0);
        let r = audit_ctmc(&chain, "ctmc/test");
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA010" && d.message.contains("absorbing")));
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA010" && d.message.contains("unreachable")));
        assert_eq!(r.warning_count(), 2);
        assert!(!r.has_errors());
    }

    #[test]
    fn sa010_healthy_chains_are_clean() {
        let mut chain = Ctmc::new(3);
        for i in 0..2 {
            chain.add_transition(i, i + 1, 0.5);
            chain.add_transition(i + 1, i, 2.0);
        }
        assert!(audit_ctmc(&chain, "ctmc/test").is_clean());
        // Single-state chains are trivially fine.
        assert!(audit_ctmc(&Ctmc::new(1), "ctmc/one").is_clean());
        assert!(audit_config_ctmcs(&config()).is_clean());
    }

    #[test]
    fn paper_config_audits_clean() {
        for scenario in [
            Scenario::SupervisorRequired,
            Scenario::SupervisorNotRequired,
        ] {
            let r = audit_sim_config(&SimConfig::paper_defaults(scenario));
            assert!(r.is_clean(), "{}", r.render());
        }
    }
}
