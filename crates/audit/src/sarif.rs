//! SARIF 2.1.0 output for audit reports.
//!
//! [SARIF](https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html)
//! is the interchange format GitHub code scanning ingests: uploading the
//! lint gate's report annotates findings inline on pull requests. The
//! emitter maps each [`Diagnostic`](crate::Diagnostic) to a SARIF result
//! (model paths become logical locations; the linted file, when known,
//! becomes the physical location) and ships the full SA001–SA035 rule
//! catalog as `tool.driver.rules` metadata.
//!
//! [`validate_sarif`] checks a document against the subset of the 2.1.0
//! schema GitHub requires (offline — no schema fetch), and is what the
//! test suite runs against every emitted report.

use sdnav_json::Json;

use crate::{AuditReport, Severity};

/// The stable rule catalog: `(id, short description)` for every code the
/// analysis pass can emit.
pub const RULES: &[(&str, &str)] = &[
    (
        "SA001",
        "Spec structure: zero-node cluster or empty role list",
    ),
    ("SA002", "Duplicate role or process names"),
    (
        "SA003",
        "Quorum requirement exceeds the available instances",
    ),
    (
        "SA004",
        "Grouped processes disagree about their block's quorum",
    ),
    ("SA005", "Supervisor and restart-mode configuration"),
    ("SA006", "Degenerate k-of-n structure"),
    (
        "SA007",
        "Dead RBD unit: zero structural Birnbaum importance",
    ),
    ("SA008", "Probability out of [0, 1] or NaN"),
    ("SA009", "MTTR at or above MTBF: availability below 50%"),
    ("SA010", "CTMC generator sanity"),
    ("SA011", "Simulator configuration sanity"),
    ("SA012", "Topology does not fit the spec"),
    ("SA013", "MTBF/MTTR pair mixes units"),
    ("SA014", "FIT-for-hours magnitude slip in a mean time"),
    ("SA015", "Rate or time used where a probability is expected"),
    (
        "SA016",
        "CTMC rates disagree with the spec's declared availability",
    ),
    (
        "SA017",
        "Simulation horizon too short for the model's rates",
    ),
    (
        "SA018",
        "Specs of one sweep grid disagree about a field's unit",
    ),
    ("SA019", "Unresolvable or ambiguous unit"),
    ("SA020", "Campaign target does not exist in the deployment"),
    (
        "SA021",
        "Campaign injection scheduled at or beyond the horizon",
    ),
    (
        "SA022",
        "Maintenance window(s) take down a control-plane quorum",
    ),
    ("SA023", "Campaign declares a repair-crew pool of zero"),
    (
        "SA024",
        "CTMC is reducible: multiple closed communicating classes",
    ),
    ("SA025", "CTMC has transient states that drain to zero"),
    ("SA026", "CTMC generator is stiff (rate spread above 1e6)"),
    (
        "SA027",
        "Injections hold overlapping windows on the same target",
    ),
    (
        "SA028",
        "Failure + maintenance windows provably break a CP quorum",
    ),
    ("SA029", "Schedule provably starves the repair-crew pool"),
    ("SA030", "Sweep grid contains duplicate work cells"),
    (
        "SA031",
        "Dominated chaos crew-count cells measure the same system",
    ),
    ("SA032", "Predicted sweep cost exceeds the event budget"),
    (
        "SA033",
        "Consensus election-timeout floor does not exceed the heartbeat",
    ),
    (
        "SA034",
        "Consensus cluster too small for its declared fault mix",
    ),
    (
        "SA035",
        "Consensus quorum unreachable under the declared byzantine count",
    ),
    (
        "DL000",
        "detlint suppression hygiene: unused or reason-less allow",
    ),
    (
        "DL001",
        "HashMap/HashSet iteration order can leak into results",
    ),
    (
        "DL002",
        "Wall-clock reading (Instant/SystemTime) near result values",
    ),
    (
        "DL003",
        "Thread-order-sensitive floating-point accumulation",
    ),
    ("DL004", "Randomly seeded hashing in keyed state"),
    ("DL005", "Thread identity leaking into values"),
    ("DL006", "catch_unwind discarding the panic payload"),
    ("DL007", "Ambient std::env read outside crates/cli"),
    (
        "DL008",
        "Schema version literal bypassing sdnav_json::schema",
    ),
    ("DL009", "Lossy as-cast in fingerprint/WAL framing code"),
    ("DL010", "Public API returning a hash-ordered container"),
];

/// Splits a `path/to/file.rs:42`-style diagnostic path (as the detlint
/// source scan emits) into its file URI and 1-based line. Model paths
/// (`spec/roles/...`) don't match and return `None`.
fn file_line_span(path: &str) -> Option<(&str, u32)> {
    let (file, line) = path.rsplit_once(':')?;
    if !file.ends_with(".rs") {
        return None;
    }
    line.parse::<u32>().ok().map(|n| (file, n))
}

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warn => "warning",
        Severity::Info => "note",
    }
}

/// Renders a report as a SARIF 2.1.0 document with a single run.
///
/// `artifact` is the URI of the linted file, when one exists (fixtures,
/// `--spec FILE`); findings then carry a physical location GitHub can
/// anchor annotations to. Built-in models have no file, so their findings
/// carry only logical locations (the diagnostic's model path).
#[must_use]
pub fn to_sarif(report: &AuditReport, artifact: Option<&str>) -> Json {
    let rules: Vec<Json> = RULES
        .iter()
        .map(|(id, desc)| {
            Json::obj(vec![
                ("id", Json::str(*id)),
                ("name", Json::str(*id)),
                (
                    "shortDescription",
                    Json::obj(vec![("text", Json::str(*desc))]),
                ),
            ])
        })
        .collect();
    let results: Vec<Json> = report
        .diagnostics()
        .iter()
        .map(|d| {
            let rule_index = RULES
                .iter()
                .position(|(id, _)| *id == d.code)
                .unwrap_or(usize::MAX);
            let mut location = vec![(
                "logicalLocations",
                Json::Arr(vec![Json::obj(vec![
                    ("fullyQualifiedName", Json::str(d.path.clone())),
                    ("kind", Json::str("member")),
                ])]),
            )];
            if let Some(uri) = artifact {
                let mut physical =
                    vec![("artifactLocation", Json::obj(vec![("uri", Json::str(uri))]))];
                if let Some((_, line)) = file_line_span(&d.path) {
                    physical.push((
                        "region",
                        Json::obj(vec![("startLine", Json::Num(f64::from(line)))]),
                    ));
                }
                location.push(("physicalLocation", Json::obj(physical)));
            } else if let Some((file, line)) = file_line_span(&d.path) {
                // Source-scan diagnostics carry their own file:line span;
                // each finding anchors to its own artifact.
                location.push((
                    "physicalLocation",
                    Json::obj(vec![
                        (
                            "artifactLocation",
                            Json::obj(vec![("uri", Json::str(file))]),
                        ),
                        (
                            "region",
                            Json::obj(vec![("startLine", Json::Num(f64::from(line)))]),
                        ),
                    ]),
                ));
            }
            let text = if d.hint.is_empty() {
                d.message.clone()
            } else {
                format!("{} ({})", d.message, d.hint)
            };
            let mut fields = vec![
                ("ruleId", Json::str(d.code)),
                ("level", Json::str(level(d.severity))),
                ("message", Json::obj(vec![("text", Json::str(text))])),
                ("locations", Json::Arr(vec![Json::obj(location)])),
            ];
            if rule_index != usize::MAX {
                fields.insert(1, ("ruleIndex", Json::Num(rule_index as f64)));
            }
            Json::obj(fields)
        })
        .collect();
    let driver = Json::obj(vec![
        ("name", Json::str("sdnav-audit")),
        (
            "informationUri",
            Json::str("https://github.com/sdn-availability/sdn-availability"),
        ),
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        ("rules", Json::Arr(rules)),
    ]);
    Json::obj(vec![
        (
            "$schema",
            Json::str(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
            ),
        ),
        ("version", Json::str("2.1.0")),
        (
            "runs",
            Json::Arr(vec![Json::obj(vec![
                ("tool", Json::obj(vec![("driver", driver)])),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ])
}

fn require_str<'a>(v: &'a Json, field: &str, at: &str) -> Result<&'a str, String> {
    v.get(field)
        .ok_or_else(|| format!("{at}: missing required property `{field}`"))?
        .as_str()
        .map_err(|_| format!("{at}: `{field}` must be a string"))
}

fn require_arr<'a>(v: &'a Json, field: &str, at: &str) -> Result<&'a [Json], String> {
    v.get(field)
        .ok_or_else(|| format!("{at}: missing required property `{field}`"))?
        .as_arr()
        .map_err(|_| format!("{at}: `{field}` must be an array"))
}

/// Structurally validates a document against the SARIF 2.1.0 schema subset
/// GitHub code scanning requires: the version marker, at least one run
/// with a named tool driver, well-formed rule metadata, and results with a
/// `ruleId`, a valid `level`, a message text, and well-formed locations.
///
/// # Errors
///
/// Returns a message naming the first violated schema constraint.
pub fn validate_sarif(doc: &Json) -> Result<(), String> {
    if require_str(doc, "version", "sarifLog")? != "2.1.0" {
        return Err("sarifLog: `version` must be \"2.1.0\"".to_owned());
    }
    let runs = require_arr(doc, "runs", "sarifLog")?;
    if runs.is_empty() {
        return Err("sarifLog: `runs` must not be empty".to_owned());
    }
    for (i, run) in runs.iter().enumerate() {
        let at = format!("runs[{i}]");
        let tool = run
            .get("tool")
            .ok_or_else(|| format!("{at}: missing required property `tool`"))?;
        let driver = tool
            .get("driver")
            .ok_or_else(|| format!("{at}.tool: missing required property `driver`"))?;
        require_str(driver, "name", &format!("{at}.tool.driver"))?;
        if let Some(rules) = driver.get("rules") {
            let rules = rules
                .as_arr()
                .map_err(|_| format!("{at}.tool.driver: `rules` must be an array"))?;
            for (j, rule) in rules.iter().enumerate() {
                require_str(rule, "id", &format!("{at}.tool.driver.rules[{j}]"))?;
            }
        }
        let results = require_arr(run, "results", &at)?;
        for (j, result) in results.iter().enumerate() {
            let at = format!("{at}.results[{j}]");
            require_str(result, "ruleId", &at)?;
            let lvl = require_str(result, "level", &at)?;
            if !["none", "note", "warning", "error"].contains(&lvl) {
                return Err(format!("{at}: invalid `level` \"{lvl}\""));
            }
            let message = result
                .get("message")
                .ok_or_else(|| format!("{at}: missing required property `message`"))?;
            require_str(message, "text", &format!("{at}.message"))?;
            if let Some(locations) = result.get("locations") {
                let locations = locations
                    .as_arr()
                    .map_err(|_| format!("{at}: `locations` must be an array"))?;
                for (k, loc) in locations.iter().enumerate() {
                    let at = format!("{at}.locations[{k}]");
                    if let Some(logical) = loc.get("logicalLocations") {
                        let logical = logical
                            .as_arr()
                            .map_err(|_| format!("{at}: `logicalLocations` must be an array"))?;
                        for (m, l) in logical.iter().enumerate() {
                            require_str(
                                l,
                                "fullyQualifiedName",
                                &format!("{at}.logicalLocations[{m}]"),
                            )?;
                        }
                    }
                    if let Some(physical) = loc.get("physicalLocation") {
                        let art = physical.get("artifactLocation").ok_or_else(|| {
                            format!("{at}.physicalLocation: missing `artifactLocation`")
                        })?;
                        require_str(
                            art,
                            "uri",
                            &format!("{at}.physicalLocation.artifactLocation"),
                        )?;
                        if let Some(region) = physical.get("region") {
                            let start = region.get("startLine").ok_or_else(|| {
                                format!("{at}.physicalLocation.region: missing `startLine`")
                            })?;
                            let n = start.as_f64().map_err(|_| {
                                format!(
                                    "{at}.physicalLocation.region: `startLine` must be a number"
                                )
                            })?;
                            if n < 1.0 || n.fract() != 0.0 {
                                return Err(format!(
                                    "{at}.physicalLocation.region: `startLine` must be a positive integer"
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{audit_model, Diagnostic};
    use sdnav_core::ControllerSpec;

    fn sample_report() -> AuditReport {
        let mut r = AuditReport::new();
        r.push(Diagnostic::error("SA003", "spec/x", "too big", "shrink it"));
        r.push(Diagnostic::warn(
            "SA014",
            "spec/rates/rack/mtbf",
            "slip",
            "",
        ));
        r.push(Diagnostic::info("SA006", "rbd/cp", "trivial", "simplify"));
        r
    }

    #[test]
    fn emitted_sarif_validates() {
        let doc = to_sarif(&sample_report(), Some("tests/fixtures/x.json"));
        validate_sarif(&doc).unwrap();
        // And survives a serialization round trip.
        let text = doc.to_pretty();
        let back = Json::parse(&text).unwrap();
        validate_sarif(&back).unwrap();
    }

    #[test]
    fn clean_report_emits_empty_results() {
        let doc = to_sarif(&audit_model(&ControllerSpec::opencontrail_3x()), None);
        validate_sarif(&doc).unwrap();
        let runs = doc.field("runs").unwrap().as_arr().unwrap();
        assert!(runs[0]
            .field("results")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        // The rule catalog is complete regardless.
        let rules = runs[0]
            .field("tool")
            .unwrap()
            .field("driver")
            .unwrap()
            .field("rules")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(rules.len(), 46);
    }

    #[test]
    fn severity_maps_to_sarif_levels() {
        let doc = to_sarif(&sample_report(), None);
        let runs = doc.field("runs").unwrap().as_arr().unwrap();
        let results = runs[0].field("results").unwrap().as_arr().unwrap();
        let levels: Vec<&str> = results
            .iter()
            .map(|r| r.field("level").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(levels, ["error", "warning", "note"]);
        // Hints fold into the message text.
        let msg = results[0]
            .field("message")
            .unwrap()
            .field("text")
            .unwrap()
            .as_str()
            .unwrap();
        assert!(msg.contains("too big") && msg.contains("shrink it"));
    }

    #[test]
    fn physical_location_only_with_artifact() {
        let with = to_sarif(&sample_report(), Some("a.json"));
        let without = to_sarif(&sample_report(), None);
        assert!(with.to_pretty().contains("physicalLocation"));
        assert!(!without.to_pretty().contains("physicalLocation"));
        validate_sarif(&with).unwrap();
        validate_sarif(&without).unwrap();
    }

    #[test]
    fn source_scan_paths_become_regions() {
        let mut r = AuditReport::new();
        r.push(Diagnostic::error(
            "DL002",
            "crates/grid/src/lib.rs:922",
            "clock",
            "use metrics",
        ));
        let doc = to_sarif(&r, None);
        validate_sarif(&doc).unwrap();
        let text = doc.to_pretty();
        assert!(
            text.contains("\"uri\": \"crates/grid/src/lib.rs\""),
            "{text}"
        );
        assert!(text.contains("\"startLine\": 922"), "{text}");
        // Model paths still carry no physical location without an artifact.
        assert!(!to_sarif(&sample_report(), None)
            .to_pretty()
            .contains("physicalLocation"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let bad_version = Json::parse(r#"{"version": "2.0.0", "runs": []}"#).unwrap();
        assert!(validate_sarif(&bad_version).unwrap_err().contains("2.1.0"));

        let empty_runs = Json::parse(r#"{"version": "2.1.0", "runs": []}"#).unwrap();
        assert!(validate_sarif(&empty_runs).unwrap_err().contains("empty"));

        let no_driver_name = Json::parse(
            r#"{"version": "2.1.0", "runs": [{"tool": {"driver": {}}, "results": []}]}"#,
        )
        .unwrap();
        assert!(validate_sarif(&no_driver_name)
            .unwrap_err()
            .contains("name"));

        let bad_level = Json::parse(
            r#"{"version": "2.1.0", "runs": [{"tool": {"driver": {"name": "x"}},
                "results": [{"ruleId": "SA001", "level": "fatal",
                             "message": {"text": "m"}}]}]}"#,
        )
        .unwrap();
        assert!(validate_sarif(&bad_level).unwrap_err().contains("fatal"));
    }
}
