//! Chaos-campaign lint pass (SA020–SA023, SA027–SA029).
//!
//! Campaigns are authored against a *deployment*, so most campaign defects
//! are only visible with the compiled simulation in hand: a target name
//! that does not resolve (SA020), an injection scheduled past the horizon
//! (SA021), windows that take a control-plane quorum below its required
//! member count (SA022/SA028), a declared crew pool of zero (SA023), and
//! the schedule-interference family (SA027–SA029). Like every other pass
//! in this crate, the audit collects *all* findings instead of stopping at
//! the first, and deliberately runs even on campaigns that
//! [`ChaosSpec::try_validate`] would reject, so seeded fixtures for each
//! code lint without tripping an earlier gate.
//!
//! This pass resolves targets and reports SA020/SA021/SA023 itself; every
//! window-based check is delegated to [`crate::schedule::audit_schedule`]
//! over the [`ScheduleIr`] built once per campaign.

use sdnav_chaos::{resolve_target, ChaosSpec, InjectionKind, TargetRef};
use sdnav_sim::Simulation;

use crate::ir::ScheduleIr;
use crate::schedule::audit_schedule;
use crate::{AuditReport, Diagnostic};

/// Lints a campaign against the deployment it will run on, reporting
/// SA020–SA023 and SA027–SA029.
///
/// | Code  | Severity | Check |
/// |-------|----------|-------|
/// | SA020 | error    | a target does not exist in the simulated deployment |
/// | SA021 | warn     | an injection's first occurrence is at or beyond the horizon — it can never fire |
/// | SA022 | warn     | maintenance windows (alone or overlapping) take a CP quorum below its required member count |
/// | SA023 | error    | the campaign declares a repair-crew pool of zero crews |
/// | SA027 | warn     | two injections hold overlapping windows on the same target — the later one is a silent no-op |
/// | SA028 | warn     | overlapping failure + maintenance windows provably take a CP quorum down |
/// | SA029 | warn     | schedule provably demands more concurrent hardware repairs than declared crews, or saturates total crew capacity |
#[must_use]
pub fn audit_campaign(campaign: &ChaosSpec, sim: &Simulation<'_>) -> AuditReport {
    let mut report = AuditReport::new();
    let horizon = sim.config().horizon_hours;

    if let Some(crews) = campaign.crews {
        if crews.count == 0 {
            report.push(Diagnostic::error(
                "SA023",
                "campaign/crews",
                "the campaign declares a repair-crew pool of zero crews, so no hardware repair can ever start",
                "declare at least one crew, or drop the `crews` block for unlimited crews",
            ));
        }
    }

    for inj in &campaign.injections {
        let path = format!("campaign/injections/{}", inj.label);
        let mut check = |target: &TargetRef| {
            // `leader` resolves at event time inside a consensus run, not
            // against the static deployment — never a SA020.
            if matches!(target, TargetRef::Leader) {
                return;
            }
            if resolve_target(target, sim).is_err() {
                report.push(Diagnostic::error(
                    "SA020",
                    &path,
                    format!("target {target} does not exist in the simulated deployment"),
                    "check the index against the topology (rack/host/vm) or the role, node, and process names against the spec",
                ));
            }
        };
        match &inj.kind {
            InjectionKind::Fail { target, .. }
            | InjectionKind::Maintenance { target, .. }
            | InjectionKind::Latent { target } => check(target),
            InjectionKind::CommonCause {
                trigger, members, ..
            } => {
                check(trigger);
                for member in members {
                    check(member);
                }
            }
        }

        if inj.at >= horizon && inj.at.is_finite() {
            report.push(Diagnostic::warn(
                "SA021",
                &path,
                format!(
                    "first occurrence at {} h is at or beyond the {horizon} h simulation horizon — the injection can never fire",
                    inj.at
                ),
                "move `at` inside the horizon or extend `horizon_hours`",
            ));
        }
    }

    let sched = ScheduleIr::build(campaign, sim);
    report.merge(audit_schedule(campaign, &sched, sim));

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnav_core::{ControllerSpec, Scenario, Topology};
    use sdnav_sim::SimConfig;

    fn small_sim<'a>(spec: &'a ControllerSpec, topo: &'a Topology) -> Simulation<'a> {
        let mut config = SimConfig::paper_defaults(Scenario::SupervisorNotRequired);
        config.horizon_hours = 10_000.0;
        config.compute_hosts = 2;
        Simulation::try_new(spec, topo, config).expect("valid simulation")
    }

    fn campaign(text: &str) -> ChaosSpec {
        sdnav_json::from_str(text).expect("valid campaign JSON")
    }

    #[test]
    fn clean_campaign_audits_clean() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        let c = campaign(
            r#"{"name": "clean", "crews": {"count": 2},
                "injections": [
                    {"label": "kill", "kind": "fail", "target": "rack:0",
                     "at": 100.0, "repair_hours": 24.0},
                    {"label": "maint", "kind": "maintenance", "target": "vm:0",
                     "at": 500.0, "duration_hours": 8.0}
                ]}"#,
        );
        let report = audit_campaign(&c, &sim);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn sa020_unknown_targets() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        let c = campaign(
            r#"{"name": "x", "injections": [
                {"label": "bad-rack", "kind": "fail", "target": "rack:99", "at": 1.0},
                {"label": "bad-member", "kind": "common_cause", "trigger": "rack:0",
                 "members": ["host:123"], "probability": 0.5, "at": 2.0},
                {"label": "bad-proc", "kind": "latent",
                 "target": "proc:NoSuchRole/0/nope", "at": 3.0}
            ]}"#,
        );
        let report = audit_campaign(&c, &sim);
        assert_eq!(report.error_count(), 3, "{}", report.render());
        assert!(report.has_code("SA020"));
    }

    #[test]
    fn sa021_beyond_horizon() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        let c = campaign(
            r#"{"name": "x", "injections": [
                {"label": "late", "kind": "fail", "target": "rack:0", "at": 10000.0}
            ]}"#,
        );
        let report = audit_campaign(&c, &sim);
        assert!(report.has_code("SA021"), "{}", report.render());
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn sa022_overlapping_maintenance_breaks_quorum() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        // Small = one rack: maintaining VMs 0 and 1 together leaves 1 of 3
        // controller nodes, below every 2-of-3 quorum.
        let c = campaign(
            r#"{"name": "x", "injections": [
                {"label": "m0", "kind": "maintenance", "target": "vm:0",
                 "at": 100.0, "duration_hours": 24.0},
                {"label": "m1", "kind": "maintenance", "target": "vm:1",
                 "at": 110.0, "duration_hours": 24.0}
            ]}"#,
        );
        let report = audit_campaign(&c, &sim);
        assert!(report.has_code("SA022"), "{}", report.render());
        // Exactly one finding despite both windows seeing the overlap.
        assert_eq!(report.warning_count(), 1, "{}", report.render());

        // Staggered windows are fine.
        let staggered = campaign(
            r#"{"name": "x", "injections": [
                {"label": "m0", "kind": "maintenance", "target": "vm:0",
                 "at": 100.0, "duration_hours": 24.0},
                {"label": "m1", "kind": "maintenance", "target": "vm:1",
                 "at": 200.0, "duration_hours": 24.0}
            ]}"#,
        );
        assert!(audit_campaign(&staggered, &sim).is_clean());
    }

    #[test]
    fn sa022_single_window_on_shared_hardware() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        // Small packs all three controller VMs in one rack: one rack-wide
        // maintenance window takes the whole control plane down by itself.
        let c = campaign(
            r#"{"name": "x", "injections": [
                {"label": "rackwork", "kind": "maintenance", "target": "rack:0",
                 "at": 100.0, "duration_hours": 4.0}
            ]}"#,
        );
        let report = audit_campaign(&c, &sim);
        assert!(report.has_code("SA022"), "{}", report.render());
    }

    #[test]
    fn sa022_periodic_windows_report_once() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        let c = campaign(
            r#"{"name": "x", "injections": [
                {"label": "weekly", "kind": "maintenance", "target": "rack:0",
                 "at": 100.0, "every": 168.0, "duration_hours": 4.0}
            ]}"#,
        );
        let report = audit_campaign(&c, &sim);
        let sa022 = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "SA022")
            .count();
        assert_eq!(sa022, 1, "{}", report.render());
    }

    #[test]
    fn sa023_zero_crews() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        let c = campaign(r#"{"name": "x", "crews": {"count": 0}, "injections": []}"#);
        let report = audit_campaign(&c, &sim);
        assert!(report.has_code("SA023"), "{}", report.render());
        assert!(report.has_errors());
    }
}
