//! Static model-analysis pass over controller specs, topologies, derived
//! RBD/CTMC structures, and simulator configurations.
//!
//! The analytic layers of this workspace validate their inputs eagerly and
//! fail fast on the *first* problem (panicking constructors, `Result`
//! validators). That is the right behavior inside a computation, but a
//! terrible user experience when authoring a controller model: you fix one
//! field, re-run, and hit the next error. This crate is the complementary
//! *lint* pass — it walks the whole model, collects **every** finding, and
//! reports each as a structured [`Diagnostic`]:
//!
//! * a stable code (`SA001` … `SA035`) that scripts and CI can match on,
//! * a [`Severity`] (`Error` = the model is wrong, `Warn` = the model is
//!   suspicious, `Info` = worth knowing),
//! * the path of the offending element
//!   (`spec/roles/Config/processes/redis`),
//! * a human message and a fix hint.
//!
//! # Diagnostic codes
//!
//! | Code  | Severity   | Check |
//! |-------|------------|-------|
//! | SA001 | error      | spec structure: zero-node cluster, empty role list |
//! | SA002 | error      | duplicate role / process names |
//! | SA003 | error      | quorum requirement exceeds the available instances (Table III vs cluster size, and vs topology assignments) |
//! | SA004 | error      | grouped processes disagree about their block's quorum |
//! | SA005 | error/warn | supervisor & restart-mode configuration (Table II): multiple supervisors, auto-restart without a supervisor, auto-restarted supervisor |
//! | SA006 | error/warn | k-of-n structure: `k > n`, empty parallel, trivial `k = 0` / empty series |
//! | SA007 | warn       | dead RBD unit: zero structural Birnbaum importance |
//! | SA008 | error      | probability out of `[0, 1]` or NaN (params, unit availabilities, downtime factors) |
//! | SA009 | warn       | MTTR ≥ MTBF: availability below 50%, likely a unit slip |
//! | SA010 | error/warn | CTMC generator sanity: row sums, negative rates, absorbing / unreachable states |
//! | SA011 | error/warn | simulator config: invalid values, excessive warm-up, batches too short for the slowest repair |
//! | SA012 | error      | topology ↔ spec consistency: missing assignments, unknown roles, dangling VMs, out-of-range nodes |
//! | SA013 | error/warn | MTBF/MTTR pair mixes units: FIT on a repair field, a rate where a mean time is expected |
//! | SA014 | warn       | FIT-for-hours magnitude slip: a bare MTBF implausible as hours but plausible as a FIT count (auto-fixable) |
//! | SA015 | error      | rate or time used where a probability is expected (`a_v`/`a_h`/`a_r`) |
//! | SA016 | warn       | an element's failure/repair CTMC rates imply an availability that contradicts the spec's declared one |
//! | SA017 | warn       | sim time-unit drift: overridden horizon under 10× the resolved process MTBF |
//! | SA018 | warn       | specs of one sweep grid declare the same field in different units |
//! | SA019 | error/warn | unresolvable or ambiguous unit: no plausible reading as hours, FIT, or a rate |
//! | SA020 | error      | chaos campaign names a target that does not exist in the deployment |
//! | SA021 | warn       | chaos injection scheduled at or beyond the simulation horizon — it can never fire |
//! | SA022 | warn       | maintenance window(s), alone or overlapping, take a CP quorum below its required member count |
//! | SA023 | error      | chaos campaign declares a repair-crew pool of zero crews |
//! | SA024 | warn       | CTMC generator is reducible: multiple closed communicating classes, steady state depends on the initial state |
//! | SA025 | warn       | CTMC has transient states: probability drains out and never returns |
//! | SA026 | warn       | CTMC generator is stiff: positive-rate spread above 1e6 |
//! | SA027 | warn       | two chaos injections hold overlapping windows on the same target — the later one is a silent no-op |
//! | SA028 | warn       | overlapping failure + maintenance windows provably take a CP quorum down |
//! | SA029 | warn       | chaos schedule provably starves the repair-crew pool (concurrency or total capacity) |
//! | SA030 | error      | sweep grid contains bit-identical duplicate work cells |
//! | SA031 | warn       | dominated chaos crew-count cells: values past the hardware element count are pairwise equivalent |
//! | SA032 | warn       | predicted sweep cost exceeds the event budget — inspect with `sweep --dry-run` |
//! | SA033 | error      | consensus election-timeout floor does not exceed the heartbeat interval |
//! | SA034 | warn       | consensus cluster smaller than `2·F_BFT + 2·F_crash + 1` for its declared fault mix |
//! | SA035 | error      | consensus commit quorum unreachable from honest votes under the declared byzantine count |
//!
//! SA013–SA019 come from the unit-inference dataflow pass ([`audit_units`]):
//! declared units win, bare values are classified by per-field magnitude
//! bands, and the *resolved* values flow into a derived parameter set, RBD,
//! CTMCs, and simulator config that are re-audited under
//! `spec/rates/derived/`. SA020–SA023 and SA027–SA029 come from the
//! chaos-campaign pass ([`audit_campaign`]), which lints a fault-injection
//! campaign — and its [`ScheduleIr`] of statically provable down-windows —
//! against the deployment it will run on. SA024–SA026 are the whole-graph
//! CTMC structural checks ([`audit_ctmc_structure`]); SA030–SA032 are the
//! sweep-grid checks ([`audit_grid`]), backed by the same static cost
//! model that powers `sdnav sweep --dry-run` ([`SweepPlan`]);
//! SA033–SA035 come from the consensus-block pass ([`audit_consensus`]).
//! [`fix_spec`]/[`fix_block`] rewrite the trivially
//! auto-fixable findings ([`FIXABLE_CODES`]), and [`to_sarif`] renders any
//! report as SARIF 2.1.0 for CI annotation.
//!
//! Whole-study passes share the semantic model IR ([`ModelIr`]): the
//! topologies, RBDs, parameter sets, simulator configurations, and element
//! CTMCs are derived **once** per study and every pass walks the same
//! typed graph instead of re-deriving its own view.
//!
//! # Quickstart
//!
//! ```
//! use sdnav_audit::{audit_model, audit_spec};
//! use sdnav_core::ControllerSpec;
//!
//! // The paper's reference model is clean.
//! let spec = ControllerSpec::opencontrail_3x();
//! assert!(audit_model(&spec).is_clean());
//!
//! // A seeded defect is caught with its code.
//! let mut broken = spec.clone();
//! broken.roles[0].processes[0].cp_required = 7;
//! let report = audit_spec(&broken);
//! assert!(report.has_code("SA003"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod consensus;
mod cost;
mod dynamics;
mod fix;
mod ir;
mod rbd;
mod reach;
mod sarif;
mod schedule;
mod spec;
mod units;

use std::fmt;

use sdnav_core::ControllerSpec;
use sdnav_json::{Json, ToJson};

pub use campaign::audit_campaign;
pub use consensus::audit_consensus;
pub use cost::{audit_grid, CachePrediction, PlanCell, SweepPlan};
pub use dynamics::{
    audit_config_ctmcs, audit_ctmc, audit_hw_params, audit_sim_config, audit_sw_params,
};
pub use fix::{fix_block, fix_spec, FixEdit, FixPlan, FIXABLE_CODES};
pub use ir::{config_element_ctmcs, ElementCtmc, ModelIr, ScheduleIr, ScheduleWindow, WindowKind};
pub use rbd::{audit_block, cp_rbd, dp_rbd};
pub use reach::audit_ctmc_structure;
pub use sarif::{to_sarif, validate_sarif, RULES};
pub use schedule::audit_schedule;
pub use spec::{audit_spec, audit_topology};
pub use units::{audit_spec_set, audit_units};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; never fails a lint run.
    Info,
    /// The model is suspicious: it evaluates, but probably not to what the
    /// author intended.
    Warn,
    /// The model is wrong: evaluation would panic, error, or produce
    /// meaningless numbers.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered output and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl ToJson for Severity {
    fn to_json(&self) -> Json {
        Json::str(self.as_str())
    }
}

/// One finding of the analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`SA001` … `SA035`), safe to match on in scripts.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Slash-separated path of the offending element, e.g.
    /// `spec/roles/Config/processes/redis`.
    pub path: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// Creates an [`Severity::Error`] diagnostic.
    #[must_use]
    pub fn error(
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            path: path.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Creates a [`Severity::Warn`] diagnostic.
    #[must_use]
    pub fn warn(
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warn,
            ..Diagnostic::error(code, path, message, hint)
        }
    }

    /// Creates a [`Severity::Info`] diagnostic.
    #[must_use]
    pub fn info(
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(code, path, message, hint)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.path, self.message
        )
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("code", Json::str(self.code)),
            ("severity", self.severity.to_json()),
            ("path", Json::str(self.path.clone())),
            ("message", Json::str(self.message.clone())),
            ("hint", Json::str(self.hint.clone())),
        ])
    }
}

/// The collected findings of an analysis pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        AuditReport::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: AuditReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All findings, in check order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings at `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of [`Severity::Error`] findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of [`Severity::Warn`] findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Whether any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the report has no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether some finding carries `code`.
    #[must_use]
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Human-readable rendering: one line per finding (worst first), an
    /// indented hint under each, and a summary line.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut ordered: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        ordered.sort_by_key(|d| std::cmp::Reverse(d.severity));
        for d in ordered {
            let _ = writeln!(out, "{d}");
            if !d.hint.is_empty() {
                let _ = writeln!(out, "    hint: {}", d.hint);
            }
        }
        if self.is_clean() {
            out.push_str("audit: clean (no findings)\n");
        } else {
            let _ = writeln!(
                out,
                "audit: {} error(s), {} warning(s), {} info",
                self.error_count(),
                self.warning_count(),
                self.count(Severity::Info)
            );
        }
        out
    }
}

impl ToJson for AuditReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("errors", self.error_count().to_json()),
            ("warnings", self.warning_count().to_json()),
            ("diagnostics", self.diagnostics.to_json()),
        ])
    }
}

/// Full analysis pass over everything derivable from a spec with the
/// paper's default parameters. Builds the semantic model IR once
/// ([`ModelIr::build`]) and runs every whole-study pass over it via
/// [`audit_ir`].
///
/// This is what `sdnav lint` runs.
#[must_use]
pub fn audit_model(spec: &ControllerSpec) -> AuditReport {
    audit_ir(&ModelIr::build(spec))
}

/// Runs every whole-study pass over an already-built model IR: the spec
/// itself, the reference topologies, the derived control-plane and
/// data-plane RBDs, the parameter sets, both scenarios' simulator
/// configurations, and — per element CTMC — the per-row generator checks
/// (SA010) plus the whole-graph structural checks (SA024–SA026).
#[must_use]
pub fn audit_ir(ir: &ModelIr<'_>) -> AuditReport {
    let mut report = audit_spec(ir.spec);
    for topo in &ir.topologies {
        report.merge(audit_topology(ir.spec, topo));
    }
    report.merge(audit_block(&ir.cp_rbd, "rbd/cp"));
    report.merge(audit_block(&ir.dp_rbd, "rbd/dp"));
    report.merge(audit_hw_params(&ir.hw_params));
    report.merge(audit_sw_params(&ir.sw_params));
    for config in &ir.configs {
        report.merge(audit_sim_config(config));
    }
    for element in &ir.element_ctmcs {
        report.merge(audit_ctmc(&element.ctmc, &element.origin));
        report.merge(audit_ctmc_structure(&element.ctmc, &element.origin));
    }
    report.merge(audit_units(ir.spec));
    if let Some(c) = &ir.spec.consensus {
        report.merge(audit_consensus(c, "spec/consensus"));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_audits_clean() {
        let report = audit_model(&ControllerSpec::opencontrail_3x());
        assert!(
            report.is_clean(),
            "unexpected findings:\n{}",
            report.render()
        );
        assert!(report.render().contains("clean"));
    }

    #[test]
    fn kernel_mode_and_scaled_variants_audit_clean() {
        assert!(audit_model(&ControllerSpec::opencontrail_3x_kernel_mode()).is_clean());
        assert!(audit_model(&ControllerSpec::opencontrail_3x().scaled_cluster(5)).is_clean());
    }

    #[test]
    fn render_groups_errors_first_and_counts() {
        let mut report = AuditReport::new();
        report.push(Diagnostic::warn("SA009", "sim/rack", "w", "h"));
        report.push(Diagnostic::error("SA003", "spec/x", "e", "fix it"));
        let text = report.render();
        let err_pos = text.find("error[SA003]").unwrap();
        let warn_pos = text.find("warning[SA009]").unwrap();
        assert!(err_pos < warn_pos);
        assert!(text.contains("hint: fix it"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has_errors());
        assert!(report.has_code("SA003") && !report.has_code("SA001"));
    }

    #[test]
    fn report_serializes_to_json() {
        let mut report = AuditReport::new();
        report.push(Diagnostic::error("SA001", "spec", "no roles", "add roles"));
        let json = sdnav_json::to_string(&report);
        let value = Json::parse(&json).unwrap();
        assert_eq!(value.field("errors").unwrap().as_usize().unwrap(), 1);
        assert_eq!(value.field("warnings").unwrap().as_usize().unwrap(), 0);
        let diags = value.field("diagnostics").unwrap().as_arr().unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].field("code").unwrap().as_str().unwrap(), "SA001");
        assert_eq!(
            diags[0].field("severity").unwrap().as_str().unwrap(),
            "error"
        );
    }

    #[test]
    fn severity_orders_and_displays() {
        assert!(Severity::Error > Severity::Warn && Severity::Warn > Severity::Info);
        assert_eq!(Severity::Warn.to_string(), "warning");
    }
}
