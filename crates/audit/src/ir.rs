//! The semantic model IR: everything the audit passes analyze, derived
//! **once** per study instead of ad hoc inside each pass.
//!
//! Historically every pass re-derived its own view of the model —
//! `audit_model` built topologies and configs inline, the campaign pass
//! expanded maintenance windows privately, and a cost estimate would have
//! had to re-derive all of it again. The IR centralizes that derivation
//! into two typed graphs:
//!
//! * [`ModelIr`] — the per-spec study graph: reference topologies, the
//!   control-/data-plane RBDs, paper-default parameter sets, both
//!   scenarios' simulator configurations, and the named two-state
//!   failure/repair CTMC of every element class. Built by
//!   [`ModelIr::build`], consumed by [`crate::audit_ir`].
//! * [`ScheduleIr`] — the per-campaign schedule graph: each injection's
//!   resolved target plus every *statically provable* down-window
//!   (maintenance windows, and fail/common-cause-trigger windows with a
//!   fixed `repair_hours`), expanded across `every` repetitions up to the
//!   horizon. Consumed by the SA022 quorum check and the SA027–SA029
//!   schedule-interference checks in [`crate::schedule`].

use sdnav_chaos::{resolve_target, ChaosSpec, InjectionKind, MAX_OCCURRENCES};
use sdnav_core::{ControllerSpec, HwParams, Scenario, SwParams, Topology};
use sdnav_markov::Ctmc;
use sdnav_sim::{InjectTarget, SimConfig, Simulation};

use crate::rbd::{cp_rbd, dp_rbd};

/// A named element-class CTMC derived from a simulator configuration.
#[derive(Debug, Clone)]
pub struct ElementCtmc {
    /// Diagnostic path prefix, e.g. `ctmc/process`.
    pub origin: String,
    /// The two-state failure/repair chain.
    pub ctmc: Ctmc,
}

/// The typed study graph every whole-model audit pass walks: spec,
/// reference topologies, derived RBDs, paper-default parameters, both
/// scenarios' simulator configurations, and the element CTMCs they imply.
#[derive(Debug, Clone)]
pub struct ModelIr<'a> {
    /// The controller spec the study is built from.
    pub spec: &'a ControllerSpec,
    /// The paper's Small / Medium / Large reference topologies.
    pub topologies: Vec<Topology>,
    /// Control-plane reliability block diagram derived from the spec.
    pub cp_rbd: sdnav_blocks::Block,
    /// Data-plane reliability block diagram derived from the spec.
    pub dp_rbd: sdnav_blocks::Block,
    /// Paper-default hardware-model parameters.
    pub hw_params: HwParams,
    /// Paper-default software-model parameters.
    pub sw_params: SwParams,
    /// Paper-default simulator configurations, one per scenario, in
    /// `[SupervisorRequired, SupervisorNotRequired]` order.
    pub configs: Vec<SimConfig>,
    /// Per-config element CTMCs in config order (process, rack, host, vm
    /// for each config), skipping element classes whose rates are unusable.
    pub element_ctmcs: Vec<ElementCtmc>,
}

impl<'a> ModelIr<'a> {
    /// Derives the full study graph from a spec with the paper's default
    /// parameters. Derivation is total: element classes whose rates cannot
    /// form a CTMC are skipped here and reported by the config audit.
    #[must_use]
    pub fn build(spec: &'a ControllerSpec) -> Self {
        let configs: Vec<SimConfig> = [
            Scenario::SupervisorRequired,
            Scenario::SupervisorNotRequired,
        ]
        .into_iter()
        .map(SimConfig::paper_defaults)
        .collect();
        let element_ctmcs = configs.iter().flat_map(config_element_ctmcs).collect();
        ModelIr {
            spec,
            topologies: vec![
                Topology::small(spec),
                Topology::medium(spec),
                Topology::large(spec),
            ],
            cp_rbd: cp_rbd(spec),
            dp_rbd: dp_rbd(spec),
            hw_params: HwParams::paper_defaults(),
            sw_params: SwParams::paper_defaults(),
            configs,
            element_ctmcs,
        }
    }
}

/// Derives the named two-state failure/repair chains implied by a
/// simulator configuration, skipping element classes whose `(mtbf, mttr)`
/// pair cannot form a generator (those are SA008/SA011 findings, not IR).
#[must_use]
pub fn config_element_ctmcs(config: &SimConfig) -> Vec<ElementCtmc> {
    [
        ("process", config.process_mtbf, config.auto_restart),
        ("rack", config.rack.mtbf, config.rack.mttr),
        ("host", config.host.mtbf, config.host.mttr),
        ("vm", config.vm.mtbf, config.vm.mttr),
    ]
    .into_iter()
    .filter(|(_, mtbf, mttr)| mtbf.is_finite() && *mtbf > 0.0 && mttr.is_finite() && *mttr > 0.0)
    .map(|(name, mtbf, mttr)| {
        let mut ctmc = Ctmc::new(2);
        ctmc.add_transition(0, 1, 1.0 / mtbf);
        ctmc.add_transition(1, 0, 1.0 / mttr);
        ElementCtmc {
            origin: format!("ctmc/{name}"),
            ctmc,
        }
    })
    .collect()
}

/// What kind of statically provable down-window a schedule entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// A maintenance window: the target is administratively down for a
    /// declared `duration_hours`.
    Maintenance,
    /// A forced failure (or common-cause trigger) with a fixed
    /// `repair_hours`, so the outage duration is known statically.
    Repair,
}

/// One statically provable down-window of one injection occurrence.
#[derive(Debug, Clone)]
pub struct ScheduleWindow {
    /// Index of the injection in `campaign.injections`.
    pub injection: usize,
    /// Window start (hours).
    pub start: f64,
    /// Window end (hours, exclusive).
    pub end: f64,
    /// Maintenance or fixed-duration repair.
    pub kind: WindowKind,
    /// The resolved element the window takes down.
    pub target: InjectTarget,
    /// Distinct `(requirement, node)` CP member blocks the target takes
    /// down, from [`Simulation::cp_blocks_taken_down`].
    pub blocks: Vec<(usize, usize)>,
}

/// The per-campaign schedule graph: resolved targets and every statically
/// provable down-window, expanded across `every` repetitions up to the
/// horizon (capped at [`MAX_OCCURRENCES`] so the audit terminates even on
/// campaigns `compile()` would reject).
#[derive(Debug, Clone)]
pub struct ScheduleIr {
    /// Per-injection resolved primary target (`None` when unresolvable —
    /// an SA020 finding, reported separately).
    pub resolved: Vec<Option<InjectTarget>>,
    /// All provable down-windows, in injection order then occurrence order.
    pub windows: Vec<ScheduleWindow>,
}

impl ScheduleIr {
    /// Builds the schedule graph for `campaign` against the deployment
    /// `sim`, using `sim`'s horizon to bound occurrence expansion.
    #[must_use]
    pub fn build(campaign: &ChaosSpec, sim: &Simulation<'_>) -> Self {
        let horizon = sim.config().horizon_hours;
        let mut resolved = Vec::with_capacity(campaign.injections.len());
        let mut windows = Vec::new();
        for (i, inj) in campaign.injections.iter().enumerate() {
            let primary = match &inj.kind {
                InjectionKind::Fail { target, .. }
                | InjectionKind::Maintenance { target, .. }
                | InjectionKind::Latent { target } => resolve_target(target, sim).ok(),
                InjectionKind::CommonCause { trigger, .. } => resolve_target(trigger, sim).ok(),
            };
            resolved.push(primary);
            let (kind, duration) = match &inj.kind {
                InjectionKind::Maintenance { duration_hours, .. } => {
                    (WindowKind::Maintenance, Some(*duration_hours))
                }
                // Only a *fixed* repair time is statically provable; organic
                // repair (repair_hours: None) has stochastic duration.
                InjectionKind::Fail { repair_hours, .. }
                | InjectionKind::CommonCause { repair_hours, .. } => {
                    (WindowKind::Repair, *repair_hours)
                }
                InjectionKind::Latent { .. } => continue,
            };
            let (Some(target), Some(duration)) = (primary, duration) else {
                continue;
            };
            if !inj.at.is_finite() || !duration.is_finite() || duration <= 0.0 {
                continue;
            }
            let blocks = sim.cp_blocks_taken_down(target);
            let step = inj.every.filter(|e| e.is_finite() && *e > 0.0);
            let mut occurrence = 0usize;
            loop {
                let start = inj.at + occurrence as f64 * step.unwrap_or(0.0);
                if start >= horizon || occurrence >= MAX_OCCURRENCES {
                    break;
                }
                windows.push(ScheduleWindow {
                    injection: i,
                    start,
                    end: start + duration,
                    kind,
                    target,
                    blocks: blocks.clone(),
                });
                if step.is_none() {
                    break;
                }
                occurrence += 1;
            }
        }
        ScheduleIr { resolved, windows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnav_core::ControllerSpec;

    fn small_sim<'a>(spec: &'a ControllerSpec, topo: &'a Topology) -> Simulation<'a> {
        let mut config = SimConfig::paper_defaults(Scenario::SupervisorNotRequired);
        config.horizon_hours = 10_000.0;
        config.compute_hosts = 2;
        Simulation::try_new(spec, topo, config).expect("valid simulation")
    }

    #[test]
    fn model_ir_derives_everything_once() {
        let spec = ControllerSpec::opencontrail_3x();
        let ir = ModelIr::build(&spec);
        assert_eq!(ir.topologies.len(), 3);
        assert_eq!(ir.configs.len(), 2);
        // 4 element classes × 2 configs, all usable under paper defaults.
        assert_eq!(ir.element_ctmcs.len(), 8);
        assert!(ir.element_ctmcs.iter().any(|e| e.origin == "ctmc/rack"));
    }

    #[test]
    fn schedule_ir_expands_provable_windows_only() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        let c: ChaosSpec = sdnav_json::from_str(
            r#"{"name": "x", "injections": [
                {"label": "fixed", "kind": "fail", "target": "rack:0",
                 "at": 100.0, "repair_hours": 24.0},
                {"label": "organic", "kind": "fail", "target": "host:0",
                 "at": 200.0},
                {"label": "maint", "kind": "maintenance", "target": "vm:0",
                 "at": 1000.0, "every": 2000.0, "duration_hours": 4.0},
                {"label": "dormant", "kind": "latent", "target": "vm:1",
                 "at": 1.0}
            ]}"#,
        )
        .unwrap();
        let sched = ScheduleIr::build(&c, &sim);
        assert_eq!(sched.resolved.iter().filter(|r| r.is_some()).count(), 4);
        // One fixed repair window + 5 maintenance occurrences (1000, 3000,
        // 5000, 7000, 9000); the organic fail and the latent fault have no
        // provable duration.
        let repairs = sched
            .windows
            .iter()
            .filter(|w| w.kind == WindowKind::Repair)
            .count();
        let maints = sched
            .windows
            .iter()
            .filter(|w| w.kind == WindowKind::Maintenance)
            .count();
        assert_eq!((repairs, maints), (1, 5));
        let fixed = &sched.windows[0];
        assert_eq!((fixed.start, fixed.end), (100.0, 124.0));
        assert!(!fixed.blocks.is_empty(), "rack takes CP members down");
    }
}
