//! CTMC structural analysis (SA024–SA026): reachability and conditioning
//! checks that go beyond [`crate::audit_ctmc`]'s per-row sanity.
//!
//! SA010 looks at one row at a time (finite rates, row sums, zero exit or
//! in-rate). A generator can pass all of that and still be structurally
//! broken: two closed communicating classes make the steady state depend
//! on the initial distribution (SA024), a transient class drains to zero
//! and contributes nothing at steady state (SA025), and a rate spread of
//! many orders of magnitude makes the linear algebra ill-conditioned and
//! uniformization slow (SA026). These are whole-graph properties, found
//! here with one Tarjan SCC pass over the positive-rate edge set.

use sdnav_markov::Ctmc;

use crate::{AuditReport, Diagnostic};

/// Rate spread (max/min positive rate) beyond which a chain is flagged as
/// stiff. The paper's element chains top out near 1e5 (rack MTBF/MTTR), so
/// an order of magnitude of headroom keeps real models clean.
const STIFFNESS_RATIO: f64 = 1e6;

/// Strongly connected components of the positive-rate transition graph, by
/// iterative Tarjan. Returns each state's component id; ids are assigned
/// in reverse topological order (a component is numbered only after every
/// component it can reach).
fn sccs(ctmc: &Ctmc) -> Vec<usize> {
    let n = ctmc.len();
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i && ctmc.rate(i, j) > 0.0)
                .collect()
        })
        .collect();

    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        // Explicit DFS frame: (state, next child position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, child)) = frames.last() {
            if child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(child) {
                frames.last_mut().expect("nonempty frames").1 += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    comp
}

fn list_states(states: &[usize]) -> String {
    const SHOWN: usize = 6;
    let head: Vec<String> = states.iter().take(SHOWN).map(usize::to_string).collect();
    if states.len() > SHOWN {
        format!("{}, … ({} total)", head.join(", "), states.len())
    } else {
        head.join(", ")
    }
}

/// Whole-graph structural audit of a CTMC generator rooted at `origin`:
///
/// | Code  | Severity | Check |
/// |-------|----------|-------|
/// | SA024 | warn     | reducible chain: more than one closed communicating class, so the steady state depends on the initial state |
/// | SA025 | warn     | transient states: an open communicating class drains to zero and cannot carry steady-state probability |
/// | SA026 | warn     | stiff generator: positive-rate spread above 1e6, ill-conditioned for GTH and slow for uniformization |
///
/// Single-state chains are trivially sound. Non-finite or negative rates
/// are SA010's job; this pass only follows strictly positive rates.
#[must_use]
pub fn audit_ctmc_structure(ctmc: &Ctmc, origin: &str) -> AuditReport {
    let mut r = AuditReport::new();
    let n = ctmc.len();
    if n > 1 {
        let comp = sccs(ctmc);
        let comp_count = comp.iter().copied().max().map_or(0, |c| c + 1);
        // A component is closed iff no positive rate leaves it.
        let mut closed = vec![true; comp_count];
        for i in 0..n {
            for j in 0..n {
                if i != j && ctmc.rate(i, j) > 0.0 && comp[i] != comp[j] {
                    closed[comp[i]] = false;
                }
            }
        }
        let closed_count = closed.iter().filter(|&&c| c).count();
        if closed_count > 1 {
            let mut reps: Vec<usize> = Vec::new();
            for (c, _) in closed.iter().enumerate().filter(|(_, &c)| c) {
                reps.push(comp.iter().position(|&x| x == c).expect("nonempty SCC"));
            }
            r.push(Diagnostic::warn(
                "SA024",
                origin.to_owned(),
                format!(
                    "generator is reducible: {closed_count} closed communicating classes \
                     (e.g. containing states {}) — the steady state depends on the initial state",
                    list_states(&reps)
                ),
                "add transitions connecting the classes, or model them as separate chains",
            ));
        }
        let transient: Vec<usize> = (0..n).filter(|&i| !closed[comp[i]]).collect();
        if !transient.is_empty() {
            r.push(Diagnostic::warn(
                "SA025",
                origin.to_owned(),
                format!(
                    "state(s) {} are transient: probability drains out and never returns, \
                     so they carry zero steady-state weight",
                    list_states(&transient)
                ),
                "a repairable availability model should be able to return to every \
                 modeled state; add the missing repair transitions",
            ));
        }
    }

    let mut min_rate = f64::INFINITY;
    let mut max_rate: f64 = 0.0;
    for i in 0..n {
        for j in 0..n {
            let rate = ctmc.rate(i, j);
            if i != j && rate > 0.0 && rate.is_finite() {
                min_rate = min_rate.min(rate);
                max_rate = max_rate.max(rate);
            }
        }
    }
    if max_rate > 0.0 && max_rate / min_rate > STIFFNESS_RATIO {
        r.push(Diagnostic::warn(
            "SA026",
            origin.to_owned(),
            format!(
                "generator is stiff: rate spread {:.1e} (fastest {max_rate:.3e}/h, \
                 slowest {min_rate:.3e}/h) exceeds {STIFFNESS_RATIO:.0e}",
                max_rate / min_rate
            ),
            "expect ill-conditioned steady-state solves and slow uniformization; \
             consider lumping fast transitions or checking the rates for unit slips",
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repairable_two_state_is_clean() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 1.0 / 5000.0);
        c.add_transition(1, 0, 1.0 / 0.1);
        assert!(audit_ctmc_structure(&c, "ctmc/t").is_clean());
        assert!(audit_ctmc_structure(&Ctmc::new(1), "ctmc/one").is_clean());
    }

    #[test]
    fn sa024_two_disjoint_cycles() {
        // {0,1} and {2,3} are both closed; SA010's row checks see nothing
        // (every state has positive exit and in-rate).
        let mut c = Ctmc::new(4);
        c.add_transition(0, 1, 1.0);
        c.add_transition(1, 0, 1.0);
        c.add_transition(2, 3, 1.0);
        c.add_transition(3, 2, 1.0);
        let r = audit_ctmc_structure(&c, "ctmc/t");
        assert!(r.has_code("SA024"), "{}", r.render());
        assert!(!r.has_code("SA025"));
    }

    #[test]
    fn sa025_transient_trap() {
        // {0,1} leaks into the closed class {2,3} and never returns; again
        // invisible to per-row checks.
        let mut c = Ctmc::new(4);
        c.add_transition(0, 1, 1.0);
        c.add_transition(1, 0, 1.0);
        c.add_transition(0, 2, 0.5);
        c.add_transition(2, 3, 1.0);
        c.add_transition(3, 2, 1.0);
        let r = audit_ctmc_structure(&c, "ctmc/t");
        assert!(r.has_code("SA025"), "{}", r.render());
        assert!(!r.has_code("SA024"), "{}", r.render());
        assert!(r.render().contains("0, 1"));
    }

    #[test]
    fn sa026_stiff_generator() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 1e-4);
        c.add_transition(1, 0, 1e6);
        let r = audit_ctmc_structure(&c, "ctmc/t");
        assert!(r.has_code("SA026"), "{}", r.render());
        // The paper's stiffest element chain (rack, ratio 1e5) stays clean.
        let mut rack = Ctmc::new(2);
        rack.add_transition(0, 1, 1.0 / 4_799_952.0);
        rack.add_transition(1, 0, 1.0 / 48.0);
        assert!(audit_ctmc_structure(&rack, "ctmc/rack").is_clean());
    }

    #[test]
    fn absorbing_chain_is_transient_not_reducible() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 1.0);
        let r = audit_ctmc_structure(&c, "ctmc/t");
        assert!(
            r.has_code("SA025") && !r.has_code("SA024"),
            "{}",
            r.render()
        );
    }
}
