//! Cross-artifact unit-inference dataflow pass (SA013–SA019).
//!
//! A spec's optional [`SpecRates`] block overrides the paper's default
//! parameters, but JSON carries no dimensions: a MTBF entered in FIT
//! (failures per 10⁹ hours) instead of hours silently shifts availability
//! by orders of magnitude without any crash. This pass assigns every
//! override a unit — from the declared annotation when present, otherwise
//! from the field's role and a per-field plausible-magnitude band — then
//! *flows the resolved values downstream* through the derived parameter
//! set, a derived reliability block diagram, the two-state failure/repair
//! CTMCs, and a derived simulator configuration, re-running the SA008–SA011
//! checks on the corrected data.
//!
//! Flowing corrected values is what keeps the findings non-duplicated: a
//! FIT-entered MTBF is reported once as SA014, and the derived config is
//! built from the *corrected* hours, so the same slip does not surface a
//! second time as a SA009 "MTTR ≥ MTBF" warning. A genuinely inverted
//! pair declared in hours, by contrast, is trusted and still reaches SA009.

use sdnav_blocks::Block;
use sdnav_core::{
    ControllerSpec, Quantity, RatePair, Scenario, SpecRates, SwParams, Unit, FIT_SCALE,
};
use sdnav_sim::SimConfig;

use crate::{audit_block, audit_sim_config, audit_sw_params, dynamics, AuditReport, Diagnostic};

/// What dimension a rates field is consumed as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimeKind {
    /// A mean time between failures — the only kind a FIT count can mean.
    Mtbf,
    /// A repair/restart delay.
    Repair,
    /// A simulation horizon.
    Horizon,
}

/// Plausible magnitude band, in hours, for a field of the given kind.
///
/// The bands bracket the paper's Table values with two-plus orders of
/// margin on each side, so any paper-like model passes without annotation
/// while a FIT-for-hours slip (off by ~1e9/value) lands far outside.
fn band(kind: TimeKind) -> (f64, f64) {
    match kind {
        TimeKind::Mtbf => (24.0, 1.0e9),
        TimeKind::Repair => (1.0e-4, 1.0e3),
        TimeKind::Horizon => (100.0, 1.0e10),
    }
}

fn in_band(v: f64, (lo, hi): (f64, f64)) -> bool {
    v.is_finite() && v >= lo && v <= hi
}

/// If `q` is a bare MTBF-like value implausible as hours but plausible as a
/// FIT count, returns the corrected hours (`1e9 / value`).
pub(crate) fn fit_slip_hours(q: Quantity, kind: TimeKind) -> Option<f64> {
    if q.unit.is_some() || kind != TimeKind::Mtbf {
        return None;
    }
    let b = band(kind);
    if !(q.value.is_finite() && q.value > 0.0) || in_band(q.value, b) {
        return None;
    }
    let as_fit = FIT_SCALE / q.value;
    in_band(as_fit, b).then_some(as_fit)
}

/// The unit a field was resolved to — declared or inferred — for
/// cross-spec comparison (SA018).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Effective {
    Unit(Unit),
    Unresolved,
}

/// Resolution of a single time-like field: canonical hours (when a
/// dimensionally sound reading exists) plus the unit it was read in.
struct ResolvedTime {
    hours: Option<f64>,
    effective: Effective,
}

fn resolve_time(r: &mut AuditReport, path: &str, q: Quantity, kind: TimeKind) -> ResolvedTime {
    let unresolved = |r: &mut AuditReport, sev_err: bool, msg: String, hint: &str| {
        let d = if sev_err {
            Diagnostic::error("SA019", path, msg, hint)
        } else {
            Diagnostic::warn("SA019", path, msg, hint)
        };
        r.push(d);
        ResolvedTime {
            hours: None,
            effective: Effective::Unresolved,
        }
    };
    if !(q.value.is_finite() && q.value > 0.0) {
        return unresolved(
            r,
            true,
            format!("value {} cannot be a time in any unit", q.value),
            "mean times must be finite and positive",
        );
    }
    let b = band(kind);
    match q.unit {
        // A declared unit always wins over magnitude heuristics: an
        // explicitly hours-annotated inverted MTTR/MTBF pair is trusted
        // here and flagged downstream as SA009, not reinterpreted.
        Some(Unit::Hours) => ResolvedTime {
            hours: Some(q.value),
            effective: Effective::Unit(Unit::Hours),
        },
        Some(Unit::Fit) => {
            if kind == TimeKind::Mtbf {
                ResolvedTime {
                    hours: Some(FIT_SCALE / q.value),
                    effective: Effective::Unit(Unit::Fit),
                }
            } else {
                r.push(Diagnostic::error(
                    "SA013",
                    path,
                    format!(
                        "a FIT count ({} failures per 10^9 h) makes no sense for a \
                         repair or horizon field",
                        q.value
                    ),
                    "FIT only expresses failure intensity; declare the repair time in hours",
                ));
                ResolvedTime {
                    hours: None,
                    effective: Effective::Unresolved,
                }
            }
        }
        Some(Unit::PerHour) => {
            if kind == TimeKind::Horizon {
                return unresolved(
                    r,
                    false,
                    "a horizon declared as a rate is ambiguous".to_owned(),
                    "declare the horizon in hours",
                );
            }
            r.push(Diagnostic::warn(
                "SA013",
                path,
                format!(
                    "declared as a per-hour rate where a mean time is expected; \
                     reading it as 1/value = {} h",
                    1.0 / q.value
                ),
                "declare mean times in hours (or FIT for MTBFs) to keep pairs dimensionally consistent",
            ));
            ResolvedTime {
                hours: Some(1.0 / q.value),
                effective: Effective::Unit(Unit::PerHour),
            }
        }
        Some(Unit::Probability | Unit::Dimensionless) => unresolved(
            r,
            false,
            format!("declared {} where a time is expected", q.unit.unwrap()),
            "declare mean times in hours",
        ),
        None => {
            if in_band(q.value, b) {
                return ResolvedTime {
                    hours: Some(q.value),
                    effective: Effective::Unit(Unit::Hours),
                };
            }
            if let Some(corrected) = fit_slip_hours(q, kind) {
                r.push(Diagnostic::warn(
                    "SA014",
                    path,
                    format!(
                        "{} h is implausible as a mean time but plausible as a FIT \
                         count: 1e9/{} = {corrected} h",
                        q.value, q.value
                    ),
                    format!(
                        "if the value is in FIT, annotate it \
                         {{\"value\": {}, \"unit\": \"fit\"}} or convert to {corrected} \
                         hours (`lint --fix` rewrites this)",
                        q.value
                    ),
                ));
                return ResolvedTime {
                    hours: Some(corrected),
                    effective: Effective::Unit(Unit::Fit),
                };
            }
            let as_rate = 1.0 / q.value;
            if kind != TimeKind::Horizon && in_band(as_rate, b) {
                return unresolved(
                    r,
                    false,
                    format!(
                        "{} is implausible as hours but plausible as a per-hour rate \
                         (1/value = {as_rate} h)",
                        q.value
                    ),
                    "annotate the unit (hours or per_hour) to disambiguate",
                );
            }
            unresolved(
                r,
                false,
                format!(
                    "cannot infer a unit for {}: implausible as hours, FIT, or a rate",
                    q.value
                ),
                "annotate the unit explicitly",
            )
        }
    }
}

/// Resolution of a probability-expected field (`a_v`, `a_h`, `a_r`).
fn resolve_probability(r: &mut AuditReport, path: &str, q: Quantity) -> Option<f64> {
    match q.unit {
        Some(Unit::Probability | Unit::Dimensionless) | None => {
            if q.value.is_finite() && (0.0..=1.0).contains(&q.value) {
                Some(q.value)
            } else {
                r.push(Diagnostic::error(
                    "SA015",
                    path,
                    format!(
                        "{} is not a probability; it looks like a rate or a time",
                        q.value
                    ),
                    "steady-state availabilities are probabilities in [0, 1]; \
                     to give rates instead, use the element's mtbf/mttr pair",
                ));
                None
            }
        }
        Some(u @ (Unit::PerHour | Unit::Fit | Unit::Hours)) => {
            r.push(Diagnostic::error(
                "SA015",
                path,
                format!("declared {u} where a probability is expected"),
                "availabilities are probabilities; to give rates, use the \
                 element's mtbf/mttr pair instead",
            ));
            None
        }
    }
}

/// One resolved MTBF/MTTR pair.
#[derive(Default, Clone, Copy)]
struct ResolvedPair {
    mtbf: Option<f64>,
    mttr: Option<f64>,
}

struct Resolution {
    report: AuditReport,
    process_mtbf: Option<f64>,
    auto_restart: Option<f64>,
    manual_restart: Option<f64>,
    rack: ResolvedPair,
    host: ResolvedPair,
    vm: ResolvedPair,
    a_v: Option<f64>,
    a_h: Option<f64>,
    a_r: Option<f64>,
    sim_horizon: Option<f64>,
    /// `(field path, effective unit)` for cross-spec comparison.
    effective: Vec<(&'static str, Effective)>,
}

fn resolve_rates(rates: &SpecRates) -> Resolution {
    let mut report = AuditReport::new();
    let mut effective = Vec::new();
    let time = |report: &mut AuditReport,
                effective: &mut Vec<(&'static str, Effective)>,
                field: &'static str,
                q: Option<Quantity>,
                kind: TimeKind| {
        let q = q?;
        let resolved = resolve_time(report, &format!("spec/rates/{field}"), q, kind);
        effective.push((field, resolved.effective));
        resolved.hours
    };
    let process_mtbf = time(
        &mut report,
        &mut effective,
        "process_mtbf",
        rates.process_mtbf,
        TimeKind::Mtbf,
    );
    let auto_restart = time(
        &mut report,
        &mut effective,
        "auto_restart",
        rates.auto_restart,
        TimeKind::Repair,
    );
    let manual_restart = time(
        &mut report,
        &mut effective,
        "manual_restart",
        rates.manual_restart,
        TimeKind::Repair,
    );
    let pair = |report: &mut AuditReport,
                effective: &mut Vec<(&'static str, Effective)>,
                mtbf_field: &'static str,
                mttr_field: &'static str,
                p: &Option<RatePair>| {
        let Some(p) = p else {
            return ResolvedPair::default();
        };
        ResolvedPair {
            mtbf: time(report, effective, mtbf_field, p.mtbf, TimeKind::Mtbf),
            mttr: time(report, effective, mttr_field, p.mttr, TimeKind::Repair),
        }
    };
    let rack = pair(
        &mut report,
        &mut effective,
        "rack/mtbf",
        "rack/mttr",
        &rates.rack,
    );
    let host = pair(
        &mut report,
        &mut effective,
        "host/mtbf",
        "host/mttr",
        &rates.host,
    );
    let vm = pair(&mut report, &mut effective, "vm/mtbf", "vm/mttr", &rates.vm);
    let prob = |report: &mut AuditReport, field: &'static str, q: Option<Quantity>| {
        let q = q?;
        resolve_probability(report, &format!("spec/rates/{field}"), q)
    };
    let a_v = prob(&mut report, "a_v", rates.a_v);
    let a_h = prob(&mut report, "a_h", rates.a_h);
    let a_r = prob(&mut report, "a_r", rates.a_r);
    let sim_horizon = time(
        &mut report,
        &mut effective,
        "sim_horizon",
        rates.sim_horizon,
        TimeKind::Horizon,
    );
    Resolution {
        report,
        process_mtbf,
        auto_restart,
        manual_restart,
        rack,
        host,
        vm,
        a_v,
        a_h,
        a_r,
        sim_horizon,
        effective,
    }
}

fn prefix_paths(mut report: AuditReport, prefix: &str) -> AuditReport {
    for d in &mut report.diagnostics {
        d.path = format!("{prefix}{}", d.path);
    }
    report
}

/// Unit-inference dataflow audit of a spec's rate overrides (SA013–SA019).
///
/// Resolves every override to the model's canonical dimension (hours /
/// probability), reporting declaration mismatches (SA013), FIT-for-hours
/// magnitude slips (SA014, auto-fixable), rates where probabilities are
/// expected (SA015), pair-implied availabilities contradicting declared
/// ones (SA016), a simulation horizon too short for the resolved process
/// MTBF (SA017), and unresolvable values (SA019). The resolved values are
/// then flowed into a derived parameter set, RBD, failure/repair CTMCs,
/// and simulator config, whose SA008–SA011 findings are reported under
/// `spec/rates/derived/`.
///
/// Specs without a `rates` block — including the paper reference — audit
/// clean by construction.
#[must_use]
pub fn audit_units(spec: &ControllerSpec) -> AuditReport {
    let Some(rates) = &spec.rates else {
        return AuditReport::new();
    };
    let mut res = resolve_rates(rates);
    let mut report = std::mem::take(&mut res.report);

    // SA016: an element's declared availability must agree with the
    // availability its failure/repair CTMC rates imply (A = F/(F+R)).
    for (name, pair, declared) in [
        ("vm", res.vm, res.a_v),
        ("host", res.host, res.a_h),
        ("rack", res.rack, res.a_r),
    ] {
        let (Some(mtbf), Some(mttr), Some(decl)) = (pair.mtbf, pair.mttr, declared) else {
            continue;
        };
        let implied = mtbf / (mtbf + mttr);
        if (implied - decl).abs() > 1.0e-4 {
            report.push(Diagnostic::warn(
                "SA016",
                format!("spec/rates/a_{}", &name[..1]),
                format!(
                    "the {name} failure/repair rates imply availability {implied:.6} \
                     but the spec declares {decl}",
                ),
                "drop one of the two (the pair or the availability), or make \
                 them consistent",
            ));
        }
    }

    // SA017: an explicitly overridden horizon must be long enough to
    // observe failures at the resolved process MTBF.
    if let Some(horizon) = res.sim_horizon {
        let mtbf = res.process_mtbf.unwrap_or_else(|| {
            SimConfig::paper_defaults(Scenario::SupervisorNotRequired).process_mtbf
        });
        if horizon < 10.0 * mtbf {
            report.push(Diagnostic::warn(
                "SA017",
                "spec/rates/sim_horizon",
                format!(
                    "sim horizon {horizon} h is under 10x the process MTBF ({mtbf} h); \
                     the run will observe almost no process failures"
                ),
                "lengthen sim_horizon (or drop the override) so each batch sees failures",
            ));
        }
    }

    // Dataflow: resolved values feed the derived params, RBD, CTMCs, and
    // sim config, which are re-audited with the standard SA008–SA011
    // checks. Because the corrected (not raw) values flow here, a slip
    // already reported as SA014 does not re-surface as SA009.
    let mut sw = SwParams::paper_defaults();
    let f = res.process_mtbf.unwrap_or(5000.0);
    let r_auto = res.auto_restart.unwrap_or(0.1);
    let r_manual = res.manual_restart.unwrap_or(1.0);
    sw.process.auto = f / (f + r_auto);
    sw.process.manual = f / (f + r_manual);
    let implied = |p: ResolvedPair| match (p.mtbf, p.mttr) {
        (Some(f), Some(r)) => Some(f / (f + r)),
        _ => None,
    };
    if let Some(a) = res.a_v.or_else(|| implied(res.vm)) {
        sw.a_v = a;
    }
    if let Some(a) = res.a_h.or_else(|| implied(res.host)) {
        sw.a_h = a;
    }
    if let Some(a) = res.a_r.or_else(|| implied(res.rack)) {
        sw.a_r = a;
    }
    report.merge(prefix_paths(audit_sw_params(&sw), "spec/rates/derived/"));

    let unit = |name: &str, a: f64| Block::Unit {
        name: name.to_owned(),
        availability: a,
    };
    let derived_rbd = Block::Series {
        children: vec![
            unit("process-auto", sw.process.auto),
            unit("process-manual", sw.process.manual),
            unit("vm", sw.a_v),
            unit("host", sw.a_h),
            unit("rack", sw.a_r),
        ],
    };
    report.merge(audit_block(&derived_rbd, "spec/rates/derived/rbd"));

    let mut config = SimConfig::paper_defaults(Scenario::SupervisorNotRequired);
    config.process_mtbf = f;
    config.auto_restart = r_auto;
    config.manual_restart = r_manual;
    for (rates, target) in [
        (res.rack, &mut config.rack),
        (res.host, &mut config.host),
        (res.vm, &mut config.vm),
    ] {
        if let Some(mtbf) = rates.mtbf {
            target.mtbf = mtbf;
        }
        if let Some(mttr) = rates.mttr {
            target.mttr = mttr;
        }
    }
    if let Some(h) = res.sim_horizon {
        config.horizon_hours = h;
    }
    let mut derived = audit_sim_config(&config);
    derived.merge(dynamics::audit_config_ctmcs(&config));
    // The horizon-vs-repair batch-length smell (SA011) duplicates SA017
    // when the horizon override is the cause; keep the unit-aware finding.
    if report.has_code("SA017") {
        derived
            .diagnostics
            .retain(|d| !(d.code == "SA011" && d.path.contains("batches")));
    }
    report.merge(prefix_paths(derived, "spec/rates/derived/"));
    report
}

/// Audits a sweep grid of specs: every spec individually (prefixed with its
/// index and name), plus the cross-spec unit-consistency check (SA018) —
/// two specs of one grid declaring the same field in different units make
/// their results incomparable even when each is self-consistent.
#[must_use]
pub fn audit_spec_set(specs: &[ControllerSpec]) -> AuditReport {
    let mut report = AuditReport::new();
    if specs.is_empty() {
        report.push(Diagnostic::error(
            "SA001",
            "specs",
            "the spec set is empty",
            "a sweep grid needs at least one controller spec",
        ));
        return report;
    }
    let mut per_field: Vec<(&'static str, Vec<(usize, Unit)>)> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        report.merge(prefix_paths(
            crate::audit_model(spec),
            &format!("specs/{i}/"),
        ));
        let Some(rates) = &spec.rates else { continue };
        for (field, eff) in resolve_rates(rates).effective {
            let Effective::Unit(u) = eff else { continue };
            match per_field.iter_mut().find(|(f, _)| *f == field) {
                Some((_, seen)) => seen.push((i, u)),
                None => per_field.push((field, vec![(i, u)])),
            }
        }
    }
    for (field, seen) in per_field {
        let first = seen[0];
        if let Some(&other) = seen.iter().find(|(_, u)| *u != first.1) {
            report.push(Diagnostic::warn(
                "SA018",
                format!("specs/rates/{field}"),
                format!(
                    "specs of one sweep grid disagree about the unit of {field}: \
                     spec {} ({}) uses {} but spec {} ({}) uses {}",
                    first.0, specs[first.0].name, first.1, other.0, specs[other.0].name, other.1
                ),
                "declare the field in the same unit across the grid so the \
                 sweep results are comparable",
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit_model;
    use sdnav_core::Quantity;

    fn spec_with(rates: SpecRates) -> ControllerSpec {
        let mut spec = ControllerSpec::opencontrail_3x();
        spec.rates = Some(rates);
        spec
    }

    #[test]
    fn no_rates_block_is_clean() {
        assert!(audit_units(&ControllerSpec::opencontrail_3x()).is_clean());
    }

    #[test]
    fn paper_equivalent_overrides_are_clean() {
        // The paper's own Table values, partly bare and partly annotated,
        // resolve without findings.
        let rates = SpecRates {
            process_mtbf: Some(Quantity::bare(5000.0)),
            auto_restart: Some(Quantity::with_unit(0.1, Unit::Hours)),
            manual_restart: Some(Quantity::bare(1.0)),
            rack: Some(RatePair {
                mtbf: Some(Quantity::bare(4.8e6)),
                mttr: Some(Quantity::bare(48.0)),
            }),
            ..SpecRates::default()
        };
        let r = audit_model(&spec_with(rates));
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn fit_annotated_mtbf_is_clean_and_converted() {
        // 22_816 FIT ⇔ ~43_830 h (5 years): a declared unit needs no
        // inference and no finding.
        let rates = SpecRates {
            host: Some(RatePair {
                mtbf: Some(Quantity::with_unit(22_816.0, Unit::Fit)),
                mttr: Some(Quantity::bare(4.383)),
            }),
            ..SpecRates::default()
        };
        let r = audit_model(&spec_with(rates));
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn sa013_fit_declared_on_repair_field() {
        let rates = SpecRates {
            rack: Some(RatePair {
                mtbf: Some(Quantity::bare(4.8e6)),
                mttr: Some(Quantity::with_unit(100.0, Unit::Fit)),
            }),
            ..SpecRates::default()
        };
        let r = audit_units(&spec_with(rates));
        assert!(r.has_code("SA013"));
        assert!(r.has_errors());
    }

    #[test]
    fn sa013_per_hour_on_time_field_converts() {
        let rates = SpecRates {
            process_mtbf: Some(Quantity::with_unit(0.0002, Unit::PerHour)),
            ..SpecRates::default()
        };
        let r = audit_units(&spec_with(rates));
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "SA013")
            .expect("SA013 reported");
        assert!(d.message.contains("5000"));
        // The conversion is dimensionally sound, so nothing downstream breaks.
        assert!(!r.has_errors());
    }

    #[test]
    fn sa014_fit_magnitude_slip_detected_and_corrected_downstream() {
        // 10 "hours" with a 48 h MTTR: raw values would trip SA009
        // (availability under 50%), but 10 is a textbook FIT count for an
        // ultra-reliable rack (1e8 h), so the slip is reported once, as
        // SA014, and the corrected value flows into the derived config.
        let rates = SpecRates {
            rack: Some(RatePair {
                mtbf: Some(Quantity::bare(10.0)),
                mttr: Some(Quantity::bare(48.0)),
            }),
            ..SpecRates::default()
        };
        let r = audit_model(&spec_with(rates));
        assert!(r.has_code("SA014"), "{}", r.render());
        assert!(!r.has_code("SA009"), "duplicate finding:\n{}", r.render());
        let d = r.diagnostics().iter().find(|d| d.code == "SA014").unwrap();
        assert!(d.hint.contains("fix"));
        assert!(d.message.contains("100000000"));
    }

    #[test]
    fn sa009_survives_when_hours_are_declared() {
        // The same inverted pair, but explicitly annotated as hours: the
        // declaration is trusted, so no SA014 — the inversion is reported
        // as SA009 from the derived config instead.
        let rates = SpecRates {
            rack: Some(RatePair {
                mtbf: Some(Quantity::with_unit(10.0, Unit::Hours)),
                mttr: Some(Quantity::with_unit(48.0, Unit::Hours)),
            }),
            ..SpecRates::default()
        };
        let r = audit_model(&spec_with(rates));
        assert!(r.has_code("SA009"), "{}", r.render());
        assert!(!r.has_code("SA014"));
    }

    #[test]
    fn sa015_rate_declared_as_availability() {
        let rates = SpecRates {
            a_v: Some(Quantity::with_unit(0.0002, Unit::PerHour)),
            ..SpecRates::default()
        };
        let r = audit_units(&spec_with(rates));
        assert!(r.has_code("SA015"));
        assert!(r.has_errors());
        // Bare out-of-range values are also caught.
        let rates = SpecRates {
            a_h: Some(Quantity::bare(5000.0)),
            ..SpecRates::default()
        };
        assert!(audit_units(&spec_with(rates)).has_code("SA015"));
    }

    #[test]
    fn sa016_pair_contradicts_declared_availability() {
        let rates = SpecRates {
            vm: Some(RatePair {
                mtbf: Some(Quantity::bare(1440.0)),
                mttr: Some(Quantity::bare(0.072)),
            }),
            a_v: Some(Quantity::bare(0.9)),
            ..SpecRates::default()
        };
        let r = audit_units(&spec_with(rates));
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "SA016")
            .expect("SA016 reported");
        assert!(d.message.contains("0.9"));
        // Consistent values stay clean.
        let rates = SpecRates {
            vm: Some(RatePair {
                mtbf: Some(Quantity::bare(1440.0)),
                mttr: Some(Quantity::bare(0.072)),
            }),
            a_v: Some(Quantity::bare(1440.0 / 1440.072)),
            ..SpecRates::default()
        };
        assert!(!audit_units(&spec_with(rates)).has_code("SA016"));
    }

    #[test]
    fn sa017_horizon_below_process_mtbf() {
        let rates = SpecRates {
            process_mtbf: Some(Quantity::bare(5000.0)),
            sim_horizon: Some(Quantity::bare(2000.0)),
            ..SpecRates::default()
        };
        let r = audit_units(&spec_with(rates));
        assert!(r.has_code("SA017"));
        // The derived config's batch-length smell is folded into SA017.
        assert!(!r.has_code("SA011"), "{}", r.render());
        // A long-enough horizon is clean.
        let rates = SpecRates {
            sim_horizon: Some(Quantity::bare(1.0e6)),
            ..SpecRates::default()
        };
        assert!(audit_units(&spec_with(rates)).is_clean());
    }

    #[test]
    fn sa018_cross_spec_unit_disagreement() {
        let a = spec_with(SpecRates {
            process_mtbf: Some(Quantity::with_unit(200_000.0, Unit::Fit)),
            ..SpecRates::default()
        });
        let mut b = spec_with(SpecRates {
            process_mtbf: Some(Quantity::bare(5000.0)),
            ..SpecRates::default()
        });
        b.name = "variant".to_owned();
        let r = audit_spec_set(&[a.clone(), b]);
        assert!(r.has_code("SA018"), "{}", r.render());
        // A grid agreeing on units is clean.
        assert!(!audit_spec_set(&[a.clone(), a]).has_code("SA018"));
        // An empty grid is an error.
        assert!(audit_spec_set(&[]).has_errors());
    }

    #[test]
    fn sa019_ambiguous_and_impossible_values() {
        // 5e9: implausible as hours (above any MTBF), as FIT (0.2 h), and
        // as a rate.
        let rates = SpecRates {
            process_mtbf: Some(Quantity::bare(5.0e9)),
            ..SpecRates::default()
        };
        let r = audit_units(&spec_with(rates));
        assert!(r.has_code("SA019"), "{}", r.render());
        // A rate-looking bare value names the reciprocal reading.
        let rates = SpecRates {
            process_mtbf: Some(Quantity::bare(0.0002)),
            ..SpecRates::default()
        };
        let r = audit_units(&spec_with(rates));
        let d = r.diagnostics().iter().find(|d| d.code == "SA019").unwrap();
        assert!(d.message.contains("per-hour"));
        // Non-positive values are SA019 errors.
        let rates = SpecRates {
            auto_restart: Some(Quantity::bare(-0.1)),
            ..SpecRates::default()
        };
        assert!(audit_units(&spec_with(rates)).has_errors());
    }

    #[test]
    fn genuinely_bad_declared_values_reach_downstream_checks() {
        // A declared-hours MTBF of 1e30 is trusted (declared beats
        // inference) and the derived CTMC/sim checks see the raw value.
        let rates = SpecRates {
            vm: Some(RatePair {
                mtbf: Some(Quantity::with_unit(0.05, Unit::Hours)),
                mttr: Some(Quantity::with_unit(0.072, Unit::Hours)),
            }),
            ..SpecRates::default()
        };
        let r = audit_units(&spec_with(rates));
        assert!(r.has_code("SA009"));
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.path.starts_with("spec/rates/derived/")));
    }
}
