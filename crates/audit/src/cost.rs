//! Static sweep-grid analysis (SA030–SA032) and cost prediction
//! (`sdnav-sweep-plan/v1`).
//!
//! A sweep grid is itself a model — of the *work* a study will do — and it
//! can be analyzed without running a single cell. [`SweepPlan::predict`]
//! expands a [`GridSpec`] into its work items exactly as the executor
//! would and walks them in plan order with a simulated sub-model cache, so
//! it knows, before any evaluation:
//!
//! * which cache lookups each cell performs and which of them hit (the
//!   memoization the executor shares between Fig. 4 and Fig. 5),
//! * a relative cost per cell: one unit per memoized analytic model
//!   evaluation, and a predicted event count for every simulated cell
//!   (`2 × replications × horizon × acceleration × Σ element rates`, an
//!   order-of-magnitude estimator of discrete-event work),
//! * which cells are fully served from cache ("skippable": running them
//!   costs no model evaluations at all).
//!
//! [`audit_grid`] turns the same expansion into diagnostics: byte-identical
//! duplicate cells (SA030), chaos crew-count axis values provably
//! equivalent to each other (SA031), and a predicted event budget large
//! enough to deserve a `--dry-run` look first (SA032).

use std::collections::BTreeSet;
use std::collections::HashSet;

use sdnav_chaos::MAX_OCCURRENCES;
use sdnav_consensus::ConsensusParams;
use sdnav_core::{ControllerSpec, Scenario, Topology};
use sdnav_grid::plan::{
    item_seed, plan_chaos_items, plan_consensus_items, plan_items, SimTopology, WorkItem,
};
use sdnav_grid::GridSpec;
use sdnav_json::{Json, ToJson};
use sdnav_sim::SimConfig;

use crate::{AuditReport, Diagnostic};

/// Predicted events above which SA032 flags the grid as a cost blowup.
const EVENT_BUDGET: f64 = 1e9;

/// Predicted sub-model cache behavior of a whole grid run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePrediction {
    /// Total sub-model cache lookups across all analytic cells.
    pub lookups: usize,
    /// Lookups predicted to hit (the key was computed by an earlier cell).
    pub hits: usize,
    /// Lookups predicted to miss (first computation of the key).
    pub misses: usize,
}

impl CachePrediction {
    /// Predicted hit rate in `[0, 1]`; zero for a grid with no lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// One work item of the plan with its predicted cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCell {
    /// Cell kind: `fig3`, `fig4`, `fig5`, `sim`, or `chaos`.
    pub kind: &'static str,
    /// Human-readable cell coordinates.
    pub label: String,
    /// The cell's identity-derived RNG seed.
    pub seed: u64,
    /// Sub-model cache lookups this cell performs.
    pub cache_lookups: usize,
    /// Lookups predicted to hit.
    pub cache_hits: usize,
    /// Predicted discrete-event count (0 for analytic cells).
    pub predicted_events: f64,
    /// Relative cost units: cache misses for analytic cells, scaled
    /// predicted events for simulated cells.
    pub cost: f64,
}

/// The full static prediction for one grid: every cell with its cost, the
/// aggregate cache behavior, and the number of cells served entirely from
/// cache. Serializes as `sdnav-sweep-plan/v1`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Cells in canonical plan order.
    pub cells: Vec<PlanCell>,
    /// Aggregate predicted cache behavior.
    pub cache: CachePrediction,
    /// Analytic cells whose every lookup hits: running them computes
    /// nothing new.
    pub skippable_cells: usize,
    /// Sum of all predicted event counts (simulated cells).
    pub predicted_events: f64,
    /// Sum of all relative cost units.
    pub total_cost: f64,
}

/// Relative cost of one predicted discrete event, in units of one analytic
/// model evaluation. Events are orders of magnitude cheaper than a full
/// closed-form solve; 1e-3 keeps the two cost families comparable.
const EVENT_COST: f64 = 1e-3;

/// Sum of element failure rates (per hour) a simulation of `topo` carries,
/// used as the intensity of the predicted event stream.
fn rate_sum(spec: &ControllerSpec, topo: &Topology, grid: &GridSpec, scenario: Scenario) -> f64 {
    let config = SimConfig::paper_defaults(scenario);
    let per = |count: usize, mtbf: f64| {
        if mtbf.is_finite() && mtbf > 0.0 {
            count as f64 / mtbf
        } else {
            0.0
        }
    };
    let hosts = topo.host_count() + grid.sim_compute_hosts;
    let vms = topo.vm_count() + grid.sim_compute_hosts;
    let procs: usize = spec
        .roles
        .iter()
        .map(|r| r.processes.len() * spec.nodes as usize)
        .sum();
    per(topo.rack_count(), config.rack.mtbf)
        + per(hosts, config.host.mtbf)
        + per(vms, config.vm.mtbf)
        + per(procs, config.process_mtbf)
}

/// Number of injection occurrences a campaign schedules inside the horizon
/// (same expansion rule as the compiler, capped at [`MAX_OCCURRENCES`]).
fn campaign_occurrences(grid: &GridSpec) -> usize {
    let Some(campaign) = &grid.chaos_campaign else {
        return 0;
    };
    let horizon = grid.sim_horizon_hours;
    let mut total = 0usize;
    for inj in &campaign.injections {
        if !inj.at.is_finite() || inj.at >= horizon {
            continue;
        }
        match inj.every.filter(|e| e.is_finite() && *e > 0.0) {
            None => total += 1,
            Some(step) => {
                let n = ((horizon - inj.at) / step).ceil() as usize;
                total += n.clamp(1, MAX_OCCURRENCES);
            }
        }
    }
    total
}

/// The cache keys one work item looks up, in evaluation order. Mirrors the
/// executor's `SubModelKey` derivation: one HW key per Fig. 3 point, four
/// SW keys (topology × scenario) per Fig. 4/5 point.
fn cache_keys(item: &WorkItem) -> Vec<(u8, u8, u64)> {
    match item {
        WorkItem::Fig3Point { a_c } => vec![(0, 0, a_c.to_bits())],
        WorkItem::SwPoint { x, .. } => [
            (SimTopology::Small, false),
            (SimTopology::Small, true),
            (SimTopology::Large, false),
            (SimTopology::Large, true),
        ]
        .into_iter()
        .map(|(topo, sup)| {
            (
                1 + u8::from(matches!(topo, SimTopology::Large)),
                u8::from(sup),
                x.to_bits(),
            )
        })
        .collect(),
        _ => Vec::new(),
    }
}

/// A canonical identity string for duplicate detection — bit-exact on
/// every floating-point coordinate.
fn cell_identity(item: &WorkItem) -> String {
    match item {
        WorkItem::Fig3Point { a_c } => format!("fig3:{:016x}", a_c.to_bits()),
        WorkItem::SwPoint { figure, x } => format!("{}:{:016x}", figure.name(), x.to_bits()),
        WorkItem::SimPoint {
            x,
            topology,
            scenario,
        } => format!(
            "sim:{:016x}:{}:{}",
            x.to_bits(),
            topology.name(),
            *scenario == Scenario::SupervisorRequired
        ),
        WorkItem::ChaosPoint {
            crew_count,
            ccf_probability,
            topology,
        } => format!(
            "chaos:{crew_count}:{:016x}:{}",
            ccf_probability.to_bits(),
            topology.name()
        ),
        WorkItem::ConsensusPoint {
            election_timeout_ms,
            cluster_size,
            fault_mix,
        } => format!(
            "consensus:{:016x}:{cluster_size}:{}",
            election_timeout_ms.to_bits(),
            fault_mix.label()
        ),
    }
}

/// Expands the grid into the executor's canonical work-item order
/// (figures, sim cells, then chaos cells when a campaign is set).
fn expand_items(grid: &GridSpec) -> Vec<WorkItem> {
    let mut items = plan_items(&grid.figures, grid.points, grid.replications);
    if grid.chaos_campaign.is_some() {
        items.extend(plan_chaos_items(
            &grid.chaos_crew_counts,
            &grid.chaos_ccf_probabilities,
        ));
    }
    if grid.consensus.is_some() {
        items.extend(plan_consensus_items(
            &grid.consensus_election_timeouts_ms,
            &grid.consensus_cluster_sizes,
            &grid.consensus_fault_mixes,
        ));
    }
    items
}

impl SweepPlan {
    /// Statically predicts the cost of evaluating `grid` against `spec`,
    /// without evaluating anything.
    #[must_use]
    pub fn predict(spec: &ControllerSpec, grid: &GridSpec) -> SweepPlan {
        let small = Topology::small(spec);
        let large = Topology::large(spec);
        let items = expand_items(grid);
        let occurrences = campaign_occurrences(grid);

        let mut seen: HashSet<(u8, u8, u64)> = HashSet::new();
        let mut cells = Vec::with_capacity(items.len());
        let mut cache = CachePrediction {
            lookups: 0,
            hits: 0,
            misses: 0,
        };
        let mut skippable = 0usize;
        for item in &items {
            let keys = cache_keys(item);
            let lookups = keys.len();
            let mut hits = 0usize;
            let mut misses = 0usize;
            for key in keys {
                if seen.insert(key) {
                    misses += 1;
                } else {
                    hits += 1;
                }
            }
            cache.lookups += lookups;
            cache.hits += hits;
            cache.misses += misses;
            if lookups > 0 && misses == 0 {
                skippable += 1;
            }

            let topo_of = |t: SimTopology| match t {
                SimTopology::Small => &small,
                SimTopology::Large => &large,
            };
            let (kind, label, predicted_events) = match item {
                WorkItem::Fig3Point { a_c } => ("fig3", format!("fig3 a_c={a_c}"), 0.0),
                WorkItem::SwPoint { figure, x } => {
                    (figure.name(), format!("{} x={x}", figure.name()), 0.0)
                }
                WorkItem::SimPoint {
                    x,
                    topology,
                    scenario,
                } => {
                    let events = 2.0
                        * grid.replications as f64
                        * grid.sim_horizon_hours
                        * grid.sim_accelerate
                        * rate_sum(spec, topo_of(*topology), grid, *scenario);
                    (
                        "sim",
                        format!(
                            "sim x={x} {} {}",
                            topology.name(),
                            if *scenario == Scenario::SupervisorRequired {
                                "sup"
                            } else {
                                "no-sup"
                            }
                        ),
                        events,
                    )
                }
                WorkItem::ChaosPoint {
                    crew_count,
                    ccf_probability,
                    topology,
                } => {
                    let replications = grid.replications.max(1) as f64;
                    let organic = 2.0
                        * replications
                        * grid.sim_horizon_hours
                        * grid.sim_accelerate
                        * rate_sum(
                            spec,
                            topo_of(*topology),
                            grid,
                            Scenario::SupervisorNotRequired,
                        );
                    let injected = 2.0 * replications * occurrences as f64;
                    (
                        "chaos",
                        format!(
                            "chaos crews={crew_count} ccf={ccf_probability} {}",
                            topology.name()
                        ),
                        organic + injected,
                    )
                }
                WorkItem::ConsensusPoint {
                    election_timeout_ms,
                    cluster_size,
                    fault_mix,
                } => {
                    // Fail/repair pairs per node dominate the consensus DES
                    // event stream (elections ride on top of failures).
                    let replications = grid.replications.max(1) as f64;
                    let node_rate =
                        grid.sim_accelerate / ConsensusParams::paper_defaults().node_mtbf_hours;
                    let events = 2.0
                        * replications
                        * grid.sim_horizon_hours
                        * f64::from(*cluster_size)
                        * node_rate;
                    (
                        "consensus",
                        format!(
                            "consensus et={election_timeout_ms}ms n={cluster_size} mix={}",
                            fault_mix.label()
                        ),
                        events,
                    )
                }
            };
            // A miss on a Fig. 3 key evaluates all three topologies; a miss
            // on an SW key evaluates one model.
            let miss_cost = if matches!(item, WorkItem::Fig3Point { .. }) {
                3.0
            } else {
                1.0
            };
            cells.push(PlanCell {
                kind,
                label,
                seed: item_seed(grid.seed, item),
                cache_lookups: lookups,
                cache_hits: hits,
                predicted_events,
                cost: misses as f64 * miss_cost + predicted_events * EVENT_COST,
            });
        }

        let predicted_events = cells.iter().map(|c| c.predicted_events).sum();
        let total_cost = cells.iter().map(|c| c.cost).sum();
        SweepPlan {
            cells,
            cache,
            skippable_cells: skippable,
            predicted_events,
            total_cost,
        }
    }
}

impl ToJson for SweepPlan {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str(sdnav_json::schema::SWEEP_PLAN)),
            ("items", self.cells.len().to_json()),
            (
                "predicted_cache",
                Json::obj(vec![
                    ("lookups", self.cache.lookups.to_json()),
                    ("hits", self.cache.hits.to_json()),
                    ("misses", self.cache.misses.to_json()),
                    ("hit_rate", self.cache.hit_rate().to_json()),
                ]),
            ),
            ("skippable_cells", self.skippable_cells.to_json()),
            ("predicted_events", self.predicted_events.to_json()),
            ("total_cost", self.total_cost.to_json()),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("kind", Json::str(c.kind)),
                                ("label", Json::str(c.label.clone())),
                                ("seed", Json::str(c.seed.to_string())),
                                ("cache_lookups", c.cache_lookups.to_json()),
                                ("cache_hits", c.cache_hits.to_json()),
                                ("predicted_events", c.predicted_events.to_json()),
                                ("cost", c.cost.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Lints a sweep grid, reporting SA030–SA032.
///
/// | Code  | Severity | Check |
/// |-------|----------|-------|
/// | SA030 | error    | bit-identical duplicate work cells: an axis repeats a value, so identical work runs (and is double-counted) |
/// | SA031 | warn     | chaos crew-count values at or above the deployment's hardware element count are pairwise equivalent — the extra cells re-measure the same system |
/// | SA032 | warn     | predicted event count exceeds 1e9 — inspect the plan with `sweep --dry-run` before running |
#[must_use]
pub fn audit_grid(spec: &ControllerSpec, grid: &GridSpec) -> AuditReport {
    let mut report = AuditReport::new();
    let items = expand_items(grid);

    let mut seen: HashSet<String> = HashSet::new();
    let mut duplicates: BTreeSet<String> = BTreeSet::new();
    for item in &items {
        let id = cell_identity(item);
        if !seen.insert(id.clone()) {
            duplicates.insert(id);
        }
    }
    if !duplicates.is_empty() {
        let listed: Vec<String> = duplicates.iter().take(4).cloned().collect();
        report.push(Diagnostic::error(
            "SA030",
            "grid/axes",
            format!(
                "{} duplicate work cell(s): {}{} — an axis repeats a value bit-identically, so the same work runs twice and aggregates double-count it",
                duplicates.len(),
                listed.join(", "),
                if duplicates.len() > listed.len() {
                    ", …"
                } else {
                    ""
                },
            ),
            "deduplicate the repeated axis values (figures, crew counts, or probabilities)",
        ));
    }

    if grid.chaos_campaign.is_some() {
        let large = Topology::large(spec);
        // No more hardware elements than this can ever be under repair at
        // once, so crew counts at or past it behave as an unlimited pool.
        let hw_elements =
            large.rack_count() + large.host_count() + large.vm_count() + 2 * grid.sim_compute_hosts;
        let saturated: Vec<usize> = grid
            .chaos_crew_counts
            .iter()
            .copied()
            .filter(|&c| c >= hw_elements)
            .collect();
        if saturated.len() > 1 {
            report.push(Diagnostic::warn(
                "SA031",
                "grid/chaos_crew_counts",
                format!(
                    "crew counts {saturated:?} all meet or exceed the {hw_elements} hardware \
                     elements of the largest deployment — every crew is idle past that point, \
                     so these cells measure the same system",
                ),
                "keep one saturated crew count and drop the rest of the dominated cells",
            ));
        }
    }

    let plan = SweepPlan::predict(spec, grid);
    if plan.predicted_events > EVENT_BUDGET {
        report.push(Diagnostic::warn(
            "SA032",
            "grid",
            format!(
                "predicted {:.2e} discrete events exceed the {EVENT_BUDGET:.0e} budget — \
                 this sweep will run for a very long time",
                plan.predicted_events
            ),
            "inspect the plan with `sdnav sweep --dry-run`, then shrink the horizon, \
             acceleration, replications, or axes",
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnav_grid::plan::Figure;

    fn spec() -> ControllerSpec {
        ControllerSpec::opencontrail_3x()
    }

    #[test]
    fn fig4_fig5_share_half_their_lookups() {
        let grid = GridSpec::builder()
            .figures(&[Figure::Fig4, Figure::Fig5])
            .points(11)
            .build()
            .unwrap();
        let plan = SweepPlan::predict(&spec(), &grid);
        assert_eq!(plan.cells.len(), 22);
        assert_eq!(plan.cache.lookups, 88);
        assert_eq!(plan.cache.misses, 44);
        assert_eq!(plan.cache.hits, 44);
        assert!((plan.cache.hit_rate() - 0.5).abs() < 1e-12);
        // Every Fig. 5 cell is fully served from Fig. 4's computations.
        assert_eq!(plan.skippable_cells, 11);
        assert_eq!(plan.predicted_events, 0.0);
    }

    #[test]
    fn sim_cells_dominate_predicted_cost() {
        let grid = GridSpec::builder()
            .figures(&[Figure::Fig4])
            .points(3)
            .replications(2)
            .build()
            .unwrap();
        let plan = SweepPlan::predict(&spec(), &grid);
        let sim_cost: f64 = plan
            .cells
            .iter()
            .filter(|c| c.kind == "sim")
            .map(|c| c.cost)
            .sum();
        let analytic_cost: f64 = plan
            .cells
            .iter()
            .filter(|c| c.kind != "sim")
            .map(|c| c.cost)
            .sum();
        assert!(
            sim_cost > analytic_cost,
            "sim {sim_cost} vs analytic {analytic_cost}"
        );
        // Large cells carry more elements, so more predicted events.
        let events_of = |label_frag: &str| -> f64 {
            plan.cells
                .iter()
                .filter(|c| c.kind == "sim" && c.label.contains(label_frag))
                .map(|c| c.predicted_events)
                .sum()
        };
        assert!(events_of("Large") > events_of("Small"));
    }

    #[test]
    fn plan_serializes_with_schema() {
        let grid = GridSpec::builder().points(2).build().unwrap();
        let plan = SweepPlan::predict(&spec(), &grid);
        let text = sdnav_json::to_string(&plan);
        let value = sdnav_json::Json::parse(&text).unwrap();
        assert_eq!(
            value.field("schema").unwrap().as_str().unwrap(),
            "sdnav-sweep-plan/v1"
        );
        assert_eq!(
            value.field("items").unwrap().as_usize().unwrap(),
            plan.cells.len()
        );
        assert!(value.field("cells").unwrap().as_arr().unwrap().len() == plan.cells.len());
    }

    #[test]
    fn sa030_duplicate_figures() {
        let mut grid = GridSpec::builder().points(3).build().unwrap();
        // The builder dedups figures; a hand-built (or decoded) spec can
        // still carry duplicates.
        grid.figures = vec![Figure::Fig3, Figure::Fig3];
        let r = audit_grid(&spec(), &grid);
        assert!(r.has_code("SA030"), "{}", r.render());
        assert!(r.has_errors());
    }

    #[test]
    fn sa031_dominated_crew_counts() {
        let campaign: sdnav_chaos::ChaosSpec = sdnav_json::from_str(
            r#"{"name": "x", "injections": [
                {"label": "kill", "kind": "fail", "target": "rack:0",
                 "at": 100.0, "repair_hours": 24.0}
            ]}"#,
        )
        .unwrap();
        let grid = GridSpec::builder()
            .points(2)
            .chaos_campaign(campaign)
            .chaos_crew_counts(&[1, 50, 100])
            .build()
            .unwrap();
        let r = audit_grid(&spec(), &grid);
        assert!(r.has_code("SA031"), "{}", r.render());
        // A single saturated value is fine: it is the "unlimited" probe.
        let mut thin = grid.clone();
        thin.chaos_crew_counts = vec![1, 100];
        assert!(!audit_grid(&spec(), &thin).has_code("SA031"));
    }

    #[test]
    fn sa032_cost_blowup() {
        let mut grid = GridSpec::builder()
            .figures(&[Figure::Fig4])
            .points(2)
            .replications(1000)
            .build()
            .unwrap();
        grid.sim_horizon_hours = 1e9;
        grid.sim_accelerate = 1e4;
        let r = audit_grid(&spec(), &grid);
        assert!(r.has_code("SA032"), "{}", r.render());
        // The smoke-grade default grid is far below the budget.
        let small = GridSpec::builder()
            .points(5)
            .replications(2)
            .build()
            .unwrap();
        assert!(!audit_grid(&spec(), &small).has_code("SA032"));
    }
}
