//! Schedule-interference analysis over a [`ScheduleIr`] (SA022,
//! SA027–SA029).
//!
//! All four checks reason about the same object — the campaign's
//! statically provable down-windows — so they share the expansion the IR
//! builds once:
//!
//! * **SA022** — maintenance window(s), alone or overlapping, take a CP
//!   quorum below its required member count (pre-existing check, now fed
//!   by the IR).
//! * **SA027** — two *different* injections hold overlapping windows on
//!   the same resolved target: the later action is a silent no-op (a
//!   `fail` on a target already under maintenance does nothing) and almost
//!   always an authoring mistake.
//! * **SA028** — a provable quorum-kill window arises only from the
//!   *combination* of a fixed-duration failure and other windows. A single
//!   injected failure taking the quorum down is the campaign's purpose;
//!   maintenance-only kills are SA022; this flags the subtle mixed case
//!   where planned downtime collides with an injected outage.
//! * **SA029** — repair-crew starvation: more concurrent fixed-duration
//!   *hardware* repairs than crews (repairs queue, stretching outages
//!   beyond the declared durations), or aggregate repair demand at or
//!   above total crew capacity over the horizon.

use std::collections::BTreeSet;

use sdnav_chaos::ChaosSpec;
use sdnav_sim::{InjectTarget, Simulation};

use crate::ir::{ScheduleIr, ScheduleWindow, WindowKind};
use crate::{AuditReport, Diagnostic};

fn overlaps(a: &ScheduleWindow, b: &ScheduleWindow) -> bool {
    a.start < b.end && b.start < a.end
}

fn is_hardware(target: InjectTarget) -> bool {
    // Repair crews serve hardware repairs only; process/vProc restarts are
    // software recovery and never queue on the crew pool.
    matches!(
        target,
        InjectTarget::Rack(_) | InjectTarget::Host(_) | InjectTarget::Vm(_)
    )
}

/// Runs every window-based check (SA022, SA027–SA029) over a campaign's
/// schedule graph.
#[must_use]
pub fn audit_schedule(
    campaign: &ChaosSpec,
    sched: &ScheduleIr,
    sim: &Simulation<'_>,
) -> AuditReport {
    let mut report = AuditReport::new();
    let label = |i: usize| campaign.injections[i].label.as_str();

    // SA027: overlapping windows from different injections on one target.
    // Report once per injection pair, not per occurrence pair.
    let mut conflicting: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (ai, a) in sched.windows.iter().enumerate() {
        for b in &sched.windows[ai + 1..] {
            if a.injection != b.injection && a.target == b.target && overlaps(a, b) {
                conflicting.insert((a.injection.min(b.injection), a.injection.max(b.injection)));
            }
        }
    }
    for &(i, j) in &conflicting {
        report.push(Diagnostic::warn(
            "SA027",
            format!("campaign/injections/{}+{}", label(i), label(j)),
            format!(
                "injections [{}] and [{}] hold overlapping windows on the same target — \
                 the later action hits an element that is already down and is a silent no-op",
                label(i),
                label(j),
            ),
            "stagger the schedules or retarget one injection; overlapping same-target \
             windows almost never measure what was intended",
        ));
    }

    // SA022 / SA028: at each window start, union the CP member blocks of
    // every active window and test each quorum requirement. Maintenance-only
    // participant sets are SA022 (planned downtime kills the quorum by
    // itself); sets that need a fixed-duration failure *and* at least one
    // other window are SA028 (injected outage colliding with other
    // downtime). Deduplicate by participant set so `every` expansions
    // report once, not per occurrence.
    let mut reported: BTreeSet<Vec<usize>> = BTreeSet::new();
    for w in &sched.windows {
        let active: Vec<&ScheduleWindow> = sched
            .windows
            .iter()
            .filter(|o| o.start <= w.start && w.start < o.end)
            .collect();
        let participants: BTreeSet<usize> = active.iter().map(|o| o.injection).collect();
        let all_maintenance = active.iter().all(|o| o.kind == WindowKind::Maintenance);
        if !all_maintenance && participants.len() < 2 {
            // A lone injected failure killing the quorum is the campaign's
            // point, not a defect.
            continue;
        }
        let down: BTreeSet<(usize, usize)> = active
            .iter()
            .flat_map(|o| o.blocks.iter().copied())
            .collect();
        for req in 0..sim.cp_requirement_count() {
            let members = sim.nodes();
            let required = sim.cp_required(req);
            let down_count = down.iter().filter(|(r, _)| *r == req).count();
            if members - down_count < required {
                let key: Vec<usize> = participants.iter().copied().collect();
                if reported.insert(key.clone()) {
                    let labels: Vec<&str> = key.iter().map(|&i| label(i)).collect();
                    let path = format!("campaign/injections/{}", labels.join("+"));
                    if all_maintenance {
                        report.push(Diagnostic::warn(
                            "SA022",
                            path,
                            format!(
                                "maintenance window(s) [{}] leave {} of {members} members of a control-plane quorum (requires {required}) — planned downtime takes the control plane out",
                                labels.join(", "),
                                members - down_count,
                            ),
                            "stagger the windows or shrink the maintenance scope so a quorum majority stays up",
                        ));
                    } else {
                        report.push(Diagnostic::warn(
                            "SA028",
                            path,
                            format!(
                                "overlapping failure and maintenance windows [{}] provably leave {} of {members} members of a control-plane quorum (requires {required}) — the injected outage collides with other scheduled downtime",
                                labels.join(", "),
                                members - down_count,
                            ),
                            "move the maintenance window outside the injected outage's repair window, or make the collision explicit in the campaign name",
                        ));
                    }
                }
                break;
            }
        }
    }

    // SA029: repair-crew starvation. Only fixed-duration hardware repair
    // windows compete for crews.
    if let Some(crews) = campaign.crews {
        if crews.count > 0 {
            let hw: Vec<&ScheduleWindow> = sched
                .windows
                .iter()
                .filter(|w| w.kind == WindowKind::Repair && is_hardware(w.target))
                .collect();
            let peak = hw
                .iter()
                .map(|w| {
                    hw.iter()
                        .filter(|o| o.start <= w.start && w.start < o.end)
                        .count()
                })
                .max()
                .unwrap_or(0);
            if peak > crews.count {
                report.push(Diagnostic::warn(
                    "SA029",
                    "campaign/crews",
                    format!(
                        "schedule provably demands {peak} concurrent hardware repairs but only \
                         {} crew(s) are declared — repairs will queue and outages stretch \
                         beyond their declared durations",
                        crews.count,
                    ),
                    "add crews or stagger the failure schedule so repairs do not pile up",
                ));
            }
            let horizon = sim.config().horizon_hours;
            if horizon.is_finite() && horizon > 0.0 {
                let demand: f64 = hw.iter().map(|w| w.end.min(horizon) - w.start).sum();
                let utilization = demand / (crews.count as f64 * horizon);
                if utilization >= 1.0 {
                    report.push(Diagnostic::warn(
                        "SA029",
                        "campaign/crews",
                        format!(
                            "scheduled hardware repair demand ({demand:.0} crew-hours) is at or \
                             above total crew capacity ({:.0} crew-hours over the horizon) — \
                             utilization {utilization:.2}",
                            crews.count as f64 * horizon,
                        ),
                        "the repair backlog can only grow; add crews or thin the schedule",
                    ));
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnav_core::{ControllerSpec, Scenario, Topology};
    use sdnav_sim::SimConfig;

    fn small_sim<'a>(spec: &'a ControllerSpec, topo: &'a Topology) -> Simulation<'a> {
        let mut config = SimConfig::paper_defaults(Scenario::SupervisorNotRequired);
        config.horizon_hours = 10_000.0;
        config.compute_hosts = 2;
        Simulation::try_new(spec, topo, config).expect("valid simulation")
    }

    fn audit(text: &str, sim: &Simulation<'_>) -> AuditReport {
        let c: ChaosSpec = sdnav_json::from_str(text).expect("valid campaign JSON");
        audit_schedule(&c, &ScheduleIr::build(&c, sim), sim)
    }

    #[test]
    fn sa027_conflicting_windows_on_one_target() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        let r = audit(
            r#"{"name": "x", "injections": [
                {"label": "kill", "kind": "fail", "target": "host:0",
                 "at": 100.0, "repair_hours": 48.0},
                {"label": "patch", "kind": "maintenance", "target": "host:0",
                 "at": 110.0, "duration_hours": 4.0}
            ]}"#,
            &sim,
        );
        assert!(r.has_code("SA027"), "{}", r.render());
        // Occurrence expansion must not multiply the finding.
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "SA027").count(),
            1
        );
    }

    #[test]
    fn sa028_fail_plus_maintenance_quorum_kill() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        // vm:0 down for repair while vm:1 is under maintenance: 1 of 3
        // controller nodes left, below every 2-of-3 quorum. Neither window
        // alone kills the quorum, and they are not maintenance-only.
        let r = audit(
            r#"{"name": "x", "injections": [
                {"label": "kill", "kind": "fail", "target": "vm:0",
                 "at": 100.0, "repair_hours": 24.0},
                {"label": "patch", "kind": "maintenance", "target": "vm:1",
                 "at": 110.0, "duration_hours": 8.0}
            ]}"#,
            &sim,
        );
        assert!(r.has_code("SA028"), "{}", r.render());
        assert!(!r.has_code("SA022"), "{}", r.render());
    }

    #[test]
    fn lone_fail_quorum_kill_is_intentional() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        // Small = one rack holding the whole control plane: killing it is
        // the campaign's purpose, not an authoring defect.
        let r = audit(
            r#"{"name": "x", "injections": [
                {"label": "kill", "kind": "fail", "target": "rack:0",
                 "at": 100.0, "repair_hours": 48.0}
            ]}"#,
            &sim,
        );
        assert!(!r.has_code("SA028"), "{}", r.render());
        assert!(!r.has_code("SA022"), "{}", r.render());
    }

    #[test]
    fn sa029_crew_starvation_peak_and_utilization() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        // Three concurrent hardware repairs vs one crew.
        let r = audit(
            r#"{"name": "x", "crews": {"count": 1}, "injections": [
                {"label": "h0", "kind": "fail", "target": "host:0",
                 "at": 100.0, "repair_hours": 50.0},
                {"label": "h1", "kind": "fail", "target": "host:1",
                 "at": 110.0, "repair_hours": 50.0},
                {"label": "h2", "kind": "fail", "target": "host:2",
                 "at": 120.0, "repair_hours": 50.0}
            ]}"#,
            &sim,
        );
        assert!(r.has_code("SA029"), "{}", r.render());

        // Periodic repairs saturating total capacity: every 10 h, each
        // taking 20 h, forever — utilization 2.0 on one crew.
        let r = audit(
            r#"{"name": "x", "crews": {"count": 1}, "injections": [
                {"label": "churn", "kind": "fail", "target": "host:0",
                 "at": 0.0, "every": 10.0, "repair_hours": 20.0}
            ]}"#,
            &sim,
        );
        assert!(r.has_code("SA029"), "{}", r.render());
    }

    #[test]
    fn process_restarts_do_not_consume_crews() {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = Topology::small(&spec);
        let sim = small_sim(&spec, &topo);
        // vProc windows never queue on the crew pool, however dense.
        let r = audit(
            r#"{"name": "x", "crews": {"count": 1}, "injections": [
                {"label": "p0", "kind": "fail", "target": "vproc:0/contrail-vrouter-agent",
                 "at": 100.0, "repair_hours": 50.0},
                {"label": "p1", "kind": "fail", "target": "vproc:1/contrail-vrouter-agent",
                 "at": 110.0, "repair_hours": 50.0}
            ]}"#,
            &sim,
        );
        assert!(!r.has_code("SA029"), "{}", r.render());
    }
}
