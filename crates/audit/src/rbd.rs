//! Checks over reliability block diagrams, plus the derivation of the
//! paper's CP/DP diagrams from a [`ControllerSpec`].

use std::collections::BTreeSet;

use sdnav_blocks::Block;
use sdnav_core::{ControllerSpec, Plane, ProcessParams};

use crate::{AuditReport, Diagnostic};

/// Lints a reliability block diagram rooted at `origin`:
///
/// * SA006 — structural k-of-n errors: `k > n` (never up), an empty
///   parallel group (never up), `k = 0` or an empty series group
///   (trivially up), `k = n` (equivalent to a series, info);
/// * SA007 — dead units: leaves whose structural Birnbaum importance is
///   zero, i.e. that cannot influence the system state at all;
/// * SA008 — unit availabilities outside `[0, 1]` or NaN.
#[must_use]
pub fn audit_block(block: &Block, origin: &str) -> AuditReport {
    let mut r = AuditReport::new();
    walk(block, origin, &mut r);

    // Structural relevance: evaluate a copy with every availability at 0.5
    // (so no leaf is masked by a 0/1 probability) and measure each unit's
    // Birnbaum importance ∂A/∂a_unit = A(unit up) − A(unit down).
    let neutral = neutralize(block);
    let mut seen = BTreeSet::new();
    for name in block.unit_names() {
        if !seen.insert(name.clone()) {
            continue;
        }
        let up = neutral.availability_pinned(&mut |n| (n == name).then_some(true));
        let down = neutral.availability_pinned(&mut |n| (n == name).then_some(false));
        if up - down == 0.0 {
            r.push(Diagnostic::warn(
                "SA007",
                format!("{origin}/{name}"),
                format!("unit {name:?} has zero structural Birnbaum importance"),
                "the unit can never change the system state; remove it or fix \
                 the surrounding group's k",
            ));
        }
    }
    r
}

fn walk(block: &Block, path: &str, r: &mut AuditReport) {
    match block {
        Block::Unit { name, availability } => {
            if availability.is_nan() || !(0.0..=1.0).contains(availability) {
                r.push(Diagnostic::error(
                    "SA008",
                    path.to_owned(),
                    format!("unit {name:?} has availability {availability}"),
                    "availabilities are probabilities in [0, 1]",
                ));
            }
        }
        Block::Series { children } => {
            if children.is_empty() {
                r.push(Diagnostic::warn(
                    "SA006",
                    path.to_owned(),
                    "empty series group is trivially up",
                    "remove the group or add its intended children",
                ));
            }
            recurse(children, path, r);
        }
        Block::Parallel { children } => {
            if children.is_empty() {
                r.push(Diagnostic::error(
                    "SA006",
                    path.to_owned(),
                    "empty parallel group can never be up",
                    "a parallel group needs at least one child",
                ));
            }
            recurse(children, path, r);
        }
        Block::KOfN { k, children } => {
            let n = children.len();
            if *k as usize > n {
                r.push(Diagnostic::error(
                    "SA006",
                    path.to_owned(),
                    format!("{k}-of-{n} group can never be satisfied"),
                    "lower k or add children (the paper's Eq. 1 gives 0 for m > n)",
                ));
            } else if *k == 0 {
                r.push(Diagnostic::warn(
                    "SA006",
                    path.to_owned(),
                    format!("0-of-{n} group is trivially satisfied"),
                    "a k = 0 quorum requires nothing; its children never matter",
                ));
            } else if *k as usize == n && n > 0 {
                r.push(Diagnostic::info(
                    "SA006",
                    path.to_owned(),
                    format!("{k}-of-{n} group is equivalent to a series"),
                    "consider a series group for clarity",
                ));
            }
            recurse(children, path, r);
        }
    }
}

fn recurse(children: &[Block], path: &str, r: &mut AuditReport) {
    for (i, child) in children.iter().enumerate() {
        let label = match child {
            Block::Unit { name, .. } => name.clone(),
            Block::Series { .. } => format!("series#{i}"),
            Block::Parallel { .. } => format!("parallel#{i}"),
            Block::KOfN { k, children } => format!("{k}of{}#{i}", children.len()),
        };
        walk(child, &format!("{path}/{label}"), r);
    }
}

/// A copy of the diagram with every unit availability set to 0.5, so the
/// Birnbaum importance reflects pure structure.
fn neutralize(block: &Block) -> Block {
    match block {
        Block::Unit { name, .. } => Block::Unit {
            name: name.clone(),
            availability: 0.5,
        },
        Block::Series { children } => Block::series(children.iter().map(neutralize).collect()),
        Block::Parallel { children } => Block::parallel(children.iter().map(neutralize).collect()),
        Block::KOfN { k, children } => Block::k_of_n(*k, children.iter().map(neutralize).collect()),
    }
}

/// The control-plane RBD derived from a spec at the paper's default process
/// availabilities: one `m`-of-`n` group per Table III requirement, all in
/// series (the structure behind Eq. 9).
#[must_use]
pub fn cp_rbd(spec: &ControllerSpec) -> Block {
    plane_rbd(spec, Plane::ControlPlane)
}

/// The shared data-plane RBD derived from a spec: the Table III DP quorums
/// in series with each per-host process the local DP needs (Eq. 13's
/// structure for one host, hardware factored out).
#[must_use]
pub fn dp_rbd(spec: &ControllerSpec) -> Block {
    let params = ProcessParams::paper_defaults();
    let mut blocks = vec![plane_rbd(spec, Plane::DataPlane)];
    for p in spec.local_dp_processes() {
        blocks.push(Block::unit(format!("{}@host", p.name), params.for_spec(p)));
    }
    Block::series(blocks)
}

fn plane_rbd(spec: &ControllerSpec, plane: Plane) -> Block {
    let params = ProcessParams::paper_defaults();
    let blocks = spec
        .requirements(plane)
        .iter()
        .map(|req| {
            let a = req.instance_availability(&params);
            let units = (0..spec.nodes)
                .map(|node| Block::unit(format!("{}@node{node}", req.label), a))
                .collect();
            Block::k_of_n(req.required, units)
        })
        .collect();
    Block::series(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn unit(name: &str) -> Block {
        Block::unit(name, 0.99)
    }

    #[test]
    fn sa006_k_exceeds_n_is_error() {
        let b = Block::k_of_n(3, vec![unit("a"), unit("b")]);
        let r = audit_block(&b, "rbd");
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "SA006")
            .expect("SA006 reported");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("3-of-2"));
    }

    #[test]
    fn sa006_zero_k_is_warning_and_kills_children() {
        let b = Block::k_of_n(0, vec![unit("a"), unit("b")]);
        let r = audit_block(&b, "rbd");
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA006" && d.severity == Severity::Warn));
        // Children of a 0-of-n group are structurally dead (SA007).
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "SA007").count(),
            2
        );
    }

    #[test]
    fn sa006_empty_groups() {
        let b = Block::series(vec![
            Block::parallel(vec![]),
            Block::series(vec![]),
            Block::k_of_n(1, vec![]),
            unit("keep"),
        ]);
        let r = audit_block(&b, "rbd");
        let sa006: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == "SA006")
            .collect();
        assert_eq!(sa006.len(), 3);
        assert!(sa006
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("parallel")));
        assert!(sa006
            .iter()
            .any(|d| d.severity == Severity::Warn && d.message.contains("series")));
        assert!(sa006
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("1-of-0")));
    }

    #[test]
    fn sa006_k_equals_n_is_info() {
        let b = Block::k_of_n(2, vec![unit("a"), unit("b")]);
        let r = audit_block(&b, "rbd");
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.code == "SA006" && d.severity == Severity::Info));
        assert!(!r.has_errors());
    }

    #[test]
    fn sa007_dead_unit_under_oversized_quorum() {
        // 3-of-2 is never up no matter what the units do: both are dead.
        let b = Block::k_of_n(3, vec![unit("a"), unit("b")]);
        let r = audit_block(&b, "rbd");
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "SA007").count(),
            2
        );
    }

    #[test]
    fn sa007_live_units_not_flagged() {
        let b = Block::series(vec![
            Block::k_of_n(2, unit("db").replicate(3)),
            Block::parallel(vec![unit("x"), unit("y")]),
        ]);
        assert!(audit_block(&b, "rbd").is_clean());
    }

    #[test]
    fn sa008_bad_unit_availability() {
        // Construct directly: Block::unit would panic on these.
        let b = Block::Series {
            children: vec![
                Block::Unit {
                    name: "nan".into(),
                    availability: f64::NAN,
                },
                Block::Unit {
                    name: "big".into(),
                    availability: 1.5,
                },
                unit("ok"),
            ],
        };
        let r = audit_block(&b, "rbd");
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "SA008").count(),
            2
        );
    }

    #[test]
    fn derived_paper_rbds_are_clean_and_sized() {
        let spec = ControllerSpec::opencontrail_3x();
        let cp = cp_rbd(&spec);
        // 16 CP requirements × 3 nodes.
        assert_eq!(cp.unit_count(), 48);
        assert!(audit_block(&cp, "rbd/cp").is_clean());

        let dp = dp_rbd(&spec);
        // 2 DP requirements × 3 nodes + 2 local processes.
        assert_eq!(dp.unit_count(), 8);
        assert!(audit_block(&dp, "rbd/dp").is_clean());
        // The derived CP availability is a real number in (0, 1).
        let a = cp.availability();
        assert!(a > 0.99 && a < 1.0);
    }

    #[test]
    fn broken_spec_yields_broken_derived_rbd() {
        // A zero-node cluster derives k-of-0 quorum groups.
        let mut spec = ControllerSpec::opencontrail_3x();
        spec.nodes = 0;
        let r = audit_block(&cp_rbd(&spec), "rbd/cp");
        assert!(r.has_code("SA006"));
        assert!(r.has_errors());
    }
}
