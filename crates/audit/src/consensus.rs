//! Consensus-block checks (SA033–SA035): the protocol-level
//! misconfigurations that decode fine but doom the cluster's
//! coordination layer — election timeouts that lose to the heartbeat, a
//! cluster too small for its declared fault mix, and quorums no honest
//! majority can ever reach.

use sdnav_core::ConsensusSpec;

use crate::{AuditReport, Diagnostic};

/// Lints a [`ConsensusSpec`] (normally a spec's optional `consensus`
/// block; `path` is its diagnostic anchor, e.g. `spec/consensus`).
///
/// * **SA033** (error): the randomized election-timeout floor does not
///   clear the heartbeat interval, so healthy heartbeats cannot suppress
///   elections and the cluster churns leaders indefinitely.
/// * **SA034** (warn): the cluster is smaller than
///   `2·F_BFT + 2·F_crash + 1`, so it cannot both form its commit quorum
///   and survive the fault mix it declares to tolerate.
/// * **SA035** (error): the commit quorum `2·F_BFT + F_crash + 1` exceeds
///   the honest membership `n − F_BFT`: even with every correct node up,
///   the cluster can never commit.
#[must_use]
pub fn audit_consensus(consensus: &ConsensusSpec, path: &str) -> AuditReport {
    let mut report = AuditReport::new();
    let floor_ms = consensus.election_latency.floor_ms();
    if floor_ms <= consensus.heartbeat_interval_ms {
        report.push(Diagnostic::error(
            "SA033",
            path,
            format!(
                "election latency floor ({} ms) does not exceed the heartbeat interval ({} ms): \
                 followers time out between healthy heartbeats and the cluster churns leaders",
                floor_ms, consensus.heartbeat_interval_ms
            ),
            "raise the election timeout well above the heartbeat (RAFT practice is at least 3x) \
             so a live leader always suppresses elections",
        ));
    }
    let mix = consensus.fault_mix;
    if consensus.cluster_size < mix.min_cluster() {
        report.push(Diagnostic::warn(
            "SA034",
            path,
            format!(
                "{}-node cluster is too small for the declared fault mix {} \
                 (needs 2*byzantine + 2*crash + 1 = {} nodes to form a quorum with the \
                 tolerated faults down)",
                consensus.cluster_size,
                mix.label(),
                mix.min_cluster()
            ),
            "grow the cluster to the minimum size or relax the declared byzantine/crash mix",
        ));
    }
    let honest = consensus.cluster_size.saturating_sub(mix.byzantine);
    if consensus.quorum() > honest {
        report.push(Diagnostic::error(
            "SA035",
            path,
            format!(
                "commit quorum {} is unreachable: only {} honest member(s) exist under the \
                 declared byzantine count {}",
                consensus.quorum(),
                honest,
                mix.byzantine
            ),
            "a quorum must be reachable from honest votes alone; grow the cluster or lower the \
             declared byzantine count",
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnav_core::FaultMix;

    fn spec() -> ConsensusSpec {
        ConsensusSpec::raft_defaults()
    }

    #[test]
    fn raft_defaults_lint_clean() {
        assert!(audit_consensus(&spec(), "spec/consensus").is_clean());
    }

    #[test]
    fn sa033_timeout_below_heartbeat() {
        let mut c = spec();
        c.election_latency = sdnav_core::ElectionLatency::Uniform {
            min_ms: 40.0,
            max_ms: 50.0,
        };
        let r = audit_consensus(&c, "spec/consensus");
        assert!(r.has_code("SA033"));
        assert!(!r.has_code("SA034") && !r.has_code("SA035"));
    }

    #[test]
    fn sa033_fires_on_empirical_floor_too() {
        let mut c = spec();
        c.election_latency = sdnav_core::ElectionLatency::Empirical {
            quantiles: vec![(0.0, 30.0), (1.0, 400.0)],
        };
        assert!(audit_consensus(&c, "spec/consensus").has_code("SA033"));
        // A table whose floor clears the heartbeat is clean.
        c.election_latency = sdnav_core::ElectionLatency::Empirical {
            quantiles: vec![(0.0, 150.0), (1.0, 400.0)],
        };
        assert!(audit_consensus(&c, "spec/consensus").is_clean());
    }

    #[test]
    fn sa034_cluster_too_small_for_mix() {
        let mut c = spec();
        c.fault_mix = FaultMix::crash_only(2); // needs 5 nodes, has 3
        let r = audit_consensus(&c, "spec/consensus");
        assert!(r.has_code("SA034"));
        assert!(!r.has_code("SA033") && !r.has_code("SA035"));
    }

    #[test]
    fn sa035_quorum_unreachable_under_byzantine_count() {
        let mut c = spec();
        c.fault_mix = FaultMix {
            byzantine: 1,
            crash: 0,
        }; // quorum 3, honest 2
        let r = audit_consensus(&c, "spec/consensus");
        assert!(r.has_code("SA035"));
        assert!(!r.has_code("SA033") && !r.has_code("SA034"));
    }

    #[test]
    fn well_sized_bft_cluster_is_clean() {
        let mut c = spec();
        c.cluster_size = 5;
        c.fault_mix = FaultMix {
            byzantine: 1,
            crash: 1,
        };
        assert!(audit_consensus(&c, "spec/consensus").is_clean());
    }
}
