//! Deterministic autofixes for trivially machine-correctable findings.
//!
//! Only findings with exactly one semantics-preserving (or
//! obviously-intended) rewrite are fixable:
//!
//! * **SA002** — duplicate role/process names: later duplicates get a
//!   deterministic `-2`, `-3`, … suffix;
//! * **SA005** — a role with auto-restart processes but no supervisor gets
//!   a manual-restart `supervisor` process inserted (required in neither
//!   plane, so the analytic models see exactly the §III semantics the
//!   auto-restart processes already assumed);
//! * **SA014** — a bare MTBF plausible only as a FIT count is normalized
//!   to hours (`1e9 / value`) and annotated;
//! * **SA006** — `k`-of-`n` with `k = n` becomes the equivalent series
//!   block, and trivially-up children (`0`-of-`n` groups, empty series)
//!   are dropped from series parents where removal is an identity.
//!
//! The SA005 *error* case (several supervisors in one role) is not
//! auto-fixable: the tool cannot know which process is the real
//! supervisor.
//!
//! Fixers are pure: they return the rewritten artifact plus a [`FixPlan`]
//! describing every edit, and applying a fixer to its own output yields an
//! empty plan (the CLI's `--fix` re-lints the result to prove the fixed
//! codes are gone).

use std::collections::BTreeSet;

use sdnav_blocks::Block;
use sdnav_core::{ControllerSpec, ProcessSpec, Quantity, RestartMode, SpecRates, Unit};

use crate::units::{fit_slip_hours, TimeKind};

/// Diagnostic codes `fix_spec`/`fix_block` can rewrite.
pub const FIXABLE_CODES: &[&str] = &["SA002", "SA005", "SA006", "SA014"];

/// One planned rewrite.
#[derive(Debug, Clone, PartialEq)]
pub struct FixEdit {
    /// The diagnostic code the edit resolves.
    pub code: &'static str,
    /// Path of the rewritten element (same scheme as [`crate::Diagnostic`]).
    pub path: String,
    /// What the edit does, `old -> new`.
    pub detail: String,
}

/// The ordered, deterministic list of edits a fixer wants to apply.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FixPlan {
    /// The edits, in application order.
    pub edits: Vec<FixEdit>,
}

impl FixPlan {
    /// Whether the fixer found nothing to rewrite.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Human-readable plan: one `fix[CODE] path: detail` line per edit.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.edits {
            let _ = writeln!(out, "fix[{}] {}: {}", e.code, e.path, e.detail);
        }
        if self.edits.is_empty() {
            out.push_str("fix: nothing auto-fixable\n");
        } else {
            let _ = writeln!(out, "fix: {} edit(s)", self.edits.len());
        }
        out
    }
}

/// Picks `base-2`, `base-3`, … — the first suffixed name not in `taken`.
fn dedup_name(base: &str, taken: &BTreeSet<String>) -> String {
    let mut i = 2;
    loop {
        let candidate = format!("{base}-{i}");
        if !taken.contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

fn fix_fit_slips(rates: &mut SpecRates, plan: &mut FixPlan) {
    let mut field = |path: &str, q: &mut Option<Quantity>| {
        let Some(current) = *q else { return };
        if let Some(hours) = fit_slip_hours(current, TimeKind::Mtbf) {
            plan.edits.push(FixEdit {
                code: "SA014",
                path: format!("spec/rates/{path}"),
                detail: format!(
                    "{} (read as FIT) -> {{\"value\": {hours}, \"unit\": \"hours\"}}",
                    current.value
                ),
            });
            *q = Some(Quantity::with_unit(hours, Unit::Hours));
        }
    };
    field("process_mtbf", &mut rates.process_mtbf);
    for (name, pair) in [
        ("rack", &mut rates.rack),
        ("host", &mut rates.host),
        ("vm", &mut rates.vm),
    ] {
        if let Some(p) = pair {
            field(&format!("{name}/mtbf"), &mut p.mtbf);
        }
    }
}

/// Rewrites the auto-fixable spec findings: duplicate role/process names
/// (SA002), auto-restart roles missing a supervisor (SA005, a
/// manual-restart `supervisor` process is inserted) and FIT-for-hours MTBF
/// slips (SA014). Returns the fixed spec and the edit plan; a spec with
/// nothing fixable comes back unchanged with an empty plan.
#[must_use]
pub fn fix_spec(spec: &ControllerSpec) -> (ControllerSpec, FixPlan) {
    let mut fixed = spec.clone();
    let mut plan = FixPlan::default();

    let mut role_names: BTreeSet<String> = fixed.roles.iter().map(|r| r.name.clone()).collect();
    let mut seen = BTreeSet::new();
    for role in &mut fixed.roles {
        if !seen.insert(role.name.clone()) {
            let new = dedup_name(&role.name, &role_names);
            plan.edits.push(FixEdit {
                code: "SA002",
                path: format!("spec/roles/{}", role.name),
                detail: format!("duplicate role renamed {} -> {new}", role.name),
            });
            role_names.insert(new.clone());
            role.name = new;
        }
    }
    for role in &mut fixed.roles {
        let mut proc_names: BTreeSet<String> =
            role.processes.iter().map(|p| p.name.clone()).collect();
        let mut seen = BTreeSet::new();
        for p in &mut role.processes {
            if !seen.insert(p.name.clone()) {
                let new = dedup_name(&p.name, &proc_names);
                plan.edits.push(FixEdit {
                    code: "SA002",
                    path: format!("spec/roles/{}/processes/{}", role.name, p.name),
                    detail: format!("duplicate process renamed {} -> {new}", p.name),
                });
                proc_names.insert(new.clone());
                p.name = new;
            }
        }
    }

    // SA005 runs after the SA002 dedup so the inserted supervisor's name
    // is checked against the final, unique process names.
    for role in &mut fixed.roles {
        let has_auto = role
            .processes
            .iter()
            .any(|p| p.restart == RestartMode::Auto && !p.is_supervisor);
        let has_supervisor = role.processes.iter().any(|p| p.is_supervisor);
        if has_auto && !has_supervisor {
            let taken: BTreeSet<String> = role.processes.iter().map(|p| p.name.clone()).collect();
            let name = if taken.contains("supervisor") {
                dedup_name("supervisor", &taken)
            } else {
                "supervisor".to_owned()
            };
            plan.edits.push(FixEdit {
                code: "SA005",
                path: format!("spec/roles/{}", role.name),
                detail: format!(
                    "auto-restart processes without a supervisor -> \
                     inserted manual-restart process {name:?} (is_supervisor)"
                ),
            });
            role.processes
                .push(ProcessSpec::new(name, RestartMode::Manual).supervisor());
        }
    }

    if let Some(rates) = &mut fixed.rates {
        fix_fit_slips(rates, &mut plan);
    }
    (fixed, plan)
}

/// Whether a block is trivially up (an identity member of a series).
fn trivially_up(block: &Block) -> bool {
    match block {
        Block::Series { children } => children.is_empty(),
        Block::KOfN { k: 0, .. } => true,
        _ => false,
    }
}

fn fix_block_inner(block: &Block, path: &str, plan: &mut FixPlan) -> Block {
    match block {
        Block::Unit { .. } => block.clone(),
        Block::Parallel { children } => Block::Parallel {
            children: children
                .iter()
                .enumerate()
                .map(|(i, c)| fix_block_inner(c, &format!("{path}/{i}"), plan))
                .collect(),
        },
        Block::Series { children } => {
            let mut fixed = Vec::new();
            for (i, c) in children.iter().enumerate() {
                let child = fix_block_inner(c, &format!("{path}/{i}"), plan);
                // Dropping a trivially-up member from a series is an
                // identity (series availability is the product, and the
                // member contributes a factor of 1).
                if trivially_up(&child) {
                    plan.edits.push(FixEdit {
                        code: "SA006",
                        path: format!("{path}/{i}"),
                        detail: "trivially-up child removed from series".to_owned(),
                    });
                } else {
                    fixed.push(child);
                }
            }
            Block::Series { children: fixed }
        }
        Block::KOfN { k, children } => {
            let children: Vec<Block> = children
                .iter()
                .enumerate()
                .map(|(i, c)| fix_block_inner(c, &format!("{path}/{i}"), plan))
                .collect();
            let n = u32::try_from(children.len()).unwrap_or(u32::MAX);
            if *k == n && n > 0 {
                plan.edits.push(FixEdit {
                    code: "SA006",
                    path: path.to_owned(),
                    detail: format!("{k}-of-{n} (all children required) -> series"),
                });
                Block::Series { children }
            } else {
                Block::KOfN { k: *k, children }
            }
        }
    }
}

/// Rewrites the auto-fixable RBD findings (SA006): `k = n` groups become
/// the equivalent series, and trivially-up children are removed from
/// series parents. `k > n` errors have no safe rewrite and are left alone.
#[must_use]
pub fn fix_block(block: &Block) -> (Block, FixPlan) {
    let mut plan = FixPlan::default();
    let fixed = fix_block_inner(block, "rbd", &mut plan);
    (fixed, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{audit_block, audit_spec, audit_units};
    use sdnav_core::RatePair;

    #[test]
    fn fix_is_identity_on_clean_artifacts() {
        let spec = ControllerSpec::opencontrail_3x();
        let (fixed, plan) = fix_spec(&spec);
        assert!(plan.is_empty());
        assert_eq!(fixed, spec);
        assert!(plan.render().contains("nothing"));

        let block = Block::series(vec![
            Block::unit("a", 0.99),
            Block::k_of_n(2, Block::unit("b", 0.999).replicate(3)),
        ]);
        let (fixed, plan) = fix_block(&block);
        assert!(plan.is_empty());
        assert_eq!(fixed, block);
    }

    #[test]
    fn sa002_duplicates_renamed_deterministically() {
        let mut spec = ControllerSpec::opencontrail_3x();
        let dup_role = spec.roles[0].clone();
        spec.roles.push(dup_role);
        let p = spec.roles[1].processes[0].clone();
        spec.roles[1].processes.push(p.clone());
        spec.roles[1].processes.push(p);
        assert!(audit_spec(&spec).has_code("SA002"));

        let (fixed, plan) = fix_spec(&spec);
        assert_eq!(plan.edits.iter().filter(|e| e.code == "SA002").count(), 3);
        assert!(!audit_spec(&fixed).has_code("SA002"));
        assert_eq!(fixed.roles.last().unwrap().name, "Config-2");
        // The two duplicated processes get distinct suffixes.
        let names: Vec<&str> = fixed.roles[1]
            .processes
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        let unique: BTreeSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        // Fixing again is a no-op.
        let (again, plan2) = fix_spec(&fixed);
        assert!(plan2.is_empty());
        assert_eq!(again, fixed);
    }

    #[test]
    fn sa005_missing_supervisor_inserted_and_relints_clean() {
        use sdnav_core::{RoleScope, RoleSpec};
        let spec = ControllerSpec {
            name: "X".into(),
            nodes: 3,
            roles: vec![RoleSpec::new(
                "Analytics",
                RoleScope::Controller,
                vec![ProcessSpec::new("collector", RestartMode::Auto).cp(1)],
            )],
            rates: None,
            consensus: None,
        };
        assert!(audit_spec(&spec).has_code("SA005"));

        let (fixed, plan) = fix_spec(&spec);
        assert_eq!(plan.edits.len(), 1);
        assert_eq!(plan.edits[0].code, "SA005");
        assert!(plan.edits[0].detail.contains("supervisor"));
        let inserted = fixed.roles[0].supervisor().expect("supervisor inserted");
        assert_eq!(inserted.name, "supervisor");
        assert_eq!(inserted.restart, RestartMode::Manual);
        assert_eq!(inserted.cp_required, 0);
        assert_eq!(inserted.dp_required, 0);
        assert!(!audit_spec(&fixed).has_code("SA005"));
        // Fixing again is a no-op.
        let (again, plan2) = fix_spec(&fixed);
        assert!(plan2.is_empty());
        assert_eq!(again, fixed);
    }

    #[test]
    fn sa005_inserted_supervisor_name_avoids_collisions() {
        use sdnav_core::{RoleScope, RoleSpec};
        let spec = ControllerSpec {
            name: "X".into(),
            nodes: 3,
            roles: vec![RoleSpec::new(
                "Analytics",
                RoleScope::Controller,
                vec![
                    ProcessSpec::new("collector", RestartMode::Auto).cp(1),
                    // Named like a supervisor but not marked as one.
                    ProcessSpec::new("supervisor", RestartMode::Manual),
                ],
            )],
            rates: None,
            consensus: None,
        };
        let (fixed, plan) = fix_spec(&spec);
        assert_eq!(plan.edits.len(), 1);
        let inserted = fixed.roles[0].supervisor().expect("supervisor inserted");
        assert_eq!(inserted.name, "supervisor-2");
        assert!(!audit_spec(&fixed).has_code("SA005"));
        assert!(!audit_spec(&fixed).has_code("SA002"));
    }

    #[test]
    fn sa005_multiple_supervisors_not_auto_fixed() {
        let mut spec = ControllerSpec::opencontrail_3x();
        spec.roles[0].processes[0].is_supervisor = true;
        assert!(audit_spec(&spec).has_errors());
        let (fixed, plan) = fix_spec(&spec);
        assert!(plan.is_empty());
        assert_eq!(fixed, spec);
    }

    #[test]
    fn sa014_fit_slip_normalized_to_annotated_hours() {
        let mut spec = ControllerSpec::opencontrail_3x();
        spec.rates = Some(SpecRates {
            rack: Some(RatePair {
                mtbf: Some(Quantity::bare(10.0)),
                mttr: Some(Quantity::bare(48.0)),
            }),
            ..SpecRates::default()
        });
        assert!(audit_units(&spec).has_code("SA014"));

        let (fixed, plan) = fix_spec(&spec);
        assert_eq!(plan.edits.len(), 1);
        assert_eq!(plan.edits[0].code, "SA014");
        assert!(plan.render().contains("rack/mtbf"));
        let mtbf = fixed.rates.as_ref().unwrap().rack.unwrap().mtbf.unwrap();
        assert_eq!(mtbf, Quantity::with_unit(1.0e8, Unit::Hours));
        assert!(!audit_units(&fixed).has_code("SA014"));
        // Annotated values are never rewritten.
        let (again, plan2) = fix_spec(&fixed);
        assert!(plan2.is_empty());
        assert_eq!(again, fixed);
    }

    #[test]
    fn sa006_k_equals_n_becomes_series() {
        let block = Block::k_of_n(3, Block::unit("db", 0.999).replicate(3));
        assert!(audit_block(&block, "rbd").has_code("SA006"));
        let (fixed, plan) = fix_block(&block);
        assert_eq!(plan.edits.len(), 1);
        assert!(plan.edits[0].detail.contains("series"));
        assert!(matches!(fixed, Block::Series { .. }));
        assert!(!audit_block(&fixed, "rbd").has_code("SA006"));
        // Availability is preserved exactly.
        assert_eq!(fixed.availability(), block.availability());
    }

    #[test]
    fn sa006_trivial_children_dropped_from_series() {
        let block = Block::series(vec![
            Block::unit("a", 0.99),
            Block::series(vec![]),
            Block::KOfN {
                k: 0,
                children: vec![Block::unit("b", 0.5)],
            },
        ]);
        let (fixed, plan) = fix_block(&block);
        assert_eq!(plan.edits.len(), 2);
        match &fixed {
            Block::Series { children } => assert_eq!(children.len(), 1),
            other => panic!("expected series, got {other:?}"),
        }
        assert_eq!(fixed.availability(), block.availability());
        assert!(!audit_block(&fixed, "rbd").has_code("SA006"));
    }

    #[test]
    fn k_exceeds_n_is_not_rewritten() {
        let block = Block::KOfN {
            k: 3,
            children: vec![Block::unit("a", 0.9), Block::unit("b", 0.9)],
        };
        let (fixed, plan) = fix_block(&block);
        assert!(plan.is_empty());
        assert_eq!(fixed, block);
        assert!(audit_block(&fixed, "rbd").has_errors());
    }
}
