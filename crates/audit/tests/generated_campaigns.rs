//! Property: every FMEA-generated chaos campaign is lint-clean by
//! construction. Whatever the topology, scenario, and generator knobs,
//! the compiled campaign must raise none of the campaign diagnostics the
//! generator designs against — every target resolves (SA020), every
//! injection fires inside the horizon (SA021), maintenance never breaks a
//! quorum (SA022), declared crews are nonzero (SA023), and the staggered
//! windows never schedule conflicting injections on one target (SA027) —
//! and the campaign must compile against the simulation it lints against.

use proptest::prelude::*;

use sdnav_audit::audit_campaign;
use sdnav_chaos::{generate, GenerateConfig};
use sdnav_core::{ControllerSpec, Scenario, SwParams, Topology};
use sdnav_fmea::Deployment;
use sdnav_sim::{SimConfig, Simulation};

fn topology(spec: &ControllerSpec, pick: usize) -> Topology {
    match pick % 4 {
        0 => Topology::small(spec),
        1 => Topology::small_three_racks(spec),
        2 => Topology::medium(spec),
        _ => Topology::large(spec),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_campaigns_lint_clean_and_resolve(
        pick in 0usize..4,
        supervisor_required in 0usize..2,
        top_k in 1usize..=8,
        stress in 0usize..2,
    ) {
        let spec = ControllerSpec::opencontrail_3x();
        let topo = topology(&spec, pick);
        let scenario = if supervisor_required == 1 {
            Scenario::SupervisorRequired
        } else {
            Scenario::SupervisorNotRequired
        };
        let deployment = Deployment::new(&spec, &topo, SwParams::paper_defaults(), scenario);
        let config = GenerateConfig {
            top_k,
            stress: stress == 1,
            ..GenerateConfig::default()
        };
        let generated = generate(&deployment, &config).expect("paper deployments have modes");

        // The lint pass runs against the same deployment the campaign was
        // generated for, with the CLI's default chaos horizon.
        let sim_config = SimConfig::builder(scenario)
            .horizon_hours(100_000.0)
            .accelerate(100.0)
            .compute_hosts(3)
            .build()
            .expect("valid reference config");
        let sim = Simulation::try_new(&spec, &topo, sim_config).expect("valid reference sim");

        // Every target resolves: the campaign compiles into a plan.
        prop_assert!(sdnav_chaos::compile(&generated.campaign, &sim).is_ok());

        let report = audit_campaign(&generated.campaign, &sim);
        for code in ["SA020", "SA021", "SA022", "SA023", "SA027"] {
            prop_assert!(
                !report.has_code(code),
                "{} ({:?}, top_k={top_k}, stress={stress}) raised {code}:\n{}",
                topo.name(),
                scenario,
                report.render()
            );
        }
    }
}
