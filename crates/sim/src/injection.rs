//! Fault-injection plans and outage attribution.
//!
//! A chaos campaign (see the `sdnav-chaos` crate) compiles down to an
//! [`InjectionPlan`]: a time-sorted list of [`PlannedEvent`]s over resolved
//! element indices, plus an optional finite [`CrewPool`] for hardware
//! repairs. [`crate::Simulation::run_injected`] merges the planned events
//! into the organic event heap and records every transition into an
//! [`AttributionLedger`], so each control-plane outage can be blamed on the
//! injection (or organic failure) that opened it and on every cause that
//! contributed while it lasted.
//!
//! An **empty** plan is guaranteed not to perturb the simulation: no extra
//! RNG draws, no extra heap events, no behavioral branches — the result is
//! byte-identical to [`crate::Simulation::run`] for the same seed.

/// A resolved injection target inside a prepared [`crate::Simulation`].
///
/// Indices follow the simulation's own element order: racks, hosts and VMs
/// are topology indices; `Proc` is the role-major controller-process index
/// (resolve names with [`crate::Simulation::proc_index`]); `VProc` is a
/// `(compute host, per-host process)` pair (see
/// [`crate::Simulation::vproc_index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectTarget {
    /// A rack by topology index.
    Rack(usize),
    /// A host by topology index.
    Host(usize),
    /// A VM by topology index.
    Vm(usize),
    /// A controller process by role-major pid.
    Proc(usize),
    /// A vRouter process: `(compute host, per-host process index)`.
    VProc(usize, usize),
}

/// What a planned injection does when its scheduled time arrives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectAction {
    /// Force the target down now. `repair_hours` fixes the repair/restart
    /// duration; `None` samples the target's organic repair distribution.
    /// A no-op if the target is already down.
    Fail {
        /// Fixed repair duration in hours, or `None` for an organic sample.
        repair_hours: Option<f64>,
    },
    /// Planned downtime: the target goes down now and any in-flight or
    /// queued repair is suppressed until the window closes. Overlapping
    /// windows on one element merge to the latest end.
    Maintenance {
        /// Window length in hours.
        duration_hours: f64,
    },
    /// Arm a latent fault on a controller process: the process keeps
    /// reporting up but is discovered broken (and starts a manual-time
    /// restart) at the first failover onto it — the first event after
    /// arming that takes down another member block of a control-plane
    /// requirement the process belongs to.
    Latent,
}

/// One pre-scheduled injection occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedEvent {
    /// Simulated time in hours.
    pub time: f64,
    /// Index of the campaign injection this occurrence belongs to (the
    /// attribution id; several occurrences and several correlated targets
    /// may share one id).
    pub injection: usize,
    /// The element acted on.
    pub target: InjectTarget,
    /// The action taken.
    pub action: InjectAction,
}

/// Queueing discipline of a finite repair-crew pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrewDiscipline {
    /// First failed, first repaired.
    Fifo,
    /// Racks before hosts before VMs; FIFO within a class.
    Priority,
}

/// A finite pool of hardware repair crews.
///
/// Every rack/host/VM repair occupies one crew for its full duration;
/// failures arriving while all crews are busy wait in a queue, stretching
/// the element's effective MTTR under contention. Process restarts are not
/// crewed. `None` in [`InjectionPlan::crews`] models unlimited crews — the
/// organic engine behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrewPool {
    /// Number of crews (validated ≥ 1 by the campaign audit, SA023).
    pub crews: usize,
    /// Order in which waiting repairs are served.
    pub discipline: CrewDiscipline,
}

/// A compiled, deterministic fault-injection schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InjectionPlan {
    /// Human-readable label per campaign injection id, for ledger output.
    pub labels: Vec<String>,
    /// Occurrences, sorted by time (ties keep vector order).
    pub events: Vec<PlannedEvent>,
    /// Finite repair-crew pool, or `None` for unlimited crews.
    pub crews: Option<CrewPool>,
}

impl InjectionPlan {
    /// The empty plan: no injections, unlimited crews.
    #[must_use]
    pub fn empty() -> Self {
        InjectionPlan::default()
    }

    /// Whether this plan perturbs the simulation at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.crews.is_none()
    }
}

/// Who is to blame for a transition or an outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cause {
    /// An organic (sampled) failure.
    Organic,
    /// The campaign injection with this id.
    Injection(usize),
}

impl Cause {
    /// Dense index for per-cause accumulation: organic is 0, injection `i`
    /// is `i + 1`.
    #[must_use]
    pub fn slot(self) -> usize {
        match self {
            Cause::Organic => 0,
            Cause::Injection(i) => i + 1,
        }
    }
}

/// One control-plane outage with its root-cause chain.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageRecord {
    /// When the control plane went down (hours).
    pub start: f64,
    /// When it came back (clipped to the horizon if still open).
    pub end: f64,
    /// Cause of the transition that opened the outage.
    pub root_cause: Cause,
    /// Every cause that took an element down while the outage was open
    /// (deduplicated, includes the root).
    pub contributors: Vec<Cause>,
}

impl OutageRecord {
    /// Outage length in hours.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// One per-host data-plane outage window.
///
/// Windows are clipped to the measured `[warmup, horizon]` interval, so
/// summing their durations per cause reproduces
/// [`AttributionLedger::dp_down_host_hours`] (up to floating-point
/// accumulation order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpWindowRecord {
    /// Compute-host index the window belongs to.
    pub host: usize,
    /// When the host's data plane went down (hours, clipped to warmup).
    pub start: f64,
    /// When it came back (clipped to the horizon if still open).
    pub end: f64,
    /// Cause of the transition that took the host down; fixed while the
    /// host stays down.
    pub cause: Cause,
}

impl DpWindowRecord {
    /// Window length in hours.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The attribution timeline of one injected run.
///
/// Control-plane outages follow the same window semantics as
/// [`crate::SimResult::cp_outage_count`]: only outages *starting* inside
/// the measured window are recorded, and an outage still open at the
/// horizon is truncated there. The records therefore account for 100% of
/// the run's reported CP outage-hours.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributionLedger {
    /// Control-plane outages in start order.
    pub cp_outages: Vec<OutageRecord>,
    /// Data-plane downtime in host-hours per cause slot
    /// ([`Cause::slot`]), accumulated over the measured window; a host's
    /// downtime is blamed on the cause of the transition that took it down.
    pub dp_down_host_hours: Vec<f64>,
    /// Per-host data-plane outage windows (start/end/cause) in close
    /// order, clipped to the measured window. The same downtime
    /// `dp_down_host_hours` aggregates, kept as individual records.
    pub dp_windows: Vec<DpWindowRecord>,
    /// Planned events actually applied (within the horizon).
    pub injected_events: u64,
    /// Latent faults revealed by a failover.
    pub revealed_latents: u64,
}

impl AttributionLedger {
    /// A ledger sized for `injections` campaign injections.
    #[must_use]
    pub fn new(injections: usize) -> Self {
        AttributionLedger {
            dp_down_host_hours: vec![0.0; injections + 1],
            ..AttributionLedger::default()
        }
    }

    /// Total CP outage-hours across the records.
    #[must_use]
    pub fn cp_outage_hours(&self) -> f64 {
        // fold from +0.0: an empty `.sum::<f64>()` is -0.0, which would
        // serialize as "-0" in ledger reports.
        self.cp_outages
            .iter()
            .fold(0.0, |acc, o| acc + o.duration())
    }

    /// CP outage-hours per root cause, as `(cause slot, hours)` with every
    /// slot present (organic first).
    #[must_use]
    pub fn cp_hours_by_cause(&self) -> Vec<f64> {
        let mut hours = vec![0.0; self.dp_down_host_hours.len().max(1)];
        for outage in &self.cp_outages {
            let slot = outage.root_cause.slot();
            if slot >= hours.len() {
                hours.resize(slot + 1, 0.0);
            }
            hours[slot] += outage.duration();
        }
        hours
    }

    /// DP window-hours per cause slot, aggregated from [`Self::dp_windows`].
    /// Equals [`Self::dp_down_host_hours`] up to floating-point
    /// accumulation order — the cross-check the `claims_chaos` bin runs.
    #[must_use]
    pub fn dp_window_hours_by_cause(&self) -> Vec<f64> {
        let mut hours = vec![0.0; self.dp_down_host_hours.len().max(1)];
        for window in &self.dp_windows {
            let slot = window.cause.slot();
            if slot >= hours.len() {
                hours.resize(slot + 1, 0.0);
            }
            hours[slot] += window.duration();
        }
        hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(InjectionPlan::empty().is_empty());
        let with_crews = InjectionPlan {
            crews: Some(CrewPool {
                crews: 2,
                discipline: CrewDiscipline::Fifo,
            }),
            ..InjectionPlan::empty()
        };
        assert!(!with_crews.is_empty());
    }

    #[test]
    fn cause_slots_are_dense() {
        assert_eq!(Cause::Organic.slot(), 0);
        assert_eq!(Cause::Injection(0).slot(), 1);
        assert_eq!(Cause::Injection(4).slot(), 5);
    }

    #[test]
    fn ledger_accounts_hours_by_root_cause() {
        let mut ledger = AttributionLedger::new(2);
        ledger.cp_outages.push(OutageRecord {
            start: 10.0,
            end: 12.0,
            root_cause: Cause::Injection(1),
            contributors: vec![Cause::Injection(1)],
        });
        ledger.cp_outages.push(OutageRecord {
            start: 20.0,
            end: 21.0,
            root_cause: Cause::Organic,
            contributors: vec![Cause::Organic, Cause::Injection(0)],
        });
        assert!((ledger.cp_outage_hours() - 3.0).abs() < 1e-12);
        let by_cause = ledger.cp_hours_by_cause();
        assert_eq!(by_cause.len(), 3);
        assert!((by_cause[0] - 1.0).abs() < 1e-12);
        assert!((by_cause[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dp_windows_aggregate_per_cause() {
        let mut ledger = AttributionLedger::new(1);
        ledger.dp_windows.push(DpWindowRecord {
            host: 0,
            start: 5.0,
            end: 8.0,
            cause: Cause::Injection(0),
        });
        ledger.dp_windows.push(DpWindowRecord {
            host: 1,
            start: 6.0,
            end: 7.5,
            cause: Cause::Organic,
        });
        ledger.dp_windows.push(DpWindowRecord {
            host: 0,
            start: 20.0,
            end: 21.0,
            cause: Cause::Injection(0),
        });
        assert!((ledger.dp_windows[0].duration() - 3.0).abs() < 1e-12);
        let by_cause = ledger.dp_window_hours_by_cause();
        assert_eq!(by_cause.len(), 2);
        assert!((by_cause[0] - 1.5).abs() < 1e-12);
        assert!((by_cause[1] - 4.0).abs() < 1e-12);
    }
}
